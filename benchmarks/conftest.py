"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see the
experiment index in DESIGN.md).  Rendered tables are accumulated in
:data:`REPORTS` and printed in the terminal summary, so a plain

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timings and the reproduced rows/series.  Reports are
also written to ``benchmark_reports/<id>.txt`` for diffing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.testbed import ship_database, ship_ker_schema

SHIP_ORDER = ["SUBMARINE", "CLASS", "SONAR", "INSTALL"]

#: (experiment id, title, rendered text), in execution order.
REPORTS: list[tuple[str, str, str]] = []

_REPORT_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "benchmark_reports")


def record_report(experiment_id: str, title: str, text: str) -> None:
    """Register a reproduced table/figure for the terminal summary."""
    REPORTS.append((experiment_id, title, text))
    _REPORT_DIR.mkdir(exist_ok=True)
    path = _REPORT_DIR / f"{experiment_id.lower()}.txt"
    path.write_text(f"{title}\n\n{text}\n")


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 70)
    write("Reproduced paper artifacts (also in benchmark_reports/)")
    write("=" * 70)
    for experiment_id, title, text in REPORTS:
        write("")
        write(f"--- {experiment_id}: {title}")
        for line in text.splitlines():
            write(line)


@pytest.fixture(scope="session")
def ship_db():
    return ship_database()


@pytest.fixture(scope="session")
def ship_binding(ship_db):
    return SchemaBinding(ship_ker_schema(), ship_db)


@pytest.fixture(scope="session")
def ship_rules(ship_binding):
    return InductiveLearningSubsystem(
        ship_binding, InductionConfig(n_c=3),
        relation_order=SHIP_ORDER).induce()


@pytest.fixture(scope="session")
def ship_system(ship_db, ship_rules, ship_binding):
    return IntensionalQueryProcessor(ship_db, ship_rules,
                                     binding=ship_binding)
