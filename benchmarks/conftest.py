"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see the
experiment index in DESIGN.md).  Rendered tables are accumulated in
:data:`REPORTS` and printed in the terminal summary, so a plain

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timings and the reproduced rows/series.  Reports are
also written to ``benchmark_reports/<id>.txt`` for diffing.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.testbed import ship_database, ship_ker_schema

SHIP_ORDER = ["SUBMARINE", "CLASS", "SONAR", "INSTALL"]

#: (experiment id, title, rendered text), in execution order.
REPORTS: list[tuple[str, str, str]] = []

_REPORT_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "benchmark_reports")


_ROOT_DIR = _REPORT_DIR.parent


def record_report(experiment_id: str, title: str, text: str,
                  data: dict | None = None) -> None:
    """Register a reproduced table/figure for the terminal summary.

    Besides the human-readable ``benchmark_reports/<id>.txt``, every
    report also lands machine-readably in ``BENCH_<ID>.json`` at the
    repo root, so CI guards and regression diffs can consume timings
    without parsing rendered tables.  *data* carries the structured
    numbers (raw timings, speedups, guard verdicts) where the bench
    provides them.
    """
    REPORTS.append((experiment_id, title, text))
    _REPORT_DIR.mkdir(exist_ok=True)
    path = _REPORT_DIR / f"{experiment_id.lower()}.txt"
    path.write_text(f"{title}\n\n{text}\n")
    payload = {"id": experiment_id, "title": title, "text": text}
    if data is not None:
        payload["data"] = data
    json_path = _ROOT_DIR / f"BENCH_{experiment_id.upper()}.json"
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                         + "\n")


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 70)
    write("Reproduced paper artifacts (also in benchmark_reports/)")
    write("=" * 70)
    for experiment_id, title, text in REPORTS:
        write("")
        write(f"--- {experiment_id}: {title}")
        for line in text.splitlines():
            write(line)


@pytest.fixture(scope="session")
def ship_db():
    return ship_database()


@pytest.fixture(scope="session")
def ship_binding(ship_db):
    return SchemaBinding(ship_ker_schema(), ship_db)


@pytest.fixture(scope="session")
def ship_rules(ship_binding):
    return InductiveLearningSubsystem(
        ship_binding, InductionConfig(n_c=3),
        relation_order=SHIP_ORDER).induce()


@pytest.fixture(scope="session")
def ship_system(ship_db, ship_rules, ship_binding):
    return IntensionalQueryProcessor(ship_db, ship_rules,
                                     binding=ship_binding)
