"""E13 (extension) -- ablations of the induction design knobs.

DESIGN.md section 6 lists the algorithm's implicit behaviours as an
ablation surface; this bench quantifies each on the ship database:

* ``break_on_removed`` -- without run-breaking at inconsistent values,
  the three INSTALL class rules fuse and the paper's R15 disappears;
* ``support_metric`` -- counting distinct pairs instead of instances
  changes which hull-number rules survive;
* subsumption minimization of the merged (induced + declared) knowledge
  base -- duplicates between schema constraints and induced rules
  collapse without losing forward conclusions.
"""

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.reporting import render_table
from repro.rules import minimize_ruleset
from repro.testbed.paper_rules import compare_with_paper

from conftest import SHIP_ORDER, record_report


def induce(binding, **kwargs):
    return InductiveLearningSubsystem(
        binding, InductionConfig(**kwargs),
        relation_order=SHIP_ORDER).induce()


def test_knob_ablations(benchmark, ship_binding):
    def run_all():
        return {
            "default (break, instances)": induce(ship_binding, n_c=3),
            "no run-breaking": induce(ship_binding, n_c=3,
                                      break_on_removed=False),
            "support = distinct pairs": induce(ship_binding, n_c=3,
                                               support_metric="pairs"),
            "fractional N_c = 12.5%": induce(ship_binding, n_c=0.125,
                                             n_c_fraction=True),
        }

    variants = benchmark(run_all)

    rows = []
    for label, rules in variants.items():
        report = compare_with_paper(rules)
        rows.append([label, len(rules), report.exact, report.implied,
                     report.missing, len(report.extras)])

    by_label = dict(zip(variants.keys(), rows))
    # Default reproduces best.
    assert by_label["default (break, instances)"][2] == 15
    # Without run-breaking the fused INSTALL class rule loses R15 (and
    # R16 widens), so exact matches drop.
    assert by_label["no run-breaking"][2] < 15

    record_report(
        "E13", "Induction knob ablations vs the printed rule list",
        render_table(
            ["variant", "rules", "exact/17", "implied", "missing",
             "extras"], rows))


def test_minimization_of_merged_knowledge(benchmark, ship_binding,
                                          ship_rules):
    merged = ship_rules.merged_with(ship_binding.schema_rules())

    result = benchmark(minimize_ruleset, merged)

    assert result.kept < len(merged)
    # Everything dropped is genuinely implied by a keeper.
    from repro.rules.subsumption import rule_subsumed_by
    for redundant, subsumer in result.dropped:
        assert rule_subsumed_by(subsumer, redundant)

    record_report(
        "E13b", "Minimizing the merged induced+declared knowledge base",
        f"merged rules: {len(merged)}; after minimization: "
        f"{result.kept}; dropped as subsumed: {len(result.dropped)}")
