"""E7 -- induced rules vs integrity constraints (Motro-style baseline).

The paper's conclusion: "type inference with induced rules is a more
effective technique to derive intensional answers than using integrity
constraints".  The workload mixes the three worked examples with queries
over knowledge only induction discovers (hull-number ranges, class-name
ranges, ship-sonar correlations).  Expected shape: the induced system
answers every query the baseline answers, plus the induction-only ones.
"""

from repro.baseline import ConstraintOnlyAnswerer, compare_systems
from repro.reporting import render_table

from conftest import record_report
from test_bench_examples import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3

WORKLOAD = [
    ("example 1 (displacement)", EXAMPLE_1),
    ("example 2 (type = SSBN)", EXAMPLE_2),
    ("example 3 (sonar join)", EXAMPLE_3),
    ("hull range (R1 knowledge)",
     "SELECT Name FROM SUBMARINE "
     "WHERE Id >= 'SSBN623' AND Id <= 'SSBN635'"),
    ("hull range via install (R13 knowledge)",
     "SELECT SUBMARINE.Name FROM SUBMARINE, INSTALL "
     "WHERE SUBMARINE.Id = INSTALL.Ship "
     "AND SUBMARINE.Id >= 'SSN604' AND SUBMARINE.Id <= 'SSN671'"),
    ("class-name range (R7 knowledge)",
     "SELECT Class FROM CLASS "
     "WHERE ClassName >= 'Skate' AND ClassName <= 'Thresher'"),
    ("class range on submarines (R16 knowledge)",
     "SELECT SUBMARINE.Name FROM SUBMARINE, INSTALL "
     "WHERE SUBMARINE.Id = INSTALL.Ship "
     "AND SUBMARINE.Class >= '0208' AND SUBMARINE.Class <= '0215'"),
]


def test_baseline_comparison(benchmark, ship_system, ship_binding):
    baseline = ConstraintOnlyAnswerer.from_binding(ship_binding)
    queries = [sql for _label, sql in WORKLOAD]

    report = benchmark(compare_systems, ship_system, baseline, queries)

    # Shape assertions: induced rules answer the whole workload; the
    # baseline answers only the queries whose conditions touch declared
    # constraints (the three examples and the declared class-range
    # structure rule); hull-number and class-name queries are
    # induction-only.
    assert report.induced_answered == len(WORKLOAD)
    assert report.baseline_answered == 4
    assert report.induced_only == 3
    for row in report.rows:
        assert row.induced_total >= row.baseline_total

    rows = []
    for (label, _sql), row in zip(WORKLOAD, report.rows):
        rows.append([label, row.induced_forward, row.induced_backward,
                     row.baseline_forward, row.baseline_backward])
    record_report(
        "E7", "Induced rules vs integrity-constraint baseline",
        render_table(
            ["query", "induced fwd", "induced bwd",
             "constraints fwd", "constraints bwd"], rows)
        + "\n" + report.render())
