"""E23 (extension) -- the version-aware query cache: hot-hit speedup
and the two overhead guards that make it safe to leave on.

Three claims, each measured with interleaved best-of-N runs (noise
hits both sides equally):

* **Hot hits pay off.**  Repeating the E22 scan+join over the 20k-row
  star catalog, and repeating an ``ask()`` (execution + inference)
  over the ship system, must each be >= 10x faster than recomputing.
* **Cold misses are near-free.**  With the cache cleared before every
  run, the probe/admit bookkeeping on the miss path may cost at most
  5% over the raw plan+execute pipeline.
* **Opting out is near-free.**  With ``REPRO_CACHE=off`` semantics
  (``enabled = False``) the pass-through path may also cost at most
  5% -- the knob must never punish users who turn the feature off.

Correctness rides along: the cached result must equal the legacy
executor's bag at morsel sizes 1 and default, and a hit must serve
the identical object without re-executing.
"""

import time

import pytest

from repro.cache import query_cache
from repro.plan.planner import plan_select
from repro.plan.stats import statistics
from repro.reporting import render_table
from repro.sql.executor import execute_select_legacy
from repro.sql.parser import parse_select
from repro.testbed.generators import synthetic_star_database

from conftest import record_report

N_ENTITIES = 20_000
N_GROUPS = 20

#: E22's selective scan+join: expensive enough that a hot hit is
#: obviously cheaper, cheap enough that the miss path's bookkeeping
#: would show up if it cost anything real.
SCAN_JOIN_SQL = (
    "SELECT ENTITY.Id, GROUPS.Weight FROM ENTITY, GROUPS "
    "WHERE ENTITY.GroupId = GROUPS.GroupId "
    "AND ENTITY.Size > 150 AND GROUPS.Label = 'G01'")

ASK_SQL = ("SELECT SUBMARINE.Name FROM SUBMARINE, CLASS "
           "WHERE SUBMARINE.Class = CLASS.Class "
           "AND CLASS.Displacement > 8000")

HOT_TARGET = 10.0
OVERHEAD_BUDGET = 0.05

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def star_db():
    database = synthetic_star_database(
        n_entities=N_ENTITIES, n_groups=N_GROUPS, seed=11)
    statistics(database).table_stats("ENTITY")
    statistics(database).table_stats("GROUPS")
    cache = query_cache(database)
    cache.floor_s = 0.0  # deterministic admission for the guards
    plan_select(database, parse_select(SCAN_JOIN_SQL)).execute()
    return database


def _uncached(database, statement, batch_size=None):
    """The raw pipeline the cache wraps: plan, execute, no memo."""
    return plan_select(database, statement).execute(batch_size)


def _interleaved(fn_a, fn_b, repeats=7):
    """Best-of-N with alternating runs (the E22 idiom)."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_cached_select_equivalent_at_all_batch_sizes(star_db):
    cache = query_cache(star_db)
    statement = parse_select(SCAN_JOIN_SQL)
    legacy = execute_select_legacy(star_db, statement)
    assert len(legacy) > 0
    for batch_size in (1, None):
        cache.clear()
        assert cache.execute_select(statement,
                                    batch_size=batch_size) == legacy
    # And a hot hit serves the identical relation object.
    first = cache.execute_select(statement)
    assert cache.execute_select(statement) is first


def test_hot_select_speedup(benchmark, star_db):
    cache = query_cache(star_db)
    statement = parse_select(SCAN_JOIN_SQL)
    cache.clear()
    warm = cache.execute_select(statement)  # populate

    result = benchmark(lambda: cache.execute_select(statement))
    assert result is warm

    uncached_s, hot_s = _interleaved(
        lambda: _uncached(star_db, statement),
        lambda: cache.execute_select(statement))
    speedup = uncached_s / hot_s
    _RESULTS["select hot hit"] = {
        "uncached_s": uncached_s, "cached_s": hot_s, "speedup": speedup,
        "guard": f">= {HOT_TARGET:.0f}x", "guard_passed":
        speedup >= HOT_TARGET}
    assert speedup >= HOT_TARGET, (
        f"hot result-cache hit only {speedup:.1f}x over recompute "
        f"({uncached_s * 1000:.3f}ms vs {hot_s * 1000:.3f}ms)")


def test_hot_ask_speedup(benchmark, ship_system):
    cache = query_cache(ship_system.database)
    cache.floor_s = 0.0
    cache.clear()
    warm = ship_system.ask(ASK_SQL)
    assert warm.intensional

    result = benchmark(lambda: ship_system.ask(ASK_SQL))
    assert result is warm

    def cold():
        cache.clear()
        return ship_system.ask(ASK_SQL)

    cold_s, hot_s = _interleaved(cold,
                                 lambda: ship_system.ask(ASK_SQL),
                                 repeats=15)
    speedup = cold_s / hot_s
    _RESULTS["ask() hot hit"] = {
        "uncached_s": cold_s, "cached_s": hot_s, "speedup": speedup,
        "guard": f">= {HOT_TARGET:.0f}x", "guard_passed":
        speedup >= HOT_TARGET}
    cache.clear()
    assert speedup >= HOT_TARGET, (
        f"hot ask-cache hit only {speedup:.1f}x over recompute "
        f"({cold_s * 1000:.3f}ms vs {hot_s * 1000:.3f}ms)")


def test_cold_miss_overhead_bounded(star_db):
    """Clearing before every run forces the full miss path (probe,
    re-plan, execute, size estimate, admit): it may cost at most 5%
    over the pipeline without the cache in the loop."""
    cache = query_cache(star_db)
    statement = parse_select(SCAN_JOIN_SQL)

    def miss():
        cache.clear()
        return cache.execute_select(statement)

    uncached_s, miss_s = _interleaved(
        lambda: _uncached(star_db, statement), miss, repeats=9)
    overhead = miss_s / uncached_s - 1.0
    _RESULTS["cold miss"] = {
        "uncached_s": uncached_s, "cached_s": miss_s,
        "overhead": overhead, "guard": f"<= {OVERHEAD_BUDGET:.0%}",
        "guard_passed": overhead <= OVERHEAD_BUDGET}
    assert overhead <= OVERHEAD_BUDGET, (
        f"cold-miss path costs {overhead * 100:+.1f}% "
        f"({miss_s * 1000:.3f}ms vs {uncached_s * 1000:.3f}ms uncached)")


def test_disabled_overhead_bounded(star_db):
    """REPRO_CACHE=off must be a pure pass-through: at most 5% over
    the raw pipeline."""
    cache = query_cache(star_db)
    statement = parse_select(SCAN_JOIN_SQL)
    cache.clear()
    cache.enabled = False
    try:
        assert (cache.execute_select(statement)
                == execute_select_legacy(star_db, statement))
        uncached_s, bypass_s = _interleaved(
            lambda: _uncached(star_db, statement),
            lambda: cache.execute_select(statement), repeats=9)
    finally:
        cache.enabled = True
    overhead = bypass_s / uncached_s - 1.0
    _RESULTS["disabled bypass"] = {
        "uncached_s": uncached_s, "cached_s": bypass_s,
        "overhead": overhead, "guard": f"<= {OVERHEAD_BUDGET:.0%}",
        "guard_passed": overhead <= OVERHEAD_BUDGET}
    assert overhead <= OVERHEAD_BUDGET, (
        f"disabled-cache bypass costs {overhead * 100:+.1f}% "
        f"({bypass_s * 1000:.3f}ms vs {uncached_s * 1000:.3f}ms)")


def test_report(star_db):
    rows = []
    for label, numbers in _RESULTS.items():
        ratio = (f"{numbers['speedup']:.1f}x" if "speedup" in numbers
                 else f"{numbers['overhead'] * 100:+.1f}%")
        verdict = "ok" if numbers["guard_passed"] else "FAIL"
        rows.append([label, f"{numbers['uncached_s'] * 1000:.3f}",
                     f"{numbers['cached_s'] * 1000:.3f}", ratio,
                     f"{numbers['guard']} {verdict}"])
    record_report(
        "E23",
        f"Version-aware query cache: hot hits vs recompute, miss and "
        f"bypass overhead (ENTITY {N_ENTITIES} rows x GROUPS "
        f"{N_GROUPS})",
        render_table(
            ["path", "uncached ms", "cached ms", "effect", "guard"],
            rows),
        data=_RESULTS)
