"""E27 -- columnar storage and vectorized predicate kernels vs the
streamed row pipeline.

Three claims, each measured by interleaved best-of-N (same discipline
as E22, which serves as the row-pipeline reference this experiment is
defined against):

* the selective scan+join of E22 runs at least
  :data:`SCAN_JOIN_TARGET` x faster on the columnar kernels than on the
  streamed compiled *row* pipeline (and :data:`INTERPRETED_TARGET` x
  faster than the materializing interpreted one);
* ILS re-induction over a 20k-row classified relation -- the interval
  passes reduced over distinct-pair counts instead of row walks -- gains
  at least :data:`ILS_TARGET` x;
* index point lookups, already fast, lose at most 10%.

The kernels fall back to pure Python arrays when numpy is absent, so
every guard has a calibrated pure-Python floor; the report records
which path was measured.  Result equivalence (tuple-for-tuple rows,
rule-for-rule induction) is asserted before any timing is trusted.
"""

import time

import pytest

from repro.induction import InductionConfig
from repro.induction.pairwise import induce_scheme
from repro.plan.planner import plan_select
from repro.plan.plans import UNBOUNDED
from repro.plan.stats import statistics
from repro.relational import columnar, compiled
from repro.reporting import render_table
from repro.sql.parser import parse_select
from repro.testbed.generators import (
    synthetic_classified_database, synthetic_star_database,
)

from conftest import record_report

N_ENTITIES = 20_000
N_GROUPS = 20
N_ITEMS = 20_000

#: Same workload as E22: a range predicate past the index-fraction
#: threshold (TableScan+Filter over ENTITY) feeding a hash join.
SCAN_JOIN_SQL = (
    "SELECT ENTITY.Id, GROUPS.Weight FROM ENTITY, GROUPS "
    "WHERE ENTITY.GroupId = GROUPS.GroupId "
    "AND ENTITY.Size > 150 AND GROUPS.Label = 'G01'")
POINT_SQL = "SELECT GroupId FROM ENTITY WHERE Id = 1234"

#: Guard floors, calibrated per kernel backend (numpy reductions vs
#: pure-Python array loops).
SCAN_JOIN_TARGET = 4.0 if columnar.HAS_NUMPY else 1.3
INTERPRETED_TARGET = 8.0 if columnar.HAS_NUMPY else 2.5
ILS_TARGET = 2.0 if columnar.HAS_NUMPY else 1.2

_RESULTS: dict[str, dict] = {}


def _with_columnar(enabled, fn):
    before = columnar.FORCED
    columnar.set_enabled(enabled)
    try:
        return fn()
    finally:
        columnar.set_enabled(before)


def _run_columnar(database, statement):
    return _with_columnar(
        True, lambda: plan_select(database, statement).execute())


def _run_row(database, statement):
    """The E22 streamed pipeline: compiled closures, row batches."""
    return _with_columnar(
        False, lambda: plan_select(database, statement).execute())


def _run_interpreted(database, statement):
    """The pre-refactor pipeline: interpreted, one batch, row store."""
    def go():
        assert compiled.ENABLED
        try:
            compiled.ENABLED = False
            return plan_select(database, statement).execute(
                batch_size=UNBOUNDED)
        finally:
            compiled.ENABLED = True
    return _with_columnar(False, go)


def _interleaved(fn_pre, fn_post, repeats=7):
    """Best-of-N with alternating runs, so noise hits both pipelines."""
    best_pre = best_post = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_pre()
        best_pre = min(best_pre, time.perf_counter() - start)
        start = time.perf_counter()
        fn_post()
        best_post = min(best_post, time.perf_counter() - start)
    return best_pre, best_post


@pytest.fixture(scope="module")
def star_db():
    database = synthetic_star_database(
        n_entities=N_ENTITIES, n_groups=N_GROUPS, seed=11)
    statistics(database).table_stats("ENTITY")
    statistics(database).table_stats("GROUPS")
    statement = parse_select(SCAN_JOIN_SQL)
    # Warm both pipelines (plan cache, indexes, the column store).
    _run_row(database, statement)
    _run_columnar(database, statement)
    _run_columnar(database, parse_select(POINT_SQL))
    return database


def test_scan_join_columnar_speedup(benchmark, star_db):
    statement = parse_select(SCAN_JOIN_SQL)
    rendered = _with_columnar(
        True, lambda: plan_select(star_db, statement).render())
    assert "TableScan ENTITY" in rendered and "Filter" in rendered

    fused = _run_columnar(star_db, statement)
    rowwise = _run_row(star_db, statement)
    interpreted = _run_interpreted(star_db, statement)
    assert list(fused.rows) == list(rowwise.rows)
    assert list(fused.rows) == list(interpreted.rows)
    assert 0 < len(fused) < N_ENTITIES / 2

    result = benchmark(lambda: _run_columnar(star_db, statement))
    assert len(result) == len(fused)

    row_s, columnar_s = _interleaved(
        lambda: _run_row(star_db, statement),
        lambda: _run_columnar(star_db, statement))
    interpreted_s, _ = _interleaved(
        lambda: _run_interpreted(star_db, statement),
        lambda: _run_columnar(star_db, statement), repeats=3)
    _RESULTS["scan+join"] = {
        "row_s": row_s, "columnar_s": columnar_s,
        "interpreted_s": interpreted_s,
        "speedup": row_s / columnar_s,
        "speedup_vs_interpreted": interpreted_s / columnar_s,
        "guard": f">= {SCAN_JOIN_TARGET}x vs streamed rows",
        "guard_passed": row_s / columnar_s >= SCAN_JOIN_TARGET,
    }
    assert row_s / columnar_s >= SCAN_JOIN_TARGET, (
        f"expected >={SCAN_JOIN_TARGET}x from columnar kernels, got "
        f"{row_s / columnar_s:.2f}x ({row_s * 1000:.2f}ms rows vs "
        f"{columnar_s * 1000:.2f}ms columnar)")
    assert interpreted_s / columnar_s >= INTERPRETED_TARGET, (
        f"expected >={INTERPRETED_TARGET}x vs the interpreted pipeline, "
        f"got {interpreted_s / columnar_s:.2f}x")


def test_point_lookup_overhead_bounded(benchmark, star_db):
    """Index point probes bypass the kernels entirely; the columnar
    store may add at most 10% on the plan+execute round trip."""
    statement = parse_select(POINT_SQL)
    rendered = _with_columnar(
        True, lambda: plan_select(star_db, statement).render())
    assert "IndexScan" in rendered

    assert (_run_columnar(star_db, statement)
            == _run_row(star_db, statement))
    result = benchmark(lambda: _run_columnar(star_db, statement))
    assert len(result) == 1

    row_s, columnar_s = _interleaved(
        lambda: _run_row(star_db, statement),
        lambda: _run_columnar(star_db, statement), repeats=15)
    _RESULTS["point"] = {
        "row_s": row_s, "columnar_s": columnar_s,
        "overhead": columnar_s / row_s - 1.0,
        "guard": "<= 10% overhead",
        "guard_passed": columnar_s <= row_s * 1.10,
    }
    assert columnar_s <= row_s * 1.10, (
        f"point-lookup overhead over 10%: {columnar_s * 1000:.3f}ms "
        f"columnar vs {row_s * 1000:.3f}ms rows")


def test_ils_reinduction_speedup(benchmark, star_db):
    database = synthetic_classified_database(N_ITEMS, seed=7)
    relation = database.relation("ITEM")
    config = InductionConfig(n_c=3)

    def induce_on():
        return _with_columnar(True, lambda: induce_scheme(
            relation, "Value", "Label", config))

    def induce_off():
        return _with_columnar(False, lambda: induce_scheme(
            relation, "Value", "Label", config))

    _with_columnar(True, relation.column_store)  # warm, as after a query
    assert [str(rule) for rule in induce_on()] == \
        [str(rule) for rule in induce_off()]

    result = benchmark(induce_on)
    assert result

    row_s, columnar_s = _interleaved(induce_off, induce_on, repeats=5)
    _RESULTS["ils re-induction"] = {
        "row_s": row_s, "columnar_s": columnar_s,
        "speedup": row_s / columnar_s,
        "guard": f">= {ILS_TARGET}x",
        "guard_passed": row_s / columnar_s >= ILS_TARGET,
    }
    assert row_s / columnar_s >= ILS_TARGET, (
        f"expected >={ILS_TARGET}x on re-induction, got "
        f"{row_s / columnar_s:.2f}x ({row_s * 1000:.2f}ms rows vs "
        f"{columnar_s * 1000:.2f}ms columnar)")


def test_record_report(star_db):
    assert set(_RESULTS) == {"scan+join", "point", "ils re-induction"}
    rows = [[label,
             f"{entry['row_s'] * 1000:.3f}",
             f"{entry['columnar_s'] * 1000:.3f}",
             f"{entry['row_s'] / entry['columnar_s']:.1f}x",
             entry["guard"]]
            for label, entry in sorted(_RESULTS.items())]
    backend = "numpy" if columnar.HAS_NUMPY else "pure-python"
    record_report(
        "E27",
        f"Columnar kernels vs streamed row pipeline "
        f"({backend}; ENTITY {N_ENTITIES} rows, ITEM {N_ITEMS} rows)",
        render_table(
            ["workload", "rows ms", "columnar ms", "speedup", "guard"],
            rows),
        data={**_RESULTS, "backend": backend})
