"""E15 (extension) -- inter-object comparison constraints (Section 3.1).

Reproduces the paper's "draft of the ship must be less than the depth of
the port" knowledge: induces the constraint from VISIT instances, then
shows the intensional answer it enables (a depth condition classifying
the visiting ships).  Timed kernels: constraint induction over a scaled
visit relation, and the propagate+chain inference.
"""

import random

from repro.induction.interobject import induce_comparison_constraints
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.relational import Database, INTEGER, char
from repro.reporting import render_table
from repro.testbed import harbor_database, harbor_ker_schema
from repro.testbed.harbor import HARBOR_SCHEMA_DDL, PORT_ROWS, SHIP_ROWS

from conftest import record_report

DEPTH_QUERY = (
    "SELECT SHIP.Name, SHIP.Size FROM SHIP, PORT, VISIT "
    "WHERE SHIP.Id = VISIT.Ship AND PORT.Port = VISIT.Port "
    "AND PORT.Depth <= 8")


def scaled_harbor(n_visits: int, seed: int = 5) -> Database:
    """Harbor database with *n_visits* random draft<depth visits."""
    rng = random.Random(seed)
    db = harbor_database()
    visit = db.relation("VISIT")
    visit.clear()
    ships = [(row[0], row[2]) for row in SHIP_ROWS]
    ports = [(row[0], row[2]) for row in PORT_ROWS]
    rows = []
    while len(rows) < n_visits:
        ship_id, draft = rng.choice(ships)
        port_id, depth = rng.choice(ports)
        if draft < depth:
            rows.append((ship_id, port_id))
    visit.insert_many(rows)
    return db


def test_constraint_induction(benchmark):
    db = scaled_harbor(2000)
    binding = SchemaBinding(harbor_ker_schema(), db)

    constraints = benchmark(induce_comparison_constraints, binding,
                            "VISIT")

    (constraint,) = constraints
    assert constraint.render() == "SHIP.Draft < PORT.Depth"
    assert constraint.support == 2000

    record_report(
        "E15", "Section 3.1 inter-object constraint (draft < depth)",
        f"induced: {constraint.render()} "
        f"(holds on {constraint.support}/2000 visits)\n"
        "paper:   \"the draft of the ship must be less than the depth "
        "of the port\"")


def test_propagating_inference(benchmark):
    system = IntensionalQueryProcessor.from_database(
        harbor_database(), ker_schema=harbor_ker_schema(),
        relation_order=["SHIP", "PORT", "VISIT"],
        induce_comparisons=True)

    result = benchmark(system.ask, DEPTH_QUERY)

    assert result.inference.forward_subtypes() == ["SMALL"]
    assert result.inference.propagations
    record_report(
        "E15b", "Bound propagation enabling a forward answer",
        result.inference.summary())
