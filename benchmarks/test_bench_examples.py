"""E3/E4/E5 -- the worked examples of Section 6.

Each benchmark times the full ask() path (SQL parse + extensional
execution + condition extraction + type inference) and asserts the
paper's extensional rows and intensional characterizations, recording a
side-by-side report.
"""

from conftest import record_report

EXAMPLE_1 = (
    "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
    "FROM SUBMARINE, CLASS "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000")
EXAMPLE_2 = (
    "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = 'SSBN'")
EXAMPLE_3 = (
    "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
    "FROM SUBMARINE, CLASS, INSTALL "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP "
    "AND INSTALL.SONAR = 'BQS-04'")


def test_example1_forward(benchmark, ship_system):
    result = benchmark(ship_system.ask, EXAMPLE_1)
    assert sorted(result.extensional.rows) == [
        ("SSBN130", "Typhoon", "1301", "SSBN"),
        ("SSBN730", "Rhode Island", "0101", "SSBN")]
    assert result.inference.forward_subtypes() == ["SSBN"]
    record_report(
        "E3", "Example 1 -- forward inference (Displacement > 8000)",
        "paper:    A_I = \"Ship type SSBN has displacement greater "
        "than 8000\"\n"
        "measured: " + result.inference.forward_answers()[0].render()
        + f"\nextensional rows: {len(result.extensional)} "
          "(paper: 2 -- Rhode Island, Typhoon)")


def test_example2_backward(benchmark, ship_system):
    result = benchmark(ship_system.ask, EXAMPLE_2)
    assert len(result.extensional) == 7
    best = result.inference.best_backward_description()
    assert (best["interval"].low, best["interval"].high) == (
        "0101", "0103")
    record_report(
        "E4", "Example 2 -- backward inference (Type = SSBN)",
        "paper:    A_I = \"Ship Classes in the range of 0101 to 0103 "
        "are SSBN\" (partial: 1301 missing)\n"
        "measured: " + best["interval"].render("Class")
        + " are SSBN; 1301 not covered: "
        + str(not best["interval"].contains_value("1301"))
        + f"\nextensional rows: {len(result.extensional)} (paper: 7)")


def test_example3_combined(benchmark, ship_system):
    result = benchmark(ship_system.ask, EXAMPLE_3)
    assert len(result.extensional) == 4
    assert set(result.inference.forward_subtypes()) == {"BQS", "SSN"}
    best = result.inference.best_backward_description()
    assert (best["interval"].low, best["interval"].high) == (
        "0208", "0215")
    record_report(
        "E5", "Example 3 -- combined inference (Sonar = BQS-04)",
        "paper:    A_I = \"Ship type SSN with class 0208 to 0215 is "
        "equipped with sonar BQS-04\"\n"
        "measured: " + result.combined_answer()
        + f"\nextensional rows: {len(result.extensional)} (paper: 4)")


def test_example1_inference_only(benchmark, ship_system):
    """Inference cost without extensional execution, for comparison."""
    from repro.query.conditions import extract_conditions
    from repro.sql.parser import parse_select

    statement = parse_select(EXAMPLE_1)
    conditions = extract_conditions(ship_system.database, statement)

    def infer():
        return ship_system.engine.infer(
            conditions.clauses, equivalences=conditions.equivalences)

    result = benchmark(infer)
    assert result.forward_subtypes() == ["SSBN"]
