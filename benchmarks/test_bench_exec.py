"""E22 (extension) -- streaming batch execution vs the materializing
interpreted pipeline.

The pre-refactor pipeline is recovered exactly by two switches: the
``compiled.ENABLED`` flag off (per-row Environment interpretation
everywhere) and an :data:`UNBOUNDED` batch size (every node
materializes its whole output as one batch).  The workload is a
selective scan+join over a 20k-row star schema whose range predicate
covers far more than :data:`INDEX_FRACTION_THRESHOLD` of the value
domain, so the planner chooses TableScan+Filter -- the compiled
predicates, not an index, must provide the win (target >= 2x).  A
point lookup through the hash index bounds the refactor's overhead on
queries that were already index-fast (<= 10%).

Measurements interleave the two pipelines (best-of-N on alternating
runs) so background noise hits both equally.  The O(batch) bound on
intermediate materialization is asserted directly via the plan batch
observer: no node ever yields a batch larger than the morsel size.
"""

import time

import pytest

from repro.plan.planner import plan_select
from repro.plan.plans import UNBOUNDED, set_batch_observer
from repro.plan.stats import statistics
from repro.relational import columnar, compiled
from repro.reporting import render_table
from repro.sql.executor import execute_select_legacy
from repro.sql.parser import parse_select
from repro.testbed.generators import synthetic_star_database

from conftest import record_report

N_ENTITIES = 20_000
N_GROUPS = 20

#: Size > 150 covers ~92% of the [0, 2000) domain -- past the planner's
#: index-fraction threshold, forcing TableScan+Filter over ENTITY.
SCAN_JOIN_SQL = (
    "SELECT ENTITY.Id, GROUPS.Weight FROM ENTITY, GROUPS "
    "WHERE ENTITY.GroupId = GROUPS.GroupId "
    "AND ENTITY.Size > 150 AND GROUPS.Label = 'G01'")
POINT_SQL = "SELECT GroupId FROM ENTITY WHERE Id = 1234"

_RESULTS: dict[str, tuple[float, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _row_pipeline():
    """Pin the pre-columnar row pipeline for the whole module.

    E22 is the streamed *row* reference that E27 measures the columnar
    kernels against, and its O(batch) assertion needs TableScan to
    actually stream morsels rather than be fused into one columnar
    selection."""
    before = columnar.FORCED
    columnar.set_enabled(False)
    yield
    columnar.set_enabled(before)


@pytest.fixture(scope="module")
def star_db():
    database = synthetic_star_database(
        n_entities=N_ENTITIES, n_groups=N_GROUPS, seed=11)
    # Warm statistics and the indexes both pipelines share, so the
    # measurement compares steady-state execution strategies.
    statistics(database).table_stats("ENTITY")
    statistics(database).table_stats("GROUPS")
    _run_streaming(database, parse_select(SCAN_JOIN_SQL))
    _run_streaming(database, parse_select(POINT_SQL))
    return database


def _run_streaming(database, statement):
    """The post-refactor pipeline: compiled predicates, default morsels."""
    return plan_select(database, statement).execute()


def _run_materializing(database, statement):
    """The pre-refactor pipeline: interpreted predicates, one batch."""
    assert compiled.ENABLED
    try:
        compiled.ENABLED = False
        return plan_select(database, statement).execute(
            batch_size=UNBOUNDED)
    finally:
        compiled.ENABLED = True


def _interleaved(fn_pre, fn_post, repeats=7):
    """Best-of-N with alternating runs, so noise hits both pipelines."""
    best_pre = best_post = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_pre()
        best_pre = min(best_pre, time.perf_counter() - start)
        start = time.perf_counter()
        fn_post()
        best_post = min(best_post, time.perf_counter() - start)
    return best_pre, best_post


def test_scan_join_speedup(benchmark, star_db):
    statement = parse_select(SCAN_JOIN_SQL)

    # Pin the access path this experiment is about: a filtered table
    # scan (compiled predicates), not an index range probe.
    rendered = plan_select(star_db, statement).render()
    assert "TableScan ENTITY" in rendered and "Filter" in rendered

    streamed = _run_streaming(star_db, statement)
    materialized = _run_materializing(star_db, statement)
    legacy = execute_select_legacy(star_db, statement)
    assert list(streamed.rows) == list(materialized.rows)
    assert streamed == legacy
    assert 0 < len(streamed) < N_ENTITIES / 2, "join is meant to be selective"

    result = benchmark(lambda: _run_streaming(star_db, statement))
    assert len(result) == len(streamed)

    pre_s, post_s = _interleaved(
        lambda: _run_materializing(star_db, statement),
        lambda: _run_streaming(star_db, statement))
    _RESULTS["scan+join"] = (pre_s, post_s)
    assert pre_s / post_s >= 2.0, (
        f"expected >=2x from compiled streaming, got "
        f"{pre_s / post_s:.2f}x ({pre_s * 1000:.2f}ms interpreted vs "
        f"{post_s * 1000:.2f}ms compiled)")


def test_point_lookup_overhead_bounded(benchmark, star_db):
    """Index point probes were already fast; streaming + compilation
    may add at most 10% on the full plan+execute round trip."""
    statement = parse_select(POINT_SQL)
    assert "IndexScan" in plan_select(star_db, statement).render()

    streamed = _run_streaming(star_db, statement)
    assert streamed == execute_select_legacy(star_db, statement)

    result = benchmark(lambda: _run_streaming(star_db, statement))
    assert len(result) == len(streamed)

    pre_s, post_s = _interleaved(
        lambda: _run_materializing(star_db, statement),
        lambda: _run_streaming(star_db, statement),
        repeats=15)
    _RESULTS["point"] = (pre_s, post_s)
    assert post_s <= pre_s * 1.10, (
        f"point-lookup overhead over 10%: {post_s * 1000:.3f}ms streamed "
        f"vs {pre_s * 1000:.3f}ms materializing")


def test_intermediate_materialization_is_o_batch(star_db):
    """Direct assertion of the memory claim: with morsel size B, no
    plan node ever holds/yields a batch larger than B, and the scan
    actually streams (more than one batch)."""
    statement = parse_select(SCAN_JOIN_SQL)
    size = 256
    per_node: dict[str, list[int]] = {}
    set_batch_observer(
        lambda plan, batch: per_node.setdefault(
            type(plan).__name__, []).append(len(batch)))
    try:
        result = plan_select(star_db, statement).execute(batch_size=size)
    finally:
        set_batch_observer(None)

    assert len(result) > 0
    assert per_node, "no batches observed"
    for node, sizes in per_node.items():
        assert max(sizes) <= size, (node, max(sizes))
    assert len(per_node["TableScanPlan"]) > 1, (
        "20k rows at batch 256 must stream in many morsels")

    rows = [[label, f"{pre * 1000:.3f}", f"{post * 1000:.3f}",
             f"{pre / post:.1f}x"]
            for label, (pre, post) in sorted(_RESULTS.items())]
    record_report(
        "E22",
        f"Streaming compiled execution vs materializing interpreted "
        f"pipeline (ENTITY {N_ENTITIES} rows x GROUPS {N_GROUPS})",
        render_table(
            ["query", "interpreted ms", "streamed ms", "speedup"], rows),
        data={label: {"interpreted_s": pre, "streamed_s": post,
                      "speedup": pre / post}
              for label, (pre, post) in sorted(_RESULTS.items())})
