"""E17 (extension) -- N_c as a regularizer: held-out generalization.

Section 5.2.1 motivates N_c by storage and search overhead; under noisy
data pruning also prevents overfitting.  This bench induces on a 70%
train split of a noisy synthetic database, evaluates interval-rule
coverage/precision/accuracy on the held-out 30%, and sweeps N_c.
Expected shape: training precision is always high (rules are sound on
what they saw); held-out precision *rises* with N_c (low-support rules
memorize noise) while coverage falls -- the classic tradeoff curve.
"""

from repro.induction import InductionConfig
from repro.induction.pairwise import extract_pairs_native, induce_from_pairs
from repro.induction.quality import classification_metrics
from repro.reporting import render_table
from repro.rules.clause import AttributeRef
from repro.testbed import synthetic_classified_database

from conftest import record_report

VALUE = AttributeRef("ITEM", "Value")
LABEL = AttributeRef("ITEM", "Label")


def split_records(noise: float, seed: int = 31, n_rows: int = 3000):
    db = synthetic_classified_database(n_rows=n_rows, n_classes=6,
                                       seed=seed, noise=noise)
    relation = db.relation("ITEM")
    records = [{VALUE: relation.value(row, "Value"),
                LABEL: relation.value(row, "Label")}
               for row in relation]
    cut = int(len(records) * 0.7)
    return records[:cut], records[cut:]


def induce_at(train, n_c):
    extraction = extract_pairs_native(
        (record[VALUE], record[LABEL]) for record in train)
    return induce_from_pairs(extraction, VALUE, LABEL,
                             InductionConfig(n_c=n_c),
                             relation_size=len(train))


def test_generalization_sweep(benchmark):
    train, test = split_records(noise=0.10)

    def sweep():
        return {n_c: induce_at(train, n_c)
                for n_c in (1, 2, 4, 8, 16)}

    rule_sets = benchmark(sweep)

    rows = []
    by_nc = {}
    for n_c, rules in rule_sets.items():
        train_metrics = classification_metrics(rules, train, LABEL)
        test_metrics = classification_metrics(rules, test, LABEL)
        by_nc[n_c] = (train_metrics, test_metrics)
        rows.append([n_c, len(rules),
                     f"{train_metrics.precision:.3f}",
                     f"{test_metrics.precision:.3f}",
                     f"{test_metrics.coverage:.3f}",
                     f"{test_metrics.accuracy:.3f}"])

    # Shape: pruning improves held-out precision; rules shrink.
    assert by_nc[16][1].precision > by_nc[1][1].precision
    assert len(rule_sets[16]) < len(rule_sets[1])
    # Training precision is perfect at every threshold (soundness).
    assert all(metrics[0].precision == 1.0 for metrics in by_nc.values())

    record_report(
        "E17", "N_c as a regularizer (10% label noise, 70/30 split)",
        render_table(
            ["N_c", "rules", "train precision", "test precision",
             "test coverage", "test accuracy"], rows))


def test_clean_data_needs_no_pruning(benchmark):
    train, test = split_records(noise=0.0, seed=37)

    rules = benchmark(induce_at, train, 1)

    test_metrics = classification_metrics(rules, test, LABEL)
    assert test_metrics.precision == 1.0
    assert test_metrics.accuracy > 0.95
