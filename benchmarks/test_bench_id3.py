"""E12 -- model-based learning: ID3 descriptors vs pairwise intervals.

Section 3.2 frames the ILS within the general inductive-learning loop
(recursive best-descriptor selection).  This benchmark runs both
learners on the same classification task -- ship type from class
attributes -- and reports accuracy/complexity.  Expected shape: on the
ship data both are perfect (the bands are clean); on overlapping Table 1
surface types the tree (with the category descriptor) wins where
single-attribute intervals cannot separate.
"""

from repro.induction import (
    InductionConfig, id3_induce, induce_scheme, tree_to_rules,
)
from repro.induction.id3 import accuracy
from repro.relational import algebra
from repro.reporting import render_table
from repro.rules.clause import AttributeRef
from repro.testbed import battleship_database

from conftest import record_report

DISP = AttributeRef("SHIP", "Displacement")
CATEGORY = AttributeRef("SHIPTYPE", "Category")
TYPE = AttributeRef("SHIP", "Type")


def fleet_records(db):
    ship = db.relation("SHIP")
    categories = {row[0]: row[2] for row in db.relation("SHIPTYPE")}
    return [{
        DISP: ship.value(row, "Displacement"),
        CATEGORY: categories[ship.value(row, "Type")],
        TYPE: ship.value(row, "Type"),
    } for row in ship]


def interval_rule_accuracy(rules, records):
    """Fraction of records some rule classifies correctly (records no
    rule covers count as wrong, mirroring tree fallback-free scoring)."""
    correct = 0
    for record in records:
        fired = [rule for rule in rules
                 if rule.premise_satisfied_by(record)]
        if fired and all(rule.rhs.satisfied_by(record[TYPE])
                         for rule in fired):
            correct += 1
    return correct / len(records)


def test_id3_vs_intervals(benchmark):
    db = battleship_database(ships_per_type=25, seed=7)
    records = fleet_records(db)

    tree = benchmark(id3_induce, records, [CATEGORY, DISP], TYPE)

    tree_accuracy = accuracy(tree, records, TYPE)
    tree_rules = tree_to_rules(tree, TYPE)

    interval_rules = induce_scheme(
        db.relation("SHIP"), "Displacement", "Type",
        InductionConfig(n_c=3))
    intervals_accuracy = interval_rule_accuracy(interval_rules, records)

    subsurface = algebra.select_where(
        db.relation("SHIP"), lambda r: r["Type"] in ("SSBN", "SSN"))
    sub_rules = induce_scheme(subsurface, "Displacement", "Type",
                              InductionConfig(n_c=3))
    sub_records = [r for r in records
                   if r[CATEGORY] == "Subsurface"]
    sub_accuracy = interval_rule_accuracy(sub_rules, sub_records)

    assert tree_accuracy == 1.0
    assert sub_accuracy == 1.0
    assert intervals_accuracy < 1.0  # overlapping surface ranges

    record_report(
        "E12", "ID3 descriptors vs pairwise interval rules",
        render_table(
            ["learner", "task", "rules", "training accuracy"],
            [["ID3 (Category, Displacement)", "all 12 types",
              len(tree_rules), f"{tree_accuracy:.3f}"],
             ["intervals (Displacement)", "all 12 types",
              len(interval_rules), f"{intervals_accuracy:.3f}"],
             ["intervals (Displacement)", "Subsurface only",
              len(sub_rules), f"{sub_accuracy:.3f}"]]))


def test_id3_on_ship_classes(benchmark, ship_binding):
    """Tree learner on the real CLASS relation (Displacement -> Type)."""
    relation = ship_binding.database.relation("CLASS")
    disp = AttributeRef("CLASS", "Displacement")
    target = AttributeRef("CLASS", "Type")
    records = [{disp: relation.value(row, "Displacement"),
                target: relation.value(row, "Type")}
               for row in relation]

    tree = benchmark(id3_induce, records, [disp], target)
    assert accuracy(tree, records, target) == 1.0
    # The split threshold falls in the paper's gap [6955, 7250).
    assert 6955 <= tree.threshold < 7250
