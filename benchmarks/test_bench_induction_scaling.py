"""E10 -- induction cost vs database size.

Section 3.2 notes automated induction "has been used mainly in
applications where the size of training examples is small" and motivates
schema-guided candidate selection to cope with large databases.  This
benchmark grows the ship database (cloning submarines with fresh hull
numbers) and a synthetic single-scheme database, timing the full ILS on
each and the two execution paths (native vs QUEL) against each other.

Expected shape: native path roughly linear in rows (sorting dominates);
the QUEL path pays the tuple-calculus overhead of the paper's
self-join formulation (quadratic in distinct X for step 2), which is
exactly why the paper pushed the work into the DBMS.
"""

import pytest

from repro.induction import (
    InductionConfig, InductiveLearningSubsystem, induce_scheme,
)
from repro.ker import SchemaBinding
from repro.reporting import render_table
from repro.testbed import ship_ker_schema, synthetic_classified_database
from repro.testbed.generators import scaled_ship_database

from conftest import SHIP_ORDER, record_report

_SCALE_RESULTS: dict[int, float] = {}


@pytest.mark.parametrize("scale", [1, 4, 16])
def test_ils_scaling_on_ship_database(benchmark, scale):
    db = scaled_ship_database(scale=scale)
    binding = SchemaBinding(ship_ker_schema(), db)

    def induce():
        return InductiveLearningSubsystem(
            binding, InductionConfig(n_c=3),
            relation_order=SHIP_ORDER).induce()

    rules = benchmark(induce)
    rendered = rules.render(isa_style=True)
    # Class-level knowledge is invariant under cloning.
    assert "7250 <= CLASS.Displacement <= 30000" in rendered
    if benchmark.stats is None:  # --benchmark-disable smoke run
        return
    _SCALE_RESULTS[scale] = benchmark.stats["mean"]
    if scale == 16:
        rows = [[s, 24 * s + 24 * s + 13 + 2 + 8,
                 f"{_SCALE_RESULTS[s] * 1000:.2f}"]
                for s in sorted(_SCALE_RESULTS)]
        record_report(
            "E10", "ILS wall time vs ship-database scale (native path)",
            render_table(["scale", "total rows", "mean ms"], rows))


@pytest.mark.parametrize("n_rows", [100, 1000, 10000])
def test_single_scheme_scaling(benchmark, n_rows):
    db = synthetic_classified_database(n_rows=n_rows, n_classes=10,
                                       seed=23)

    def induce():
        return induce_scheme(db.relation("ITEM"), "Value", "Label",
                             InductionConfig(n_c=3))

    rules = benchmark(induce)
    assert rules  # bands are recoverable at every size


def test_native_vs_quel_path(benchmark):
    """Head-to-head on one scheme at a fixed size (QUEL is the timed
    kernel; the native result is asserted equal)."""
    db = synthetic_classified_database(n_rows=300, n_classes=5, seed=29)
    native = induce_scheme(db.relation("ITEM"), "Value", "Label",
                           InductionConfig(n_c=3))

    def induce_quel():
        return induce_scheme(db.relation("ITEM"), "Value", "Label",
                             InductionConfig(n_c=3, use_quel=True),
                             database=db)

    quel = benchmark(induce_quel)
    assert [(r.lhs, r.rhs) for r in native] == [
        (r.lhs, r.rhs) for r in quel]
