"""E11 -- inference latency vs knowledge-base size.

The paper stores rules in relations partly because "storing more rules
... increases the overhead for storing and searching these rules".
This benchmark times forward+backward inference against rule bases from
18 (the ship knowledge) up to thousands of synthetic rules.  Expected
shape: linear in the rule count for the chaining loop.
"""

import pytest

from repro.inference import TypeInferenceEngine
from repro.reporting import render_table
from repro.rules import Clause, Rule, RuleSet

from conftest import record_report

_RESULTS: dict[int, float] = {}


def synthetic_rules(n_rules: int) -> RuleSet:
    """Chains of rules over disjoint attributes plus one live chain the
    query conditions actually fire."""
    rules = RuleSet()
    rules.add(Rule([Clause.between("Q.A", 0, 100)],
                   Clause.equals("Q.B", "hit"), support=5,
                   rhs_subtype="HIT"))
    rules.add(Rule([Clause.equals("Q.B", "hit")],
                   Clause.equals("Q.C", "chained"), support=5))
    for index in range(n_rules - 2):
        attribute = f"T{index}.X"
        rules.add(Rule(
            [Clause.between(attribute, index, index + 10)],
            Clause.equals(f"T{index}.Y", f"label{index}"),
            support=index % 7))
    return rules


@pytest.mark.parametrize("n_rules", [18, 180, 1800])
def test_inference_latency(benchmark, n_rules):
    rules = synthetic_rules(n_rules)
    engine = TypeInferenceEngine(rules)
    conditions = [Clause.between("Q.A", 10, 20)]

    result = benchmark(engine.infer, conditions)
    assert result.forward_subtypes() == ["HIT"]
    assert len(result.forward) == 2  # the chain fired

    if benchmark.stats is None:  # --benchmark-disable smoke run
        return
    _RESULTS[n_rules] = benchmark.stats["mean"]
    if n_rules == 1800:
        rows = [[count, f"{_RESULTS[count] * 1e6:.1f}"]
                for count in sorted(_RESULTS)]
        record_report(
            "E11", "Inference latency vs rule-base size",
            render_table(["rules", "mean microseconds"], rows))


def test_ship_inference_latency(benchmark, ship_system):
    """Inference over the real ship knowledge base (Example 3 facts)."""
    from repro.rules.clause import AttributeRef

    conditions = [Clause.equals("INSTALL.Sonar", "BQS-04")]
    equivalences = [
        (AttributeRef("SUBMARINE", "Class"),
         AttributeRef("CLASS", "Class")),
        (AttributeRef("SUBMARINE", "Id"), AttributeRef("INSTALL", "Ship")),
    ]

    result = benchmark(ship_system.engine.infer, conditions, equivalences)
    assert set(result.forward_subtypes()) == {"BQS", "SSN"}
