"""E8 -- the N_c tradeoff (Section 5.2.1, step 4).

"N_c provides a tradeoff between the applicability of the rules and the
overhead of storing and searching these rules."  Sweeps N_c over the
ship database and a larger synthetic database, reporting rule counts,
rule-relation storage rows, and how many of a fixed query workload stay
answerable.  Expected shape: rules and storage fall monotonically with
N_c; answerability falls in steps (the paper's R_new appears at N_c=1
and completes Example 2's answer).
"""

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.induction.pruning import nc_sweep
from repro.query import IntensionalQueryProcessor
from repro.reporting import render_table
from repro.rules import encode_rule_relations
from repro.testbed import synthetic_classified_database

from conftest import SHIP_ORDER, record_report
from test_bench_examples import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3

THRESHOLDS = [1, 2, 3, 4, 5, 7, 9]


def test_nc_sweep_ship_database(benchmark, ship_db, ship_binding):
    def induce_at(threshold):
        return InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=threshold),
            relation_order=SHIP_ORDER).induce()

    def sweep():
        return {threshold: induce_at(threshold)
                for threshold in THRESHOLDS}

    rule_sets = benchmark(sweep)

    rows = []
    for threshold in THRESHOLDS:
        rules = rule_sets[threshold]
        storage = encode_rule_relations(rules).total_rows()
        system = IntensionalQueryProcessor(ship_db, rules,
                                           binding=ship_binding)
        answered = sum(
            1 for sql in (EXAMPLE_1, EXAMPLE_2, EXAMPLE_3)
            if system.ask(sql).intensional)
        complete_example2 = any(
            "1301" in rule.render() for rule in rules)
        rows.append([threshold, len(rules), storage, answered,
                     "yes" if complete_example2 else "no"])

    counts = [row[1] for row in rows]
    assert counts == sorted(counts, reverse=True)
    assert rows[0][4] == "yes"   # R_new present at N_c=1
    assert rows[2][4] == "no"    # pruned at the default N_c=3

    record_report(
        "E8", "N_c sweep on the ship database "
              "(applicability vs storage tradeoff)",
        render_table(
            ["N_c", "rules kept", "rule-relation rows",
             "examples answerable", "R_new (completes Ex.2)"], rows))


def test_nc_sweep_synthetic(benchmark):
    db = synthetic_classified_database(n_rows=2000, n_classes=8, seed=17,
                                       noise=0.05)
    from repro.induction import induce_scheme

    def sweep():
        return nc_sweep(
            lambda threshold: _as_ruleset(induce_scheme(
                db.relation("ITEM"), "Value", "Label",
                InductionConfig(n_c=threshold))),
            [1, 2, 4, 8, 16, 32, 64])

    points = benchmark(sweep)
    counts = [point.rules_kept for point in points]
    assert counts == sorted(counts, reverse=True)
    record_report(
        "E8b", "N_c sweep on a noisy synthetic database (2000 rows)",
        render_table(
            ["N_c", "rules kept", "min support", "max support"],
            [[p.n_c, p.rules_kept, p.support_min, p.support_max]
             for p in points]))


def _as_ruleset(rules):
    from repro.rules import RuleSet
    return RuleSet(rules)
