"""E20 -- observability overhead guard.

The observability layer promises to be free when disabled: every
instrumented call site collapses to one flag check and the per-node
clocks are two ``perf_counter`` reads.  This benchmark holds the layer
to that promise by timing the same planned query three ways:

* **bare** -- plan-node execution with the instrumented ``execute``
  wrappers swapped for uninstrumented equivalents (the pre-obs code),
* **disabled** -- the shipped code with observability off (default),
* **enabled** -- tracing, metrics and the slow-query log all live.

The guard asserts the disabled path stays within 5% of bare (plus a
tiny absolute epsilon so sub-millisecond jitter cannot flake the
suite); the enabled ratio is reported for the record, not asserted.
"""

import time

import pytest

from repro import obs
from repro.plan.plans import Plan, ProjectPlan
from repro.plan.stats import statistics
from repro.reporting import render_table
from repro.sql.executor import execute_select, project_statement
from repro.sql.parser import parse_select
from repro.testbed.generators import synthetic_classified_database

from conftest import record_report

N_ROWS = 20_000

#: ~2.5% selective range: enough matched rows that per-node overhead
#: would show, few enough that one repeat is sub-10ms.
RANGE_SQL = ("SELECT Id, Label FROM ITEM "
             "WHERE Value >= 1000 AND Value < 1050")

REPEATS = 30


@pytest.fixture(scope="module")
def synth_db():
    database = synthetic_classified_database(
        n_rows=N_ROWS, n_classes=20, seed=7)
    statistics(database).table_stats("ITEM")
    execute_select(database, parse_select(RANGE_SQL), use_planner=True)
    return database


def _bare_batches(self, batch_size=None):
    from repro.plan.plans import default_batch_size
    size = default_batch_size() if batch_size is None else batch_size
    return self._batches(size)  # the raw generator, no instrumentation


def _bare_execute(self, batch_size=None):
    out = []
    for batch in self.batches(batch_size):
        out.extend(batch)
    self.actual_rows = len(out)
    return out


def _bare_execute_relation(self, batch_size=None):
    stream = (rows for batch in self.child.batches(batch_size)
              for rows in batch)
    result = project_statement(self.scope, self.statement,
                               self.child.bindings, stream,
                               self.result_name)
    self.actual_rows = len(result)
    return result


class _bare_plan_nodes:
    """Swap the instrumented node wrappers for pre-obs equivalents
    (same streaming protocol, no per-batch clocks/counters/spans)."""

    def __enter__(self):
        self._batches = Plan.batches
        self._execute = Plan.execute
        self._execute_relation = ProjectPlan.execute_relation
        Plan.batches = _bare_batches
        Plan.execute = _bare_execute
        ProjectPlan.execute_relation = _bare_execute_relation

    def __exit__(self, *exc_info):
        Plan.batches = self._batches
        Plan.execute = self._execute
        ProjectPlan.execute_relation = self._execute_relation


def _time_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_disabled_observability_is_free(benchmark, synth_db):
    from repro.cache import query_cache

    statement = parse_select(RANGE_SQL)
    # Keep the query cache out of the loop: this experiment times the
    # observability hooks on *live* plan execution, and a result-cache
    # hit would reduce all three modes to a dictionary lookup (E23
    # measures that path).
    query_cache(synth_db).enabled = False

    def run():
        return execute_select(synth_db, statement, use_planner=True)

    obs.disable()
    obs.reset()
    expected = len(run())
    assert expected > 0
    with _bare_plan_nodes():
        assert len(run()) == expected

    result = benchmark(run)
    assert len(result) == expected

    # Interleave the three modes round-robin so machine drift (thermal
    # state, cache pollution from earlier benchmarks) hits them all
    # equally instead of biasing whichever mode is measured last.
    bare_s = disabled_s = enabled_s = float("inf")
    try:
        for _ in range(REPEATS):
            with _bare_plan_nodes():
                bare_s = min(bare_s, _time_once(run))
            obs.disable()
            disabled_s = min(disabled_s, _time_once(run))
            obs.enable()
            enabled_s = min(enabled_s, _time_once(run))
    finally:
        obs.disable()
        obs.reset()
        query_cache(synth_db).enabled = True

    record_report(
        "E20", f"Observability overhead (range query, {N_ROWS} rows)",
        render_table(
            ["mode", "best ms", "vs bare"],
            [["bare (uninstrumented)", f"{bare_s * 1000:.3f}", "1.00x"],
             ["obs disabled", f"{disabled_s * 1000:.3f}",
              f"{disabled_s / bare_s:.2f}x"],
             ["obs enabled", f"{enabled_s * 1000:.3f}",
              f"{enabled_s / bare_s:.2f}x"]]),
        data={"bare_s": bare_s, "disabled_s": disabled_s,
              "enabled_s": enabled_s,
              "disabled_overhead": disabled_s / bare_s - 1.0,
              "guard": "disabled path within 5% of bare"})

    assert disabled_s <= bare_s * 1.05 + 5e-5, (
        f"disabled observability costs {disabled_s / bare_s:.2f}x "
        f"({disabled_s * 1000:.3f}ms vs {bare_s * 1000:.3f}ms bare); "
        f"the disabled path must stay within 5%")
    # Enabled tracing is allowed to cost, but not to distort: an order
    # of magnitude would mean a hot path records per row, not per node.
    assert enabled_s <= bare_s * 10


def test_enabled_observability_records_the_workload(synth_db):
    from repro.cache import query_cache

    statement = parse_select(RANGE_SQL)
    # The overhead runs above warmed the result cache for this very
    # statement; drop it so the traced run executes live plan nodes.
    query_cache(synth_db).clear()
    obs.enable()
    obs.reset()
    try:
        execute_select(synth_db, statement, use_planner=True)
        assert obs.metrics().value("select_path_total",
                                   path="planner") == 1
        assert obs.tracer().named("plan.node.")
    finally:
        obs.disable()
        obs.reset()
