"""E28 -- parallel morsel execution vs the serial pipeline.

Four claims, measured by the interleaved best-of-N discipline of
E22/E27, over a 98k-row table sized so the planner picks DOP=4 at four
workers:

* a selective scan (skewed values keep the range predicate past the
  index-fraction threshold, so it stays on the TableScan+Filter chain
  that :class:`MergeExchangePlan` parallelizes) gains at least
  :data:`SPEEDUP_TARGET` x over the DOP=1 pipeline;
* the selective scan+join -- partitioned parallel build plus fused
  per-partition probe -- gains at least :data:`SPEEDUP_TARGET` x;
* partial aggregation (COUNT GROUP BY over a dictionary column with a
  fused filter) gains at least :data:`SPEEDUP_TARGET` x;
* the machinery is free when it does not help: executing an
  exchange-bearing plan re-clamped to one worker costs at most 10%
  over the serial plan, and index point lookups (always planned
  serial) cost at most 10% with the knob on.

The speedup guards assume real parallel hardware and the numpy
kernels (morsel mask evaluation releases the GIL; the pure-Python
fallback is correct but GIL-bound), so they are enforced only on
4+-core runners with numpy -- elsewhere the measured ratios are
recorded informationally and the guard is reported as not applicable.
Result equivalence (tuple-for-tuple rows and row order) is asserted
before any timing is trusted.
"""

import os
import time

import pytest

from repro.plan import parallel
from repro.plan.planner import plan_select
from repro.plan.stats import statistics
from repro.relational import columnar
from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.reporting import render_table
from repro.sql.parser import parse_select
from repro.testbed.generators import synthetic_star_database

from conftest import record_report

N_ROWS = 98_304  # 12 * ROWS_PER_WORKER: choose_dop picks 4 at 4 workers
WORKERS = 4

#: The E22/E27 workload shapes at 5x their scale: a range predicate
#: past the index-fraction threshold keeps the scan on the
#: TableScan+Filter chain that the exchange operators parallelize.
SCAN_SQL = ("SELECT ENTITY.Id, ENTITY.Size FROM ENTITY "
            "WHERE ENTITY.Size > 150")
JOIN_SQL = ("SELECT ENTITY.Id, GROUPS.Weight FROM ENTITY, GROUPS "
            "WHERE ENTITY.GroupId = GROUPS.GroupId "
            "AND ENTITY.Size > 150 AND GROUPS.Label = 'G01'")
AGG_SQL = ("SELECT BIG.Cat, COUNT(*) FROM BIG "
           "WHERE BIG.V != 500 GROUP BY BIG.Cat")
POINT_SQL = "SELECT BIG.V FROM BIG WHERE BIG.Id = 1234"

SPEEDUP_TARGET = 2.5
OVERHEAD_LIMIT = 0.10

#: The speedup guards need hardware parallelism and kernels that
#: release the GIL; elsewhere the ratios are informational.
CORES = os.cpu_count() or 1
GUARDS_ENFORCED = CORES >= WORKERS and columnar.HAS_NUMPY

_RESULTS: dict[str, dict] = {}


def build_database() -> Database:
    """The aggregation/point-lookup bed: a keyed table with a
    dictionary-encoded ``Cat`` column for the grouped COUNT fast path
    and a never-indexable ``!=`` filter."""
    db = Database("parallel-bench")
    rows = [(i, (i * 7919) % 1000, f"cat{i % 7}", i % 20)
            for i in range(N_ROWS)]
    db.create("BIG", [("Id", INTEGER), ("V", INTEGER),
                      ("Cat", char(8)), ("K", INTEGER)],
              rows, key=["Id"])
    return db


def _with_workers(count, fn):
    before = parallel.FORCED
    parallel.set_workers(count)
    try:
        return fn()
    finally:
        parallel.set_workers(before)


def _run(database, statement, count):
    return _with_workers(
        count, lambda: plan_select(database, statement).execute())


def _interleaved(fn_pre, fn_post, repeats=7):
    """Best-of-N with alternating runs, so noise hits both pipelines."""
    best_pre = best_post = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_pre()
        best_pre = min(best_pre, time.perf_counter() - start)
        start = time.perf_counter()
        fn_post()
        best_post = min(best_post, time.perf_counter() - start)
    return best_pre, best_post


def _speedup_entry(serial_s, parallel_s):
    speedup = serial_s / parallel_s
    return {
        "serial_s": serial_s, "parallel_s": parallel_s,
        "speedup": speedup,
        "guard": (f">= {SPEEDUP_TARGET}x at {WORKERS} workers"
                  if GUARDS_ENFORCED else
                  f">= {SPEEDUP_TARGET}x (n/a: {CORES} cores, "
                  f"numpy={columnar.HAS_NUMPY})"),
        "guard_passed": (speedup >= SPEEDUP_TARGET
                         if GUARDS_ENFORCED else True),
    }


def _guard_speedup(label, serial_s, parallel_s):
    _RESULTS[label] = _speedup_entry(serial_s, parallel_s)
    if GUARDS_ENFORCED:
        assert serial_s / parallel_s >= SPEEDUP_TARGET, (
            f"{label}: expected >={SPEEDUP_TARGET}x at {WORKERS} "
            f"workers, got {serial_s / parallel_s:.2f}x "
            f"({serial_s * 1000:.2f}ms serial vs "
            f"{parallel_s * 1000:.2f}ms parallel)")


@pytest.fixture(scope="module")
def star_db():
    database = synthetic_star_database(
        n_entities=N_ROWS, n_groups=20, seed=11)
    statistics(database).table_stats("ENTITY")
    statistics(database).table_stats("GROUPS")
    # Warm the plan cache, indexes, and the column store on both
    # configurations, and pin down result equivalence first.
    for sql in (SCAN_SQL, JOIN_SQL):
        statement = parse_select(sql)
        serial = _run(database, statement, 1)
        fanned = _run(database, statement, WORKERS)
        assert list(serial.rows) == list(fanned.rows), sql
    return database


@pytest.fixture(scope="module")
def bench_db():
    database = build_database()
    for sql in (AGG_SQL, POINT_SQL):
        statement = parse_select(sql)
        serial = _run(database, statement, 1)
        fanned = _run(database, statement, WORKERS)
        assert list(serial.rows) == list(fanned.rows), sql
    return database


def test_parallel_scan_speedup(benchmark, star_db):
    statement = parse_select(SCAN_SQL)
    rendered = _with_workers(
        WORKERS, lambda: plan_select(star_db, statement).render())
    assert f"MergeExchange [dop={WORKERS}]" in rendered, rendered

    result = benchmark(lambda: _run(star_db, statement, WORKERS))
    assert 0 < len(result) < N_ROWS

    serial_s, parallel_s = _interleaved(
        lambda: _run(star_db, statement, 1),
        lambda: _run(star_db, statement, WORKERS))
    _guard_speedup("scan", serial_s, parallel_s)


def test_parallel_scan_join_speedup(benchmark, star_db):
    statement = parse_select(JOIN_SQL)
    rendered = _with_workers(
        WORKERS, lambda: plan_select(star_db, statement).render())
    assert f"parallel dop={WORKERS}" in rendered, rendered

    result = benchmark(lambda: _run(star_db, statement, WORKERS))
    assert 0 < len(result) < N_ROWS // 2

    serial_s, parallel_s = _interleaved(
        lambda: _run(star_db, statement, 1),
        lambda: _run(star_db, statement, WORKERS))
    _guard_speedup("scan+join", serial_s, parallel_s)


def test_partial_aggregation_speedup(benchmark, bench_db):
    statement = parse_select(AGG_SQL)
    rendered = _with_workers(
        WORKERS, lambda: plan_select(bench_db, statement).render())
    assert f"MergeExchange [dop={WORKERS}]" in rendered, rendered

    result = benchmark(lambda: _run(bench_db, statement, WORKERS))
    assert len(result) == 7  # one row per Cat value

    serial_s, parallel_s = _interleaved(
        lambda: _run(bench_db, statement, 1),
        lambda: _run(bench_db, statement, WORKERS))
    _guard_speedup("aggregation", serial_s, parallel_s)


def test_dop_one_overhead_bounded(benchmark, bench_db):
    """An exchange-bearing plan executed after the knob drops to one
    worker re-clamps to the serial inner pipeline; the leftover node
    may cost at most 10% over the plan that never had it."""
    statement = parse_select(AGG_SQL)
    clamped = _with_workers(
        WORKERS, lambda: plan_select(bench_db, statement))
    assert f"MergeExchange [dop={WORKERS}]" in clamped.render()

    def run_clamped():
        return _with_workers(1, lambda: clamped.execute())

    def run_serial():
        return _run(bench_db, statement, 1)

    assert list(run_clamped().rows) == list(run_serial().rows)
    benchmark(run_clamped)

    serial_s, clamped_s = _interleaved(run_serial, run_clamped,
                                       repeats=15)
    overhead = clamped_s / serial_s - 1.0
    _RESULTS["dop=1 re-clamp"] = {
        "serial_s": serial_s, "parallel_s": clamped_s,
        "speedup": serial_s / clamped_s,
        "guard": f"<= {OVERHEAD_LIMIT:.0%} overhead",
        "guard_passed": overhead <= OVERHEAD_LIMIT,
    }
    assert overhead <= OVERHEAD_LIMIT, (
        f"DOP=1 re-clamp overhead over {OVERHEAD_LIMIT:.0%}: "
        f"{clamped_s * 1000:.3f}ms vs {serial_s * 1000:.3f}ms serial")


def test_point_lookup_overhead_bounded(benchmark, bench_db):
    """Index point probes plan serial whatever the knob says; turning
    the knob on may add at most 10% to the plan+execute round trip."""
    statement = parse_select(POINT_SQL)
    rendered = _with_workers(
        WORKERS, lambda: plan_select(bench_db, statement).render())
    assert "IndexScan" in rendered and "Exchange" not in rendered

    result = benchmark(lambda: _run(bench_db, statement, WORKERS))
    assert len(result) == 1

    serial_s, parallel_s = _interleaved(
        lambda: _run(bench_db, statement, 1),
        lambda: _run(bench_db, statement, WORKERS), repeats=15)
    overhead = parallel_s / serial_s - 1.0
    _RESULTS["point"] = {
        "serial_s": serial_s, "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "guard": f"<= {OVERHEAD_LIMIT:.0%} overhead",
        "guard_passed": overhead <= OVERHEAD_LIMIT,
    }
    assert overhead <= OVERHEAD_LIMIT, (
        f"point-lookup overhead over {OVERHEAD_LIMIT:.0%}: "
        f"{parallel_s * 1000:.3f}ms at {WORKERS} workers vs "
        f"{serial_s * 1000:.3f}ms serial")


def test_record_report(bench_db):
    assert set(_RESULTS) == {"scan", "scan+join", "aggregation",
                             "dop=1 re-clamp", "point"}
    rows = [[label,
             f"{entry['serial_s'] * 1000:.3f}",
             f"{entry['parallel_s'] * 1000:.3f}",
             f"{entry['speedup']:.2f}x",
             entry["guard"]]
            for label, entry in sorted(_RESULTS.items())]
    backend = "numpy" if columnar.HAS_NUMPY else "pure-python"
    record_report(
        "E28",
        f"Parallel morsel execution vs serial pipeline "
        f"({backend}; {CORES} cores; ENTITY/BIG {N_ROWS} rows; "
        f"guards {'enforced' if GUARDS_ENFORCED else 'informational'})",
        render_table(
            ["workload", "serial ms", f"{WORKERS}-worker ms",
             "speedup", "guard"],
            rows),
        data={**_RESULTS, "backend": backend, "cores": CORES,
              "workers": WORKERS, "guards_enforced": GUARDS_ENFORCED})
