"""E19 (extension) -- cost-based planner vs naive executor.

Selective queries over a large synthetic relation are where the planner
earns its keep: a sorted-index range scan touches only the matching
band of rows, while the legacy executor scans and filters everything.
The speedup target is >= 2x on the selective range query (in practice
it is far higher once the index cache is warm); equivalence of the two
answers is asserted on every measured query.

Also covers planner overhead on the tiny ship database (planning cost
must not swamp sub-millisecond queries) and the semantic short-circuit,
which answers a contradictory query without touching any row.
"""

import time

import pytest

from repro.plan.stats import statistics
from repro.reporting import render_table
from repro.sql.executor import execute_select, execute_select_legacy
from repro.sql.parser import parse_select
from repro.testbed.generators import synthetic_classified_database

from conftest import record_report

#: ITEM(Id, Value, Label) with Value uniform in [0, 2000).
N_ROWS = 20_000
N_CLASSES = 20

#: Selective range: ~2.5% of the value domain.
RANGE_SQL = ("SELECT Id, Label FROM ITEM "
             "WHERE Value >= 1000 AND Value < 1050")
POINT_SQL = "SELECT Label FROM ITEM WHERE Value = 1024"

_RESULTS: dict[str, tuple[float, float]] = {}


@pytest.fixture(scope="module")
def synth_db():
    database = synthetic_classified_database(
        n_rows=N_ROWS, n_classes=N_CLASSES, seed=7)
    # Warm the caches the planner relies on, so the measurement compares
    # steady-state execution strategies rather than one-off builds.
    statistics(database).table_stats("ITEM")
    execute_select(database, parse_select(RANGE_SQL), use_planner=True)
    execute_select(database, parse_select(POINT_SQL), use_planner=True)
    return database


def _timed(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _compare(database, sql, label):
    statement = parse_select(sql)
    planned = execute_select(database, statement, use_planner=True)
    legacy = execute_select_legacy(database, statement)
    assert planned == legacy, f"{label}: planner result differs"
    planner_s = _timed(
        lambda: execute_select(database, statement, use_planner=True))
    legacy_s = _timed(
        lambda: execute_select_legacy(database, statement))
    _RESULTS[label] = (planner_s, legacy_s)
    return planner_s, legacy_s, len(planned)


def test_selective_range_speedup(benchmark, synth_db):
    statement = parse_select(RANGE_SQL)
    result = benchmark(
        lambda: execute_select(synth_db, statement, use_planner=True))
    assert len(result) > 0

    planner_s, legacy_s, n_rows = _compare(synth_db, RANGE_SQL, "range")
    assert 0 < n_rows < N_ROWS / 10, "query is meant to be selective"
    assert legacy_s / planner_s >= 2.0, (
        f"expected >=2x speedup, got {legacy_s / planner_s:.1f}x "
        f"({legacy_s * 1000:.2f}ms naive vs {planner_s * 1000:.2f}ms)")


def test_point_lookup_overhead_is_bounded(benchmark, synth_db):
    """Equality probes hit the hash index on BOTH paths (the legacy
    executor gained the same fast path), so the planner can't win big
    here -- instead, assert its planning overhead stays within 5x of
    the already-fast indexed lookup."""
    statement = parse_select(POINT_SQL)
    result = benchmark(
        lambda: execute_select(synth_db, statement, use_planner=True))
    assert len(result) >= 0

    planner_s, legacy_s, _n = _compare(synth_db, POINT_SQL, "point")
    assert planner_s <= legacy_s * 5, (
        f"planning overhead too high: {planner_s * 1000:.2f}ms planned "
        f"vs {legacy_s * 1000:.2f}ms legacy indexed lookup")


def test_contradiction_short_circuit(benchmark, synth_db):
    """With the induced Value->Label rules, a query asking for a label
    outside its band is answered empty without scanning: faster than
    the legacy full scan by construction."""
    from repro.induction.pairwise import induce_scheme
    from repro.rules.ruleset import RuleSet
    rules = RuleSet(induce_scheme(synth_db.relation("ITEM"),
                                  "Value", "Label"))
    sql = ("SELECT Id FROM ITEM "
           "WHERE Value >= 110 AND Value <= 190 AND Label = 'L000'")
    statement = parse_select(sql)

    planned = execute_select(synth_db, statement, use_planner=True,
                             rules=rules)
    legacy = execute_select_legacy(synth_db, statement)
    assert planned == legacy and len(planned) == 0

    result = benchmark(
        lambda: execute_select(synth_db, statement, use_planner=True,
                               rules=rules))
    assert len(result) == 0

    planner_s = _timed(lambda: execute_select(
        synth_db, statement, use_planner=True, rules=rules))
    legacy_s = _timed(
        lambda: execute_select_legacy(synth_db, statement))
    _RESULTS["contradiction"] = (planner_s, legacy_s)

    rows = [[label, f"{p * 1000:.3f}", f"{l * 1000:.3f}",
             f"{l / p:.1f}x"]
            for label, (p, l) in sorted(_RESULTS.items())]
    record_report(
        "E19", f"Planner vs naive executor (ITEM, {N_ROWS} rows)",
        render_table(["query", "planner ms", "naive ms", "speedup"],
                     rows),
        data={label: {"planner_s": p, "naive_s": l, "speedup": l / p}
              for label, (p, l) in sorted(_RESULTS.items())})
