"""E14 (extension) -- end-to-end query latency vs database size.

Times the full ask() pipeline (parse + 3-way hash join + inference) for
Example 3 on scaled ship databases.  Expected shape: near-linear in the
joined row count (hash joins), with inference cost constant (the rule
base does not grow with the data).
"""

import pytest

from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.reporting import render_table
from repro.testbed import ship_ker_schema
from repro.testbed.generators import scaled_ship_database

from conftest import SHIP_ORDER, record_report
from test_bench_examples import EXAMPLE_3

_RESULTS: dict[int, float] = {}


@pytest.mark.parametrize("scale", [1, 8, 32])
def test_example3_latency_vs_scale(benchmark, scale):
    db = scaled_ship_database(scale=scale)
    system = IntensionalQueryProcessor.from_database(
        db, ker_schema=ship_ker_schema(), relation_order=SHIP_ORDER)

    result = benchmark(system.ask, EXAMPLE_3)
    assert len(result.extensional) == 4 * scale
    assert "SSN" in result.inference.forward_subtypes()

    if benchmark.stats is None:  # --benchmark-disable smoke run
        return
    _RESULTS[scale] = benchmark.stats["mean"]
    if scale == 32:
        rows = [[s, 24 * s, f"{_RESULTS[s] * 1000:.2f}"]
                for s in sorted(_RESULTS)]
        record_report(
            "E14", "Example 3 ask() latency vs database scale",
            render_table(["scale", "submarines", "mean ms"], rows))


def test_inference_cost_is_scale_invariant(benchmark):
    """Same knowledge base regardless of data volume: rule count at
    scale 32 equals scale 1 (class-level knowledge), so inference cost
    does not grow with the data -- only the extensional join does."""
    small = IntensionalQueryProcessor.from_database(
        scaled_ship_database(scale=1), ker_schema=ship_ker_schema(),
        relation_order=SHIP_ORDER)
    big_db = scaled_ship_database(scale=32)
    big = IntensionalQueryProcessor.from_database(
        big_db, ker_schema=ship_ker_schema(), relation_order=SHIP_ORDER)

    # Intra-CLASS/SONAR rules are identical; SUBMARINE hull-range rules
    # may differ (clone ids form new runs), but the count stays modest.
    small_class_rules = [r for r in small.rules
                         if r.lhs[0].attribute.relation == "CLASS"]
    big_class_rules = [r for r in big.rules
                       if r.lhs[0].attribute.relation == "CLASS"]
    assert [(r.lhs, r.rhs) for r in small_class_rules] == [
        (r.lhs, r.rhs) for r in big_class_rules]

    from repro.query.conditions import extract_conditions
    from repro.sql.parser import parse_select
    statement = parse_select(EXAMPLE_3)
    conditions = extract_conditions(big_db, statement)

    result = benchmark(big.engine.infer, conditions.clauses,
                       conditions.equivalences)
    assert "SSN" in result.forward_subtypes()
