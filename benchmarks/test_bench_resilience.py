"""E26 -- the price of resilience: the retrying, deadline-stamping
client on a clean wire, and its behaviour on a lossy one.

Two claims:

* **Resilience is ~free when nothing fails.**  A client with the
  shipped resilient configuration armed (retry policy, circuit
  breaker, automatic idempotency tokens -- exactly what the CLI's
  ``\\connect`` installs) may pay at most 5% over the plain client on
  the E24 hot-read workload -- the fault machinery must cost nothing
  on the fault-free path.  The opt-in ``deadline_ms`` header is a
  per-request feature with a real (few-microsecond) stamping cost;
  its delta is measured and reported, not guarded.
* **A lossy wire costs retries, not errors.**  With a seeded schedule
  dropping 10% of replies *after full server-side processing* (the
  ambiguous-ack worst case), the same read workload completes with
  zero application-level errors -- every loss is absorbed by
  reconnect-and-retry, and the row counts match the clean run.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.query import IntensionalQueryProcessor
from repro.reporting import render_table
from repro.rules.ruleset import RuleSet
from repro.server import IntensionalQueryServer
from repro.server.chaosproxy import ChaosSchedule, ChaosSocket
from repro.server.client import Client
from repro.server.resilience import CircuitBreaker, RetryPolicy
from repro.testbed.generators import synthetic_star_database

from conftest import record_report

N_ENTITIES = 5_000
N_GROUPS = 20
OVERHEAD_BUDGET = 0.05
DROP_RATE = 0.10
FAULT_SEED = 11
REQUESTS_PER_ROUND = 250
ROUNDS = 7

#: E24's hot read mix: small results, all wire-memo-servable.
HOT_QUERIES = [
    "SELECT Label, Weight FROM GROUPS WHERE Weight > 150",
    "SELECT GroupId, Label FROM GROUPS WHERE Label = 'G01'",
    "SELECT Id, Size FROM ENTITY WHERE Size > 1990",
    "SELECT ENTITY.Id, GROUPS.Weight FROM ENTITY, GROUPS "
    "WHERE ENTITY.GroupId = GROUPS.GroupId AND ENTITY.Size > 1990 "
    "AND GROUPS.Label = 'G03'",
]

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def server():
    database = synthetic_star_database(
        n_entities=N_ENTITIES, n_groups=N_GROUPS, seed=11)
    system = IntensionalQueryProcessor(database, RuleSet())
    with IntensionalQueryServer(system) as live:
        with Client("127.0.0.1", live.port) as warm:
            for sql in HOT_QUERIES:
                warm.sql(sql)
        yield live


def _read_round(client: Client, requests: int) -> float:
    start = time.perf_counter()
    for index in range(requests):
        client.sql(HOT_QUERIES[index % len(HOT_QUERIES)])
    return time.perf_counter() - start


def test_zero_fault_overhead(server):
    """The shipped resilient configuration (retry + breaker + tokens,
    what ``\\connect`` arms) vs the plain client, interleaved
    best-of-N on the identical hot-read loop: <= 5% overhead.

    A third, unguarded leg stamps every request with the opt-in
    ``deadline_ms`` header so its per-request cost lands in the E26
    report -- it is a real feature with a real price (one extra clock
    read, a dict copy, and a header the server validates), and it is
    off by default, so it is measured rather than budgeted.
    """
    plain = Client("127.0.0.1", server.port).connect()
    armed = Client("127.0.0.1", server.port,
                   retry=RetryPolicy(seed=3),
                   breaker=CircuitBreaker()).connect()
    stamped = Client("127.0.0.1", server.port,
                     retry=RetryPolicy(seed=3),
                     breaker=CircuitBreaker(),
                     default_deadline_s=30.0).connect()
    try:
        # A warm lap per client, then GC held off for the measured
        # rounds: this module runs after other benchmarks have heated
        # the process, and a collection landing inside one leg of an
        # 18ms round swamps the few-percent signal under guard.
        for client in (plain, armed, stamped):
            _read_round(client, REQUESTS_PER_ROUND)
        gc.collect()
        gc.disable()
        try:
            best_plain = best_armed = best_stamped = float("inf")
            for _round in range(ROUNDS):
                best_plain = min(best_plain,
                                 _read_round(plain, REQUESTS_PER_ROUND))
                best_armed = min(best_armed,
                                 _read_round(armed, REQUESTS_PER_ROUND))
                best_stamped = min(
                    best_stamped,
                    _read_round(stamped, REQUESTS_PER_ROUND))
        finally:
            gc.enable()
        assert armed.stats["retries"] == 0, \
            "the clean wire must trigger no retries"
        assert stamped.stats["retries"] == 0
    finally:
        plain.close()
        armed.close()
        stamped.close()
    overhead = best_armed / best_plain - 1.0
    deadline_overhead = best_stamped / best_plain - 1.0
    _RESULTS["zero-fault overhead"] = {
        "plain_s": best_plain, "resilient_s": best_armed,
        "overhead": overhead,
        "guard": f"<= {OVERHEAD_BUDGET:.0%}",
        "guard_passed": overhead <= OVERHEAD_BUDGET}
    _RESULTS["deadline header cost"] = {
        "stamped_s": best_stamped, "overhead": deadline_overhead,
        "guard": "reported only (opt-in feature)",
        "guard_passed": True}
    assert overhead <= OVERHEAD_BUDGET, (
        f"resilient client costs {overhead * 100:+.1f}% over plain "
        f"({best_armed * 1000:.1f}ms vs {best_plain * 1000:.1f}ms "
        f"for {REQUESTS_PER_ROUND} hot reads)")


def test_lossy_wire_completes_with_zero_errors(server):
    """10% of replies vanish after full processing; the client must
    absorb every loss and return correct rows for all requests."""
    requests = 400
    schedule = ChaosSchedule.dropping(FAULT_SEED, DROP_RATE)
    client = Client(
        "127.0.0.1", server.port, timeout_s=30.0,
        retry=RetryPolicy(seed=FAULT_SEED, max_attempts=10,
                          base_delay_s=0.001, max_delay_s=0.02),
        client_id="e26-lossy",
        wrap_socket=lambda sock: ChaosSocket(sock, schedule),
    ).connect()
    expected = {}
    with Client("127.0.0.1", server.port) as oracle:
        for sql in HOT_QUERIES:
            expected[sql] = sorted(oracle.sql(sql))
    errors = 0
    start = time.perf_counter()
    try:
        for index in range(requests):
            sql = HOT_QUERIES[index % len(HOT_QUERIES)]
            try:
                rows = client.sql(sql)
            except Exception:
                errors += 1
                continue
            assert sorted(rows) == expected[sql]
        elapsed = time.perf_counter() - start
        stats = dict(client.stats)
    finally:
        client.close()
    faults = len(schedule.injected)
    assert faults >= requests * DROP_RATE * 0.5, (
        f"only {faults} faults injected over {requests} requests -- "
        f"the schedule is not exercising the wire")
    _RESULTS["lossy wire"] = {
        "requests": requests, "drop_rate": DROP_RATE,
        "faults_injected": faults, "retries": stats["retries"],
        "reconnects": stats["reconnects"], "errors": errors,
        "elapsed_s": elapsed,
        "guard": "0 application-level errors",
        "guard_passed": errors == 0}
    assert errors == 0, (
        f"{errors} of {requests} requests surfaced errors despite the "
        f"retry stack (drop rate {DROP_RATE:.0%})")
    assert stats["retries"] >= faults, \
        "every dropped reply must have been retried"


def test_report(server):
    clean = _RESULTS.get("zero-fault overhead", {})
    lossy = _RESULTS.get("lossy wire", {})
    rows = []
    deadline = _RESULTS.get("deadline header cost", {})
    if clean:
        rows.append(["zero-fault overhead",
                     f"{clean['overhead'] * 100:+.2f}%",
                     clean["guard"],
                     "pass" if clean["guard_passed"] else "FAIL"])
    if deadline:
        rows.append(["deadline_ms header cost",
                     f"{deadline['overhead'] * 100:+.2f}%",
                     deadline["guard"], "-"])
    if lossy:
        rows.append(["lossy wire errors",
                     f"{lossy['errors']} / {lossy['requests']}",
                     lossy["guard"],
                     "pass" if lossy["guard_passed"] else "FAIL"])
        rows.append(["lossy wire retries",
                     f"{lossy['retries']} "
                     f"({lossy['faults_injected']} faults)",
                     "-", "-"])
    record_report(
        "E26",
        f"Client resilience: zero-fault wire overhead and a "
        f"{DROP_RATE:.0%} reply-drop schedule over the "
        f"{N_ENTITIES}-row star testbed",
        render_table(["metric", "value", "guard", "verdict"], rows),
        data=_RESULTS)
