"""E9 -- rule-relation storage and relocation (Section 5.2.2).

Measures the encode -> relocate -> decode round trip for knowledge bases
of growing size and reports the storage blow-up (clause rows + mapping
rows per rule).  Expected shape: storage grows linearly in the rule
count; decode reproduces the rule set exactly at every size.
"""

from repro.reporting import render_table
from repro.rules import (
    Clause, Rule, RuleSet, decode_rule_relations, encode_rule_relations,
)

from conftest import record_report


def synthetic_ruleset(n_rules: int) -> RuleSet:
    rules = RuleSet()
    for index in range(n_rules):
        attribute = f"T{index % 7}.X{index % 5}"
        target = f"T{index % 7}.Y"
        rules.add(Rule(
            [Clause.between(attribute, index * 10, index * 10 + 9)],
            Clause.equals(target, f"label{index % 13}"),
            support=index % 11))
    return rules


def test_roundtrip_scaling(benchmark):
    sizes = [10, 100, 1000]
    rule_sets = {size: synthetic_ruleset(size) for size in sizes}

    def roundtrip_largest():
        bundle = encode_rule_relations(rule_sets[sizes[-1]])
        return decode_rule_relations(bundle)

    decoded = benchmark(roundtrip_largest)
    assert len(decoded) == sizes[-1]

    rows = []
    for size in sizes:
        ruleset = rule_sets[size]
        bundle = encode_rule_relations(ruleset)
        recovered = decode_rule_relations(bundle)
        identical = all(
            before.lhs == after.lhs and before.rhs == after.rhs
            and before.support == after.support
            for before, after in zip(ruleset, recovered))
        rows.append([size, len(bundle.clauses), len(bundle.values),
                     bundle.total_rows(),
                     round(bundle.total_rows() / size, 1),
                     "yes" if identical else "NO"])
        assert identical

    record_report(
        "E9", "Rule-relation storage and relocation round trip",
        render_table(
            ["rules", "clause rows", "value-map rows", "total rows",
             "rows/rule", "decode identical"], rows))


def test_ship_knowledge_roundtrip(benchmark, ship_rules):
    def roundtrip():
        return decode_rule_relations(encode_rule_relations(ship_rules))

    decoded = benchmark(roundtrip)
    assert decoded.render() == ship_rules.render()
