"""E2/E6 -- the Section 6 rule set (R1..R17) and the Figure 5 listing.

Times the full ILS pass over the ship database (all thirteen candidate
schemes, N_c = 3) and reports the rule-by-rule comparison against the
paper's printed list, plus the Figure 5 rendering.
"""

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker.diagram import render_with_rules
from repro.testbed import ship_ker_schema
from repro.testbed.paper_rules import compare_with_paper

from conftest import SHIP_ORDER, record_report


def test_seventeen_rules(benchmark, ship_binding):
    def induce():
        return InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=3),
            relation_order=SHIP_ORDER).induce()

    rules = benchmark(induce)
    report = compare_with_paper(rules)

    # Reproduction headline: 15 exact, 1 implied (R17 widened), 1
    # missing (R14, support 1 -- the paper's own pruning rule excludes
    # it), 2 sound extras.
    assert report.exact == 15
    assert report.implied == 1
    assert report.missing == 1
    assert len(report.extras) == 2

    record_report(
        "E2", "Section 6 induced rules vs the printed R1..R17",
        report.render())


def test_quel_execution_path(benchmark, ship_binding):
    """Same induction through the paper's QUEL statements (the
    EQUEL-on-INGRES path); slower but identical output."""
    def induce():
        return InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=3, use_quel=True),
            relation_order=SHIP_ORDER).induce()

    rules = benchmark(induce)
    assert compare_with_paper(rules).exact == 15


def test_figure5_listing(benchmark, ship_rules):
    schema = ship_ker_schema()
    displacement_rules = [
        rule for rule in ship_rules
        if rule.lhs[0].attribute.attribute == "Displacement"]

    text = benchmark(render_with_rules, schema, "CLASS",
                     displacement_rules)
    assert "then x isa SSBN" in text
    assert "then x isa SSN" in text
    record_report("E6", "Figure 5 -- type hierarchy with induced rules",
                  text)
