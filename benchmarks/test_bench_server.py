"""E24 -- the multi-client query server: throughput scaling, tail
latency, wire overhead, and zero lost updates under contention.

Clients are separate *processes* (their socket/JSON work runs on their
own GILs), the server is one thread-per-connection process, exactly
the deployment shape.  Four claims:

* **Reads scale.**  Aggregate hot-read QPS with 4 clients must be
  >= 3x the single-client figure -- the wire memo makes the serve path
  cheap enough that the server thread is not the bottleneck.  The 3x
  guard presumes >= 4 cores; on smaller machines (CI containers are
  routinely 1-2 cores) aggregate QPS is capped by total CPU per
  request, so the guard degrades to "concurrency must not collapse
  throughput" (>= 0.75x at one core, pro-rated between).
* **The wire is thin.**  A single client running *uncached*
  theta-join queries (a fresh literal every request defeats every
  cache layer, and the joins do real per-pair predicate work) may pay
  at most 15% over executing the same statements in-process.
* **Tail latency is bounded.**  p50/p99 are recorded for N in
  {1, 4, 16} on the mixed workload (reported, not guarded -- CI
  machines vary too much for an absolute ms guard).
* **No lost updates.**  16 clients interleaving autocommit DML with
  reads: every inserted row must be present exactly once afterwards.
"""

from __future__ import annotations

import json
import os
import statistics as stats
import subprocess
import sys
import time

import pytest

from repro.query import IntensionalQueryProcessor
from repro.relational.relation import Relation
from repro.reporting import render_table
from repro.rules.ruleset import RuleSet
from repro.server import IntensionalQueryServer
from repro.server.client import Client
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select
from repro.testbed.generators import synthetic_star_database

from conftest import record_report

N_ENTITIES = 20_000
N_GROUPS = 20

CORES = os.cpu_count() or 1
#: Aggregate QPS at N=4 vs N=1: 3x with real parallelism, "no
#: collapse" (0.75x) when the machine has a single core to offer.
READ_SCALING_TARGET = 3.0 if CORES >= 4 else (
    0.75 if CORES == 1 else 1.5)
WIRE_OVERHEAD_BUDGET = 0.15
CLIENT_COUNTS = (1, 4, 16)

#: Hot read mix: small results, all wire-memo-servable.
HOT_QUERIES = [
    "SELECT Label, Weight FROM GROUPS WHERE Weight > 150",
    "SELECT GroupId, Label FROM GROUPS WHERE Label = 'G01'",
    "SELECT Id, Size FROM ENTITY WHERE Size > 1990",
    "SELECT ENTITY.Id, GROUPS.Weight FROM ENTITY, GROUPS "
    "WHERE ENTITY.GroupId = GROUPS.GroupId AND ENTITY.Size > 1990 "
    "AND GROUPS.Label = 'G03'",
]

#: The wire-overhead probe, parameterized so every request is a cache
#: miss end-to-end (plan, result, ask, and wire-memo layers).  A
#: theta-join (``Weight > Size`` has no equi-key, so no hash join and
#: no index shortcut) over a ~300-row Size window forces a few
#: thousand genuine predicate evaluations per query, while DISTINCT
#: caps the *result* at a handful of rows -- so the guard measures
#: wire overhead against real execution, not payload bulk.
UNCACHED_TEMPLATE = (
    "SELECT DISTINCT GROUPS.Label, GROUPS.Weight FROM ENTITY, GROUPS "
    "WHERE ENTITY.Size > {threshold} AND ENTITY.Size < {upper} "
    "AND GROUPS.Weight > ENTITY.Size")

_RESULTS: dict[str, dict] = {}

WORKER_SOURCE = '''
"""E24 load worker: one connection, fixed request count, JSON stats."""
import json, sys, time

from repro.server.client import Client

HOT_QUERIES = {hot_queries!r}

def main():
    host, port = sys.argv[1], int(sys.argv[2])
    requests, mode, worker = int(sys.argv[3]), sys.argv[4], int(sys.argv[5])
    client = Client(host, port).connect()
    print("READY", flush=True)
    sys.stdin.readline()  # barrier: parent releases every worker at once
    latencies = []
    inserted = []
    start = time.perf_counter()
    for index in range(requests):
        began = time.perf_counter()
        if mode == "mixed" and index % 10 == 9:
            row_id = 1_000_000 + worker * 10_000 + index
            client.sql("INSERT INTO ENTITY VALUES "
                       "({{0}}, 3, 314)".format(row_id))
            inserted.append(row_id)
        else:
            client.sql(HOT_QUERIES[index % len(HOT_QUERIES)])
        latencies.append(time.perf_counter() - began)
    elapsed = time.perf_counter() - start
    client.close()
    print(json.dumps({{"elapsed": elapsed, "count": requests,
                       "latencies": latencies, "inserted": inserted}}),
          flush=True)

main()
'''.format(hot_queries=HOT_QUERIES)


@pytest.fixture(scope="module")
def server():
    database = synthetic_star_database(
        n_entities=N_ENTITIES, n_groups=N_GROUPS, seed=11)
    system = IntensionalQueryProcessor(database, RuleSet())
    with IntensionalQueryServer(system) as live:
        # Prime statistics and the wire memo off the clock.
        with Client("127.0.0.1", live.port) as warm:
            for sql in HOT_QUERIES:
                warm.sql(sql)
        yield live


@pytest.fixture(scope="module")
def worker_script(tmp_path_factory):
    path = tmp_path_factory.mktemp("e24") / "worker.py"
    path.write_text(WORKER_SOURCE)
    return str(path)


def _run_fleet(server, worker_script, n_clients: int, requests: int,
               mode: str = "read") -> dict:
    """Launch *n_clients* worker processes, release them simultaneously,
    and aggregate their stats."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ,
               PYTHONPATH=os.path.join(root, "src"))
    workers = [
        subprocess.Popen(
            [sys.executable, worker_script, "127.0.0.1",
             str(server.port), str(requests), mode, str(index)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env)
        for index in range(n_clients)]
    try:
        for worker in workers:
            assert worker.stdout.readline().strip() == "READY", \
                worker.stderr.read()
        for worker in workers:
            worker.stdin.write("GO\n")
            worker.stdin.flush()
        reports = []
        for worker in workers:
            line = worker.stdout.readline()
            assert line, worker.stderr.read()
            reports.append(json.loads(line))
            assert worker.wait(timeout=60) == 0
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
    latencies = sorted(latency for report in reports
                       for latency in report["latencies"])
    wall = max(report["elapsed"] for report in reports)
    total = sum(report["count"] for report in reports)
    return {
        "clients": n_clients,
        "requests": total,
        "qps": total / wall,
        "p50_ms": 1000 * stats.quantiles(latencies, n=100)[49],
        "p99_ms": 1000 * stats.quantiles(latencies, n=100)[98],
        "inserted": [row_id for report in reports
                     for row_id in report["inserted"]],
    }


def test_read_qps_scales_with_clients(server, worker_script):
    """Aggregate hot-read QPS at N=4 must be >= 3x N=1 (best of two
    rounds each, interleaved so machine noise hits both sides)."""
    best: dict[int, dict] = {}
    for _round in range(2):
        for n_clients in (1, 4):
            run = _run_fleet(server, worker_script, n_clients,
                             requests=300)
            if (n_clients not in best
                    or run["qps"] > best[n_clients]["qps"]):
                best[n_clients] = run
    scaling = best[4]["qps"] / best[1]["qps"]
    for n_clients, run in best.items():
        _RESULTS[f"read N={n_clients}"] = run
    _RESULTS["read scaling"] = {
        "scaling": scaling, "cores": CORES,
        "guard": f">= {READ_SCALING_TARGET:.2g}x ({CORES} cores)",
        "guard_passed": scaling >= READ_SCALING_TARGET}
    assert scaling >= READ_SCALING_TARGET, (
        f"4-client aggregate read QPS only {scaling:.2f}x the "
        f"single client ({best[4]['qps']:.0f} vs "
        f"{best[1]['qps']:.0f} QPS)")


def test_single_client_wire_overhead(server, worker_script):
    """One client running never-cached scan+joins pays <= 15% over
    executing the identical statements in-process.

    Every literal stays *inside* the data range (the statistics-based
    planner prunes an out-of-range predicate to a near-free empty
    plan, which would compare the wire against no work at all) and is
    unique per round and per side, so no cache layer -- plan, result,
    or wire memo -- ever hits."""
    database = server.system.database

    def thresholds(round_index: int, parity: int) -> list[float]:
        # Tenth-precision literals in [100, 190): distinct across all
        # (index, round, side) triples, and low enough that the
        # theta-join (Weight tops out at 200) still produces rows.
        return [(1000 + ((index * 37 + round_index * 13) % 450) * 2
                 + parity) / 10 for index in range(24)]

    def in_process(round_index: int):
        for threshold in thresholds(round_index, 0):
            statement = parse_select(UNCACHED_TEMPLATE.format(
                threshold=threshold, upper=threshold + 30))
            execute_select(database, statement)

    client = Client("127.0.0.1", server.port).connect()

    def over_wire(round_index: int):
        for threshold in thresholds(round_index, 1):
            client.sql(UNCACHED_TEMPLATE.format(
                threshold=threshold, upper=threshold + 30))

    try:
        best_local = best_wire = float("inf")
        for round_index in range(5):
            start = time.perf_counter()
            in_process(round_index)
            best_local = min(best_local, time.perf_counter() - start)
            start = time.perf_counter()
            over_wire(round_index)
            best_wire = min(best_wire, time.perf_counter() - start)
    finally:
        client.close()
    overhead = best_wire / best_local - 1.0
    _RESULTS["wire overhead"] = {
        "local_s": best_local, "wire_s": best_wire,
        "overhead": overhead,
        "guard": f"<= {WIRE_OVERHEAD_BUDGET:.0%}",
        "guard_passed": overhead <= WIRE_OVERHEAD_BUDGET}
    assert overhead <= WIRE_OVERHEAD_BUDGET, (
        f"wire path costs {overhead * 100:+.1f}% over in-process "
        f"({best_wire * 1000:.1f}ms vs {best_local * 1000:.1f}ms for "
        f"24 uncached theta-joins)")


def test_sixteen_clients_mixed_workload_no_lost_updates(
        server, worker_script):
    """16 clients, 10% autocommit DML: every insert lands exactly
    once, and the run's tail latency is recorded for the report."""
    database = server.system.database
    before = len(database.relation("ENTITY"))
    run = _run_fleet(server, worker_script, 16, requests=100,
                     mode="mixed")
    _RESULTS["mixed N=16"] = {key: run[key] for key in
                              ("clients", "requests", "qps",
                               "p50_ms", "p99_ms")}
    inserted = run["inserted"]
    assert len(inserted) == len(set(inserted)) == 16 * 10
    entity = database.relation("ENTITY")
    assert len(entity) == before + len(inserted)
    landed = {row[0] for row in entity if row[0] >= 1_000_000}
    assert landed == set(inserted), "lost or duplicated updates"
    # And the server state stayed queryable and consistent.
    with Client("127.0.0.1", server.port) as probe:
        relation = probe.sql(
            "SELECT Id FROM ENTITY WHERE Size = 314")
        assert isinstance(relation, Relation)
        assert {row[0] for row in relation} >= set(inserted)


def test_report(server):
    rows = []
    for n_clients in CLIENT_COUNTS:
        key = f"read N={n_clients}" if n_clients != 16 else "mixed N=16"
        run = _RESULTS.get(key)
        if run is None:
            continue
        rows.append([key, f"{run['qps']:.0f}",
                     f"{run['p50_ms']:.2f}", f"{run['p99_ms']:.2f}"])
    scaling = _RESULTS.get("read scaling", {})
    overhead = _RESULTS.get("wire overhead", {})
    guard_lines = []
    if scaling:
        guard_lines.append(
            f"read scaling N=4/N=1: {scaling['scaling']:.2f}x "
            f"(guard {scaling['guard']})")
    if overhead:
        guard_lines.append(
            f"single-client wire overhead: "
            f"{overhead['overhead'] * 100:+.1f}% "
            f"(guard {overhead['guard']})")
    record_report(
        "E24",
        f"Multi-client server: QPS and tail latency over the "
        f"{N_ENTITIES}-row star testbed (subprocess clients)",
        render_table(["workload", "QPS", "p50 ms", "p99 ms"], rows)
        + "\n" + "\n".join(guard_lines),
        data=_RESULTS)
