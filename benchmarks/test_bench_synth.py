"""E25 (extension) -- do the engine's headline speedups transfer off
the ship test bed?

E19 (planner vs naive) and E23 (query cache) measured their guards on
purpose-built ITEM/ENTITY relations.  This bench re-measures the same
three effects on a *synthetic multi-domain instance* -- the hospital
domain from :mod:`repro.synth` at scale (18k patients), whose value
distributions, induced Severity->Triage interval rules and FK join
shape were never tuned for these optimizations:

* selective range scan: planner >= 2x over the legacy full scan;
* semantic contradiction short-circuit (induced rules): >= 2x;
* hot result-cache hit on the FK join: >= 10x over recompute.

Equivalence with the legacy executor is asserted on every measured
query, so a speedup can never come from a wrong answer.
"""

import time

import pytest

from repro.cache import query_cache
from repro.plan.planner import plan_select
from repro.plan.stats import statistics
from repro.reporting import render_table
from repro.sql.executor import execute_select, execute_select_legacy
from repro.sql.parser import parse_select
from repro.synth import build_instance

from conftest import record_report

SCALE = 150          #: 120 * SCALE = 18_000 PATIENT rows
SEED = 7

#: ~3% of the Severity domain: planner takes the sorted-index band.
RANGE_SQL = ("SELECT Id FROM PATIENT "
             "WHERE Severity >= 70 AND Severity <= 72")

#: Severity in [5, 25] lies inside the induced GREEN band, so an
#: induced rule contradicts Triage = 'RED' and the planner answers
#: empty without touching a row.
CONTRADICTION_SQL = ("SELECT Id FROM PATIENT "
                     "WHERE Severity >= 5 AND Severity <= 25 "
                     "AND Triage = 'RED'")

#: The FK join, expensive enough that a hot cache hit obviously pays.
JOIN_SQL = ("SELECT PATIENT.Id, WARD.WardName FROM PATIENT, WARD "
            "WHERE PATIENT.Ward = WARD.Ward AND PATIENT.Severity >= 50")

SPEEDUP_TARGET = 2.0
HOT_TARGET = 10.0

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def hospital():
    instance = build_instance("hospital", seed=SEED, scale=SCALE)
    database = instance.database
    statistics(database).table_stats("PATIENT")
    statistics(database).table_stats("WARD")
    cache = query_cache(database)
    cache.floor_s = 0.0
    # Warm the planner's index/plan caches so the measurement compares
    # steady-state strategies, not one-off index builds.
    execute_select(database, parse_select(RANGE_SQL), use_planner=True)
    return instance


def _interleaved(fn_a, fn_b, repeats=7):
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _guarded(label, fast_s, slow_s, target):
    speedup = slow_s / fast_s
    _RESULTS[label] = {
        "planner_s": fast_s, "naive_s": slow_s, "speedup": speedup,
        "guard": f">= {target:.0f}x", "guard_passed": speedup >= target}
    return speedup


def test_selective_range_speedup(benchmark, hospital):
    database = hospital.database
    statement = parse_select(RANGE_SQL)
    planned = execute_select(database, statement, use_planner=True)
    legacy = execute_select_legacy(database, statement)
    assert planned == legacy
    assert 0 < len(planned) < len(database.relation("PATIENT")) / 10, (
        "query is meant to be selective")

    result = benchmark(
        lambda: execute_select(database, statement, use_planner=True))
    assert result == legacy

    legacy_s, planner_s = _interleaved(
        lambda: execute_select_legacy(database, statement),
        lambda: execute_select(database, statement, use_planner=True))
    speedup = _guarded("selective range", planner_s, legacy_s,
                       SPEEDUP_TARGET)
    assert speedup >= SPEEDUP_TARGET, (
        f"expected >={SPEEDUP_TARGET:.0f}x on hospital, got "
        f"{speedup:.1f}x ({legacy_s * 1000:.2f}ms naive vs "
        f"{planner_s * 1000:.2f}ms)")


def test_semantic_contradiction_speedup(benchmark, hospital):
    database, rules = hospital.database, hospital.rules
    statement = parse_select(CONTRADICTION_SQL)

    planned_query = plan_select(database, statement, rules=rules)
    assert any("no PATIENT row can satisfy" in note
               for note in planned_query.notes), (
        "induced hospital rules failed to produce the contradiction "
        f"short-circuit; notes: {planned_query.notes}")
    planned = execute_select(database, statement, use_planner=True,
                             rules=rules)
    legacy = execute_select_legacy(database, statement)
    assert planned == legacy and len(planned) == 0

    result = benchmark(
        lambda: execute_select(database, statement, use_planner=True,
                               rules=rules))
    assert len(result) == 0

    legacy_s, planner_s = _interleaved(
        lambda: execute_select_legacy(database, statement),
        lambda: execute_select(database, statement, use_planner=True,
                               rules=rules))
    speedup = _guarded("semantic contradiction", planner_s, legacy_s,
                       SPEEDUP_TARGET)
    assert speedup >= SPEEDUP_TARGET, (
        f"short-circuit only {speedup:.1f}x over the naive scan "
        f"({legacy_s * 1000:.2f}ms vs {planner_s * 1000:.2f}ms)")


def test_hot_cache_speedup(benchmark, hospital):
    database = hospital.database
    cache = query_cache(database)
    statement = parse_select(JOIN_SQL)
    cache.clear()
    warm = cache.execute_select(statement)
    assert warm == execute_select_legacy(database, statement)
    assert len(warm) > 0

    result = benchmark(lambda: cache.execute_select(statement))
    assert result is warm

    uncached_s, hot_s = _interleaved(
        lambda: plan_select(database, statement).execute(),
        lambda: cache.execute_select(statement))
    speedup = uncached_s / hot_s
    _RESULTS["hot cache hit (join)"] = {
        "planner_s": hot_s, "naive_s": uncached_s, "speedup": speedup,
        "guard": f">= {HOT_TARGET:.0f}x",
        "guard_passed": speedup >= HOT_TARGET}
    assert speedup >= HOT_TARGET, (
        f"hot hit only {speedup:.1f}x over recompute on hospital "
        f"({uncached_s * 1000:.3f}ms vs {hot_s * 1000:.3f}ms)")


def test_report(hospital):
    rows = []
    for label, numbers in _RESULTS.items():
        verdict = "ok" if numbers["guard_passed"] else "FAIL"
        rows.append([label, f"{numbers['naive_s'] * 1000:.3f}",
                     f"{numbers['planner_s'] * 1000:.3f}",
                     f"{numbers['speedup']:.1f}x",
                     f"{numbers['guard']} {verdict}"])
    patients = len(hospital.database.relation("PATIENT"))
    record_report(
        "E25",
        f"Engine speedups on a non-ship domain (hospital, "
        f"{patients} patients, {len(hospital.rules)} induced rules)",
        render_table(
            ["effect", "naive ms", "optimized ms", "speedup", "guard"],
            rows),
        data=dict(_RESULTS, domain="hospital", seed=SEED, scale=SCALE,
                  rules=len(hospital.rules)))
