"""E1 -- Table 1: classification characteristics of navy battleships.

Regenerates the paper's Table 1 from a synthetic fleet: per-type
displacement ranges recovered by aggregation, and the induced
``Displacement --> Type`` rules for the disjoint (Subsurface) category.
The timed kernel is the induction pass over the fleet.
"""

from repro.induction import InductionConfig, induce_scheme
from repro.relational import algebra
from repro.reporting import render_table
from repro.testbed import (
    BATTLESHIP_CLASSES, battleship_database, battleship_table,
)

from conftest import record_report


def test_table1_characteristics(benchmark):
    db = battleship_database(ships_per_type=25, seed=1981)
    ship = db.relation("SHIP")

    def induce_subsurface():
        members = {"SSBN", "SSN"}
        subset = algebra.select_where(
            ship, lambda r: r["Type"] in members)
        return induce_scheme(subset, "Displacement", "Type",
                             InductionConfig(n_c=5))

    rules = benchmark(induce_subsurface)

    # Aggregate view == the printed table.
    joined = algebra.equijoin(ship, db.relation("SHIPTYPE"),
                              [("Type", "Type")])
    grouped = algebra.group_by(
        joined, ["Category", "SHIP_Type"],
        {"lo": ("min", "Displacement"), "hi": ("max", "Displacement")})
    observed = {row[1]: (row[0], row[2], row[3]) for row in grouped}
    table_rows = []
    matches = 0
    for entry in BATTLESHIP_CLASSES:
        category, low, high = observed[entry.type_code]
        exact = (low == entry.displacement_low
                 and high == entry.displacement_high)
        matches += exact
        table_rows.append([
            category, entry.type_code,
            f"{entry.displacement_low}-{entry.displacement_high}",
            f"{low}-{high}", "yes" if exact else "NO"])
    assert matches == len(BATTLESHIP_CLASSES)

    # Induced Subsurface rules reproduce the table's disjoint ranges.
    spans = {rule.rhs.interval.low:
             (rule.lhs[0].interval.low, rule.lhs[0].interval.high)
             for rule in rules}
    assert spans["SSBN"] == (7250, 16600)
    assert spans["SSN"] == (1720, 6000)

    record_report(
        "E1", "Table 1 -- battleship classification characteristics",
        render_table(
            ["Category", "Type", "paper range", "measured range", "match"],
            table_rows)
        + "\n\nInduced Subsurface rules: "
        + "; ".join(rule.render() for rule in rules))


def test_table1_is_twelve_types(benchmark):
    table = benchmark(battleship_table)
    assert len(table) == 12
