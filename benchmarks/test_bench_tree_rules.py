"""E18 (extension) -- multi-clause rules where single attributes fail.

A grid domain whose label is a conjunction (pos iff A >= 5 and B >= 5):
the paper's pairwise algorithm can only express the one-sided "neg"
bands; ID3 path rules express the corner.  The bench times the combined
induction and reports the answerability gap.
"""

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.inference import TypeInferenceEngine
from repro.ker import SchemaBinding, parse_ker
from repro.relational import Database, INTEGER, char
from repro.reporting import render_table
from repro.rules.clause import Clause

from conftest import record_report

GRID_DDL = """
object type CELL
    has key: Id     domain: INTEGER
    has:     A      domain: INTEGER
    has:     B      domain: INTEGER
    has:     Label  domain: CHAR[3]
    with
        A in [0..9]
        B in [0..9]
CELL contains POS, NEG
POS isa CELL with Label = "pos"
NEG isa CELL with Label = "neg"
"""


def grid_binding() -> SchemaBinding:
    rows = []
    identifier = 0
    for a in range(10):
        for b in range(10):
            label = "pos" if (a >= 5 and b >= 5) else "neg"
            rows.append((identifier, a, b, label))
            identifier += 1
    db = Database("grid")
    db.create("CELL", [("Id", INTEGER), ("A", INTEGER), ("B", INTEGER),
                       ("Label", char(3))], rows=rows, key=["Id"])
    return SchemaBinding(parse_ker(GRID_DDL), db)


CONDITIONS = [Clause.between("CELL.A", 6, 9),
              Clause.between("CELL.B", 6, 9)]


def test_tree_rule_induction(benchmark):
    binding = grid_binding()

    def induce():
        return InductiveLearningSubsystem(
            binding, InductionConfig(n_c=3)).induce(
            include_tree_rules=True)

    rules = benchmark(induce)

    pairwise_only = InductiveLearningSubsystem(
        binding, InductionConfig(n_c=3)).induce()

    pairwise_engine = TypeInferenceEngine(pairwise_only, binding=binding)
    tree_engine = TypeInferenceEngine(rules, binding=binding)
    pairwise_result = pairwise_engine.infer(CONDITIONS)
    tree_result = tree_engine.infer(CONDITIONS)

    assert "POS" not in pairwise_result.forward_subtypes()
    assert "POS" in tree_result.forward_subtypes()

    record_report(
        "E18", "Multi-clause (ID3 path) rules vs pairwise intervals "
               "on a conjunctive domain",
        render_table(
            ["knowledge base", "rules", "multi-clause",
             "derives POS for A,B in [6,9]"],
            [["pairwise only", len(pairwise_only), 0, "no"],
             ["pairwise + tree paths", len(rules),
              sum(1 for rule in rules if len(rule.lhs) > 1), "yes"]]))
