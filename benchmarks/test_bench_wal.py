"""E21 (extension) -- WAL overhead guard.

Durability must not price itself out of interactive use: the same
20k-row mixed DML workload runs against a plain in-memory database and
against one with the write-ahead log attached, and the journaling
overhead (record encoding, CRC, buffered appends -- fsync excluded, see
below) is guarded at <= 15%.

The guarded configuration uses ``fsync="never"`` so the measurement
captures the engine's own bookkeeping rather than the test machine's
storage stack; the default ``fsync="commit"`` configuration is measured
and reported alongside for context, since its cost is dominated by
device sync latency the engine cannot control.
"""

import contextlib
import time

import pytest

from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.reporting import render_table
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select
from repro.storage import StorageEngine

from conftest import record_report

N_ROWS = 20_000
BULK_ROWS = 10_000
BATCHES = 40
BATCH_ROWS = (N_ROWS - BULK_ROWS) // BATCHES

RANGE_SQL = ("SELECT Id, Label FROM ITEM "
             "WHERE Value >= 1000 AND Value < 1050")

#: Best-of runs per configuration.
REPEATS = 5

#: The guard: journaling bookkeeping may cost at most this fraction on
#: top of pure in-memory execution.
MAX_OVERHEAD = 0.15


def run_workload(database):
    """20k inserts (bulk + 40 transactional batches), selective reads,
    a banded delete and a banded update -- every mutation kind the WAL
    journals, in realistic proportions."""
    relation = database.create(
        "ITEM", [("Id", INTEGER), ("Value", INTEGER),
                 ("Label", char(8))])
    relation.insert_many(
        (i, (i * 37) % 2000, f"L{(i * 37) % 2000 // 100:02d}")
        for i in range(BULK_ROWS))
    storage = database.storage
    next_id = BULK_ROWS
    for _ in range(BATCHES):
        scope = (storage.transaction() if storage is not None
                 else contextlib.nullcontext())
        with scope:
            for _ in range(BATCH_ROWS):
                value = (next_id * 37) % 2000
                relation.insert(
                    (next_id, value, f"L{value // 100:02d}"))
                next_id += 1
    statement = parse_select(RANGE_SQL)
    for _ in range(5):
        execute_select(database, statement)
    relation.delete_where(lambda row: row[1] < 50)
    relation.replace_where(lambda row: row[1] >= 1950,
                           lambda row: (row[0], row[1], "TOP"))
    return len(relation)


#: Timed configurations: tag -> fsync policy (None = no WAL attached).
CONFIGS = {"base": None, "never": "never", "commit": "commit"}


def timed_run(tmp_path, tag, fsync, repeat):
    database = Database("bench")
    engine = None
    if fsync is not None:
        engine = StorageEngine(database,
                               str(tmp_path / f"{tag}-{repeat}"),
                               fsync=fsync)
    start = time.perf_counter()
    rows = run_workload(database)
    elapsed = time.perf_counter() - start
    if engine is not None:
        engine.wal.close()
    return elapsed, rows


def test_wal_overhead_guard(tmp_path):
    run_workload(Database("warmup"))  # prime caches before timing
    best = {tag: float("inf") for tag in CONFIGS}
    rows = {}
    # Interleave the configurations within each repeat so machine-load
    # drift during the run degrades all three alike instead of skewing
    # whichever one it coincides with.
    for repeat in range(REPEATS):
        for tag, fsync in CONFIGS.items():
            elapsed, rows[tag] = timed_run(tmp_path, tag, fsync, repeat)
            best[tag] = min(best[tag], elapsed)
    base_s, never_s, commit_s = (best["base"], best["never"],
                                 best["commit"])
    base_rows, never_rows, commit_rows = (rows["base"], rows["never"],
                                          rows["commit"])
    assert base_rows == never_rows == commit_rows

    # The journaled run must recover to the same final row count --
    # the overhead being guarded buys actual durability.
    recovered, _ = StorageEngine.recover(
        str(tmp_path / f"never-{REPEATS - 1}"))
    assert len(recovered.database.relation("ITEM")) == never_rows
    recovered.wal.close()

    overhead_never = never_s / base_s - 1.0
    overhead_commit = commit_s / base_s - 1.0
    record_report(
        "E21", f"WAL overhead (mixed DML workload, {N_ROWS} rows)",
        render_table(
            ["configuration", f"best of {REPEATS}", "overhead"],
            [["in-memory", f"{base_s * 1000:.1f}ms", "--"],
             ["WAL fsync=never", f"{never_s * 1000:.1f}ms",
              f"{overhead_never * 100:+.1f}%"],
             ["WAL fsync=commit", f"{commit_s * 1000:.1f}ms",
              f"{overhead_commit * 100:+.1f}%"]])
        + f"\nguard: fsync=never overhead <= {MAX_OVERHEAD * 100:.0f}%",
        data={"base_s": base_s, "never_s": never_s, "commit_s": commit_s,
              "overhead_never": overhead_never,
              "overhead_commit": overhead_commit,
              "guard": f"fsync=never overhead <= {MAX_OVERHEAD:.2f}",
              "guard_passed": overhead_never <= MAX_OVERHEAD})
    assert overhead_never <= MAX_OVERHEAD, (
        f"WAL bookkeeping overhead {overhead_never * 100:.1f}% exceeds "
        f"the {MAX_OVERHEAD * 100:.0f}% budget "
        f"({base_s * 1000:.1f}ms -> {never_s * 1000:.1f}ms)")
