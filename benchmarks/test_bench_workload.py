"""E16 (extension) -- answerability over a random query workload.

The paper demonstrates three hand-picked queries; this bench asks 100
randomly generated conjunctive queries (conditions sampled from the data
distribution) and reports how often the two systems can say anything
intensional.  Expected shape: the induced-rule system answers a strict
superset of the constraint-only baseline's queries.
"""

from repro.baseline import ConstraintOnlyAnswerer
from repro.reporting import render_table
from repro.testbed.workload import generate_workload, run_workload

from conftest import record_report


def test_workload_answerability(benchmark, ship_binding, ship_system):
    queries = generate_workload(ship_binding, n_queries=100, seed=2026)

    stats = benchmark(run_workload, ship_system, queries)

    baseline = ConstraintOnlyAnswerer.from_binding(ship_binding)
    baseline_stats = run_workload(baseline, queries)

    assert stats.queries == 100
    assert stats.with_any >= baseline_stats.with_any
    assert stats.with_forward >= baseline_stats.with_forward

    record_report(
        "E16", "Answerability over 100 random queries "
               "(induced rules vs constraints only)",
        render_table(
            ["metric", "induced rules", "constraints only"],
            [["with forward answers", stats.with_forward,
              baseline_stats.with_forward],
             ["with backward answers", stats.with_backward,
              baseline_stats.with_backward],
             ["with any answer", stats.with_any,
              baseline_stats.with_any],
             ["empty extension", stats.empty_extension,
              baseline_stats.empty_extension]]))
