#!/usr/bin/env python
"""Table 1: recovering the navy battleship classification characteristics.

Section 3.1 presents Table 1 -- twelve ship types with their displacement
ranges -- as the kind of classification knowledge the ILS should mine
from the data.  This example generates a synthetic fleet realizing the
table, then shows two views of the learned knowledge:

1. the aggregate view (per-type min/max displacement == the table);
2. the induced interval rules: within the Subsurface category the ranges
   are disjoint and come back exactly; within Surface several ranges
   overlap (CG/CGN, DD/DDG, CV/BB), so displacement alone cannot
   separate them -- exactly why the paper pairs induction with the
   schema's type hierarchy.  An ID3 tree over (Category, Displacement)
   resolves what the single attribute cannot.

Run:  python examples/battleship_fleet.py
"""

from repro.induction import (
    InductionConfig, id3_induce, induce_scheme, tree_to_rules,
)
from repro.relational import algebra
from repro.reporting import render_table
from repro.rules.clause import AttributeRef
from repro.testbed import battleship_database, battleship_table


def main() -> None:
    print("Paper Table 1 (ground truth):")
    print(battleship_table().render())
    print()

    db = battleship_database(ships_per_type=25, seed=1981)
    ship = db.relation("SHIP")
    print(f"Synthetic fleet: {len(ship)} ships")
    print()

    # View 1: classification characteristics by aggregation.
    joined = algebra.equijoin(ship, db.relation("SHIPTYPE"),
                              [("Type", "Type")])
    grouped = algebra.group_by(
        joined, ["Category", "SHIP_Type"],
        {"lo": ("min", "Displacement"), "hi": ("max", "Displacement")})
    print("Recovered characteristics (min/max per type):")
    print(render_table(
        ["Category", "Type", "Displacement low", "high"],
        [list(row) for row in grouped.sorted_by("Category", "lo")]))
    print()

    # View 2: induced interval rules per category.
    for category in ("Subsurface", "Surface"):
        members = {
            row[0] for row in db.relation("SHIPTYPE")
            if db.relation("SHIPTYPE").value(row, "Category") == category}
        subset = algebra.select_where(
            ship, lambda r: r["Type"] in members)
        rules = induce_scheme(subset, "Displacement", "Type",
                              InductionConfig(n_c=5))
        print(f"Induced Displacement -> Type rules ({category}):")
        if rules:
            for rule in rules:
                print(f"  {rule.render()}  (support {rule.support})")
        else:
            print("  (none survive pruning: the ranges interleave)")
        print()

    # The tree learner separates overlapping surface types by using the
    # category first and thresholds within it.
    type_ref = AttributeRef("SHIP", "Type")
    records = []
    categories = {row[0]: row[2] for row in db.relation("SHIPTYPE")}
    for row in ship:
        records.append({
            AttributeRef("SHIP", "Displacement"):
                ship.value(row, "Displacement"),
            AttributeRef("SHIPTYPE", "Category"):
                categories[ship.value(row, "Type")],
            type_ref: ship.value(row, "Type"),
        })
    tree = id3_induce(records,
                      [AttributeRef("SHIPTYPE", "Category"),
                       AttributeRef("SHIP", "Displacement")],
                      type_ref)
    rules = tree_to_rules(tree, type_ref)
    print(f"ID3 over (Category, Displacement): depth {tree.depth()}, "
          f"{tree.leaf_count()} leaves, {len(rules)} path rules, e.g.:")
    for rule in rules[:4]:
        print(f"  {rule.render()}")


if __name__ == "__main__":
    main()
