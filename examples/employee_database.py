#!/usr/bin/env python
"""Intensional answering on a fresh domain: a personnel database.

The paper's machinery is not ship-specific.  This example defines a new
application from scratch -- KER DDL for an EMPLOYEE/DEPARTMENT schema
(using the paper's own Employee.Age / Employee.Position examples from
Section 5.2.2), loads data, induces rules, and answers queries
intensionally.  It demonstrates:

* writing KER DDL with derived domains and subtype derivation specs;
* intra-object induction (Salary --> Grade, Age --> Grade);
* inter-object induction through the ASSIGNMENT relationship;
* forward/backward answers on a domain with numeric and string ranges.

Run:  python examples/employee_database.py
"""

from repro.induction import InductionConfig
from repro.ker import parse_ker
from repro.query import IntensionalQueryProcessor
from repro.relational import Database, INTEGER, char

EMPLOYEE_DDL = """
domain: PERSON_NAME isa CHAR[20]
domain: AGE isa integer range [21..65]

object type DEPARTMENT
    has key: Dept      domain: CHAR[4]
    has:     Floor     domain: INTEGER
    with
        Floor in [1..12]

object type EMPLOYEE
    has key: Emp       domain: CHAR[6]
    has:     Name      domain: PERSON_NAME
    has:     Age       domain: AGE
    has:     Salary    domain: INTEGER
    has:     Grade     domain: CHAR[8]
    with
        Salary in [30000..190000]

EMPLOYEE contains JUNIOR, SENIOR, PRINCIPAL
JUNIOR isa EMPLOYEE with Grade = "junior"
SENIOR isa EMPLOYEE with Grade = "senior"
PRINCIPAL isa EMPLOYEE with Grade = "princpl"

object type ASSIGNMENT
    has key: Emp   domain: EMPLOYEE
    has:     Dept  domain: DEPARTMENT
"""


def build_database() -> Database:
    db = Database("personnel")
    db.create("DEPARTMENT", [("Dept", char(4)), ("Floor", INTEGER)],
              rows=[("eng", 3), ("ops", 4), ("mkt", 9), ("hr", 10)],
              key=["Dept"])
    employees = [
        # junior band: salaries 30k..60k, ages 21..29
        ("e100", "Adams", 21, 31000, "junior"),
        ("e101", "Baker", 23, 38000, "junior"),
        ("e102", "Chen", 25, 45000, "junior"),
        ("e103", "Diaz", 27, 52000, "junior"),
        ("e104", "Evans", 29, 60000, "junior"),
        # senior band: salaries 70k..120k, ages 31..45
        ("e200", "Ferris", 31, 70000, "senior"),
        ("e201", "Gupta", 34, 82000, "senior"),
        ("e202", "Hale", 38, 95000, "senior"),
        ("e203", "Ito", 41, 110000, "senior"),
        ("e204", "Jones", 45, 120000, "senior"),
        # principal band: salaries 140k..190k, ages 48..62
        ("e300", "Klein", 48, 140000, "princpl"),
        ("e301", "Lopez", 52, 155000, "princpl"),
        ("e302", "Mori", 57, 170000, "princpl"),
        ("e303", "Novak", 62, 190000, "princpl"),
    ]
    db.create("EMPLOYEE",
              [("Emp", char(6)), ("Name", char(20)), ("Age", INTEGER),
               ("Salary", INTEGER), ("Grade", char(8))],
              rows=employees, key=["Emp"])
    assignments = [
        ("e100", "eng"), ("e101", "eng"), ("e102", "ops"),
        ("e103", "ops"), ("e104", "mkt"), ("e200", "eng"),
        ("e201", "eng"), ("e202", "ops"), ("e203", "mkt"),
        ("e204", "hr"), ("e300", "eng"), ("e301", "ops"),
        ("e302", "mkt"), ("e303", "hr"),
    ]
    db.create("ASSIGNMENT", [("Emp", char(6)), ("Dept", char(4))],
              rows=assignments, key=["Emp"])
    return db


def main() -> None:
    db = build_database()
    schema = parse_ker(EMPLOYEE_DDL, name="personnel")
    system = IntensionalQueryProcessor.from_database(
        db, ker_schema=schema, config=InductionConfig(n_c=3),
        relation_order=["EMPLOYEE", "DEPARTMENT", "ASSIGNMENT"])

    print(f"Induced rules ({len(system.rules)}):")
    print(system.rules.render(isa_style=True))
    print()

    queries = {
        "Who earns more than 150k? (forward: they are principals)": (
            "SELECT Name, Grade FROM EMPLOYEE WHERE Salary > 150000"),
        "The senior staff (backward: salary/age band descriptions)": (
            "SELECT Name FROM EMPLOYEE WHERE Grade = 'senior'"),
        "Staff aged 29 or less (forward: they are juniors)": (
            "SELECT Name, Grade FROM EMPLOYEE WHERE Age <= 29"),
    }
    for title, sql in queries.items():
        print("---", title)
        result = system.ask(sql)
        print(result.render())
        print()


if __name__ == "__main__":
    main()
