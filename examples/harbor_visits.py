#!/usr/bin/env python
"""Inter-object knowledge: ships, ports, and the draft/depth constraint.

Section 3.1 names a second kind of inducible knowledge beyond interval
rules: "the relationship VISIT involves entities of SHIP and PORT and
satisfies the constraint that the draft of the ship must be less than
the depth of the port".  This example induces exactly that constraint
from visit instances and shows it at work in intensional answering:

    query: ships visiting ports with Depth <= 8
      -> propagated bound: SHIP.Draft < 8        (via Draft < Depth)
      -> forward rule: Draft in [5..8] -> SMALL  (induced)
      -> "Every answer is of type SMALL."

Run:  python examples/harbor_visits.py
"""

from repro.induction.interobject import induce_comparison_constraints
from repro.inference import explain_inference
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.testbed import harbor_database, harbor_ker_schema


def main() -> None:
    db = harbor_database()
    binding = SchemaBinding(harbor_ker_schema(), db)

    print("The VISIT instances (every one satisfies draft < depth):")
    print(db.relation("VISIT").render())
    print()

    constraints = induce_comparison_constraints(binding, "VISIT")
    print("Induced comparison constraints:")
    for constraint in constraints:
        print(f"  {constraint.render()}  "
              f"(holds on {constraint.support} visits)")
    print()

    system = IntensionalQueryProcessor.from_database(
        db, ker_schema=harbor_ker_schema(),
        relation_order=["SHIP", "PORT", "VISIT"],
        induce_comparisons=True)
    print(f"Interval rules ({len(system.rules)}):")
    print(system.rules.render(isa_style=True))
    print()

    sql = """
        SELECT SHIP.Name, SHIP.Size FROM SHIP, PORT, VISIT
        WHERE SHIP.Id = VISIT.Ship AND PORT.Port = VISIT.Port
        AND PORT.Depth <= 8"""
    result = system.ask(sql)
    print(result.render())
    print()
    print("Derivation trace:")
    print(explain_inference(result.inference))


if __name__ == "__main__":
    main()
