#!/usr/bin/env python
"""Driving the induction algorithm by hand in QUEL.

The prototype was written in EQUEL on INGRES, and Section 5.2.1 states
the rule-induction algorithm as QUEL statements.  This example runs that
exact statement sequence interactively against the ship database for the
scheme ``Class --> Type``, printing each intermediate relation -- useful
to see *why* step 2 removes what it removes and how value ranges form.

Run:  python examples/quel_session.py
"""

from repro.induction.runs import build_runs
from repro.quel import QuelSession
from repro.testbed import ship_database


def main() -> None:
    db = ship_database()
    session = QuelSession(db)

    print("range of r is CLASS")
    session.execute("range of r is CLASS")

    print("retrieve into S unique (r.Type, r.Class) sort by r.Type")
    step1 = session.execute(
        "retrieve into S unique (r.Type, r.Class) sort by r.Type")
    print(step1.render())
    print()

    print("range of s is S")
    print("retrieve into T unique (s.Type, s.Class) "
          "where (r.Class = s.Class and r.Type != s.Type)")
    session.execute("range of s is S")
    step2 = session.execute(
        "retrieve into T unique (s.Type, s.Class) "
        "where (r.Class = s.Class and r.Type != s.Type)")
    print("Inconsistent pairs (same Class, different Type):")
    print(step2.render() if len(step2) else "  (none -- Class is a key)")
    print()

    print("range of t is T")
    print("delete s where (s.Class = t.Class and s.Type = t.Type)")
    session.execute("range of t is T")
    deleted = session.execute(
        "delete s where (s.Class = t.Class and s.Type = t.Type)")
    print(f"deleted {deleted} rows; S now:")
    survivors = db.relation("S")
    print(survivors.sorted_by("Class").render())
    print()

    # Step 3 by hand: maximal runs over the surviving pairs.
    mapping = {survivors.value(row, "Class"):
               survivors.value(row, "Type") for row in survivors}
    occurring = sorted(db.relation("CLASS").column_values("Class"))
    counts = {value: 1 for value in mapping}
    runs = build_runs(occurring, mapping, frozenset(), counts)
    print("Value ranges (step 3):")
    for run in runs:
        print(f"  if {run.low} <= Class <= {run.high} "
              f"then Type = {run.y}   (support {run.instances})")
    print()
    print("Step 4 at N_c = 3 keeps the first two ranges and prunes the")
    print("single-instance 1301 rule -- the R_new of Example 2.")


if __name__ == "__main__":
    main()
