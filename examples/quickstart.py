#!/usr/bin/env python
"""Quickstart: intensional answers over the paper's ship database.

Builds the full Figure 6 pipeline in three lines -- load the Appendix C
database, parse the Appendix B KER schema, induce the knowledge base --
then asks the paper's Example 1 query and prints both answer forms.

Run:  python examples/quickstart.py
"""

from repro.query import IntensionalQueryProcessor
from repro.testbed import ship_database, ship_ker_schema


def main() -> None:
    system = IntensionalQueryProcessor.from_database(
        ship_database(), ker_schema=ship_ker_schema(),
        relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])

    print("Induced knowledge base "
          f"({len(system.rules)} rules, N_c = 3):")
    print(system.rules.render(isa_style=True))
    print()

    result = system.ask("""
        SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
        FROM SUBMARINE, CLASS
        WHERE SUBMARINE.CLASS = CLASS.CLASS
        AND CLASS.DISPLACEMENT > 8000
    """)
    print(result.render())


if __name__ == "__main__":
    main()
