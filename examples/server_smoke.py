#!/usr/bin/env python
"""Server smoke test: boot ``repro-server`` as a real subprocess, walk
one client through the whole protocol surface, and check graceful
shutdown -- the script CI runs to prove the shipped entry points work
outside the test harness.

The walk covers every request family once: ping, admin introspection,
plain SQL, an intensional ``ask``, and a transaction that is rolled
back followed by one that commits (with visibility checked after
each), then a SIGTERM that must drain the connection cleanly.

Run:  python examples/server_smoke.py
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile

from repro.server.client import Client


def boot(data_dir: str) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro.server`` on a free port and return the
    process plus the port it announced."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--data-dir", data_dir, "--lock-timeout", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    while True:
        line = process.stdout.readline()
        if not line:
            raise SystemExit("server exited before announcing its port")
        sys.stdout.write(line)
        match = re.search(r"listening on \S+:(\d+)", line)
        if match:
            return process, int(match.group(1))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as data_dir:
        process, port = boot(data_dir)
        try:
            with Client("127.0.0.1", port) as client:
                assert client.ping(), "ping did not pong"
                print(f"connected as session {client.session}")

                tables = client.admin("tables")
                assert "SUBMARINE" in tables, tables
                print(client.admin("sessions"))

                rows = client.sql("SELECT Name, Class FROM SUBMARINE "
                                  "WHERE Class = '1301'")
                assert len(rows) > 0, "expected some 1301-class boats"
                print(f"extensional: {len(rows)} rows")

                reply = client.ask("SELECT Class FROM CLASS "
                                   "WHERE Displacement > 8000")
                assert reply.intensional, "expected an intensional answer"
                print("intensional:", reply.intensional[0])

                before = len(client.sql("SELECT Id FROM SUBMARINE"))
                client.begin()
                client.sql("INSERT INTO SUBMARINE VALUES "
                           "('999', 'Smoke', '1301')")
                client.rollback()
                after = len(client.sql("SELECT Id FROM SUBMARINE"))
                assert after == before, "rollback leaked a row"
                print("rollback: row discarded")

                client.begin()
                client.sql("INSERT INTO SUBMARINE VALUES "
                           "('999', 'Smoke', '1301')")
                client.commit()
                after = len(client.sql("SELECT Id FROM SUBMARINE"))
                assert after == before + 1, "commit lost the row"
                print("commit: row durable")

            process.terminate()
            output, _ = process.communicate(timeout=30)
            sys.stdout.write(output)
            assert process.returncode == 0, \
                f"server exited with {process.returncode}"
            assert "server stopped" in output, "no graceful shutdown"
        finally:
            if process.poll() is None:
                process.kill()
    print("server smoke test passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
