#!/usr/bin/env python
"""A tour of the ship test bed: the paper's Section 6, end to end.

Walks through everything the paper demonstrates on the naval database:

1. the Appendix C relations and the Appendix B KER schema (with text
   renderings of Figures 1, 2 and 4);
2. rule induction -- the 17-rule knowledge base of Section 6, compared
   rule-by-rule against the printed list;
3. the Figure 5 listing (CLASS with its induced displacement rules);
4. the three worked examples, each with its extensional and intensional
   answers;
5. knowledge relocation through rule relations (Section 5.2.2).

Run:  python examples/ship_database_tour.py
"""

from repro.dictionary import IntelligentDataDictionary
from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.ker.diagram import render_hierarchy, render_with_rules
from repro.query import IntensionalQueryProcessor
from repro.relational.textio import dumps_database, loads_database
from repro.testbed import ship_database, ship_ker_schema
from repro.testbed.paper_rules import compare_with_paper

ORDER = ["SUBMARINE", "CLASS", "SONAR", "INSTALL"]

EXAMPLES = {
    "Example 1 (forward inference)": """
        SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
        FROM SUBMARINE, CLASS
        WHERE SUBMARINE.CLASS = CLASS.CLASS
        AND CLASS.DISPLACEMENT > 8000""",
    "Example 2 (backward inference)": """
        SELECT SUBMARINE.NAME, SUBMARINE.CLASS
        FROM SUBMARINE, CLASS
        WHERE SUBMARINE.CLASS = CLASS.CLASS
        AND CLASS.TYPE = "SSBN" """,
    "Example 3 (combined inference)": """
        SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
        FROM SUBMARINE, CLASS, INSTALL
        WHERE SUBMARINE.CLASS = CLASS.CLASS
        AND SUBMARINE.ID = INSTALL.SHIP
        AND INSTALL.SONAR = "BQS-04" """,
}


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    db = ship_database()
    schema = ship_ker_schema()
    binding = SchemaBinding(schema, db)

    banner("1. The database (Appendix C) and its KER schema (Appendix B)")
    print(db.render())
    print()
    print("Ship type hierarchy (Figure 2 / 4):")
    print(render_hierarchy(schema, "CLASS"))
    print(render_hierarchy(schema, "SONAR"))
    print()
    print("Declared integrity knowledge (the baseline's whole world):")
    print(binding.schema_rules().render(isa_style=True))

    banner("2. Rule induction (Section 5.2.1, N_c = 3)")
    ils = InductiveLearningSubsystem(binding, InductionConfig(n_c=3),
                                     relation_order=ORDER)
    print("Candidate schemes chosen from the schema:")
    for scheme in ils.schemes():
        print(f"  {scheme.render()}")
    rules = ils.induce()
    print()
    print("Induced rules:")
    print(rules.render(isa_style=True))
    print()
    print("Comparison with the paper's printed R1..R17:")
    print(compare_with_paper(rules).render())

    banner("3. Figure 5: CLASS with its induced displacement rules")
    displacement_rules = [
        rule for rule in rules
        if rule.lhs[0].attribute.attribute == "Displacement"]
    print(render_with_rules(schema, "CLASS", displacement_rules))

    banner("4. The worked examples")
    system = IntensionalQueryProcessor(db, rules, binding=binding)
    for title, sql in EXAMPLES.items():
        print(f"--- {title}")
        print(system.ask(sql).render())
        print()

    banner("5. Knowledge relocation (Section 5.2.2)")
    dictionary = IntelligentDataDictionary.build(
        binding, rules, include_schema_rules=False)
    bundle = dictionary.store_into(db)
    print("Rule relations registered with the database:")
    print(bundle.paper_projection().render(max_rows=10))
    wire = dumps_database(db)
    print(f"\nSerialized database+knowledge: {len(wire)} bytes")
    remote = loads_database(wire)
    rebuilt = IntelligentDataDictionary.load_from(remote, ship_ker_schema())
    print(f"Rebuilt at the remote site: {len(rebuilt.rules)} rules, "
          f"{len(rebuilt.frames)} frames -- identical: "
          f"{rebuilt.rules.render() == rules.render()}")


if __name__ == "__main__":
    main()
