"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (pip falls back to `setup.py develop` when this file exists)."""

from setuptools import setup

setup()
