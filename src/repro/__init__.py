"""Reproduction of Chu & Lee, "Using Type Inference and Induced Rules to
Provide Intensional Answers" (UCLA CSD-900006 / ICDE 1991).

The package provides, bottom-up:

* :mod:`repro.relational` -- an in-memory relational engine (the INGRES
  substitute the prototype ran on).
* :mod:`repro.quel` -- the QUEL query-language subset the paper's rule
  induction algorithm is written in.
* :mod:`repro.sql` -- the SQL SELECT subset used by the paper's worked
  examples.
* :mod:`repro.ker` -- the Knowledge-based Entity-Relationship (KER) data
  model, including a parser for the Appendix A DDL.
* :mod:`repro.rules` -- interval rules, rule schemes, and the relational
  "rule relation" encoding of Section 5.2.2.
* :mod:`repro.induction` -- the Inductive Learning Subsystem (ILS):
  the pairwise rule-induction algorithm of Section 5.2.1, schema-guided
  candidate selection, pruning, and an ID3-style tree learner.
* :mod:`repro.dictionary` -- the intelligent (extended) data dictionary:
  frames plus the rule base.
* :mod:`repro.inference` -- the inference processor: forward, backward,
  and combined *type inference* producing intensional answers.
* :mod:`repro.query` -- the end-to-end intensional query processing
  system of Figure 6.
* :mod:`repro.baseline` -- the integrity-constraint-only baseline in the
  style of Motro (1989).
* :mod:`repro.testbed` -- the naval ship database of Appendix C, the
  Appendix B KER schema, the Table 1 battleship fleet, and synthetic
  workload generators.

Quickstart::

    from repro.testbed import ship_database, ship_ker_schema
    from repro.query import IntensionalQueryProcessor

    system = IntensionalQueryProcessor.from_database(
        ship_database(), ker_schema=ship_ker_schema())
    result = system.ask(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS "
        "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000")
    print(result.extensional)            # the tuples
    for answer in result.intensional:    # the characterizations
        print(answer.render())
"""

from repro.version import __version__

__all__ = ["__version__"]
