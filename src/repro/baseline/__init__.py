"""Baselines.

:mod:`repro.baseline.motro` -- intensional answers from integrity
constraints only (no induced rules), in the style of Motro (1989), the
comparison point of the paper's conclusion: "type inference with induced
rules is a more effective technique to derive intensional answers than
using integrity constraints".
"""

from repro.baseline.motro import ConstraintOnlyAnswerer, compare_systems

__all__ = ["ConstraintOnlyAnswerer", "compare_systems"]
