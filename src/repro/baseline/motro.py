"""Integrity-constraint-only intensional answering (Motro-style baseline).

Motro (1989) derives intensional answers from declared integrity
constraints.  In our setting that corresponds to running the same type-
inference engine over only the *schema-declared* with-constraint rules
(no induced knowledge).  The paper's conclusion claims type inference
with induced rules is more effective "when the database schema has
strong type hierarchy and semantic knowledge"; :func:`compare_systems`
quantifies that claim over a query workload (benchmark E7).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from repro.ker.binding import SchemaBinding
from repro.query.system import IntensionalQueryProcessor, QueryResult


class ConstraintOnlyAnswerer(IntensionalQueryProcessor):
    """The Figure 6 pipeline with the ILS switched off."""

    @classmethod
    def from_binding(cls, binding: SchemaBinding) -> "ConstraintOnlyAnswerer":
        return cls(binding.database, binding.schema_rules(),
                   binding=binding)


class ComparisonRow(NamedTuple):
    """Per-query comparison of the two systems."""

    sql: str
    induced_forward: int      #: forward answers from induced rules
    induced_backward: int
    baseline_forward: int     #: forward answers from constraints only
    baseline_backward: int

    @property
    def induced_total(self) -> int:
        return self.induced_forward + self.induced_backward

    @property
    def baseline_total(self) -> int:
        return self.baseline_forward + self.baseline_backward


class ComparisonReport(NamedTuple):
    """Workload-level summary (benchmark E7's output)."""

    rows: list[ComparisonRow]

    @property
    def queries(self) -> int:
        return len(self.rows)

    @property
    def induced_answered(self) -> int:
        """Queries for which induced rules produced any answer."""
        return sum(1 for row in self.rows if row.induced_total > 0)

    @property
    def baseline_answered(self) -> int:
        return sum(1 for row in self.rows if row.baseline_total > 0)

    @property
    def induced_only(self) -> int:
        """Queries only the induced-rule system could characterize."""
        return sum(1 for row in self.rows
                   if row.induced_total > 0 and row.baseline_total == 0)

    def render(self) -> str:
        lines = [
            f"queries:                     {self.queries}",
            f"answered with induced rules: {self.induced_answered}",
            f"answered by constraints:     {self.baseline_answered}",
            f"answered only via induction: {self.induced_only}",
        ]
        return "\n".join(lines)


def compare_systems(induced_system: IntensionalQueryProcessor,
                    baseline: IntensionalQueryProcessor,
                    queries: Sequence[str]) -> ComparisonReport:
    """Run *queries* through both systems and tally their answers."""
    rows: list[ComparisonRow] = []
    for sql in queries:
        with_rules: QueryResult = induced_system.ask(sql)
        constraints_only: QueryResult = baseline.ask(sql)
        rows.append(ComparisonRow(
            sql,
            len(with_rules.inference.forward),
            len(with_rules.inference.backward),
            len(constraints_only.inference.forward),
            len(constraints_only.inference.backward)))
    return ComparisonReport(rows)
