"""Aggregate ``BENCH_*.json`` artifacts into one trajectory table.

Every benchmark writes a machine-readable ``BENCH_<ID>.json`` next to
the repo root (see ``benchmarks/conftest.py``); this module folds all of
them into a single summary::

    python -m repro.bench_report [directory]

The summary has one row per experiment -- id, title, number of guarded
metrics, guard verdicts, and the extreme speedup observed -- followed by
a flat metric table (one row per numeric leaf of each ``data`` payload),
so a whole benchmark run can be diffed or eyeballed as one table instead
of two dozen JSON files.  The rendered text is also written to
``benchmark_reports/summary.txt``.

Exits non-zero when any recorded guard failed, making the aggregation
double as a CI gate over artifacts produced by earlier timed steps.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, Iterator


def _flatten(data: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Leaf (path, value) pairs of a nested dict, dotted-path keyed."""
    if isinstance(data, dict):
        for key, value in sorted(data.items()):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(value, path)
    else:
        yield prefix, data


def _sort_key(report: dict) -> tuple:
    """E2 before E13, E13 before E13b."""
    identifier = str(report.get("id", ""))
    digits = "".join(ch for ch in identifier if ch.isdigit())
    return (int(digits) if digits else 0, identifier)


def load_reports(directory: pathlib.Path) -> list[dict]:
    reports = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping {path.name}: {error}", file=sys.stderr)
            continue
        payload.setdefault("id", path.stem.removeprefix("BENCH_"))
        reports.append(payload)
    reports.sort(key=_sort_key)
    return reports


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render(reports: list[dict]) -> tuple[str, int]:
    """(rendered summary, number of failed guards)."""
    lines: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []
    metric_rows: list[tuple[str, str, str]] = []
    failures = 0
    for report in reports:
        identifier = str(report["id"])
        leaves = list(_flatten(report.get("data") or {}))
        speedups = [value for path, value in leaves
                    if path.endswith("speedup")
                    and isinstance(value, (int, float))]
        verdicts = [(path, value) for path, value in leaves
                    if path.endswith("guard_passed")]
        failed = [path for path, value in verdicts if not value]
        failures += len(failed)
        guard_cell = ("-" if not verdicts else
                      f"{len(verdicts) - len(failed)}/{len(verdicts)} ok")
        if failed:
            guard_cell += " FAIL"
        speedup_cell = (f"{max(speedups):.2f}x" if speedups else "-")
        rows.append((identifier, str(report.get("title", ""))[:52],
                     str(len(leaves)) if leaves else "-",
                     guard_cell, speedup_cell))
        for path, value in leaves:
            if isinstance(value, (int, float, bool)):
                metric_rows.append((identifier, path,
                                    _format_value(value)))

    header = ("id", "experiment", "metrics", "guards", "max speedup")
    widths = [max(len(row[i]) for row in rows + [header])
              for i in range(len(header))]
    lines.append("Benchmark trajectory "
                 f"({len(reports)} experiments)")
    lines.append("")
    lines.append("  ".join(cell.ljust(width)
                           for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    if metric_rows:
        lines.append("")
        lines.append("Recorded metrics")
        lines.append("")
        metric_widths = [
            max(len(row[i]) for row in metric_rows) for i in range(3)]
        for identifier, path, value in metric_rows:
            lines.append(
                f"{identifier.ljust(metric_widths[0])}  "
                f"{path.ljust(metric_widths[1])}  {value}")
    if failures:
        lines.append("")
        lines.append(f"{failures} guard(s) FAILED")
    return "\n".join(lines) + "\n", failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    directory = pathlib.Path(argv[0]) if argv else pathlib.Path.cwd()
    reports = load_reports(directory)
    if not reports:
        print(f"no BENCH_*.json artifacts under {directory}",
              file=sys.stderr)
        return 2
    text, failures = render(reports)
    print(text, end="")
    output_dir = directory / "benchmark_reports"
    output_dir.mkdir(exist_ok=True)
    (output_dir / "summary.txt").write_text(text)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
