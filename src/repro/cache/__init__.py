"""Version-aware multi-level query cache (plan / result / ask).

See :mod:`repro.cache.core` for the design and docs/CACHING.md for the
operator's view.  Typical use is indirect -- the SQL executor and
:meth:`IntensionalQueryProcessor.ask` consult the cache on their own --
but the accessor is public::

    from repro.cache import query_cache

    cache = query_cache(database)
    cache.status()      # entries / bytes / hit counters
    cache.clear()
"""

from repro.cache.core import (
    DEFAULT_BYTE_BUDGET,
    DEFAULT_FLOOR_MS,
    QueryCache,
    cache_enabled_default,
    query_cache,
)

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "DEFAULT_FLOOR_MS",
    "QueryCache",
    "cache_enabled_default",
    "query_cache",
]
