"""The version-aware multi-level query cache.

Three levels, one invalidation substrate:

* **plan cache** -- compiled :class:`~repro.plan.planner.PlannedQuery`
  trees keyed on the statement's canonical rendering + result name +
  rule-base version.  Validated against the catalog's ``stats_version``
  with the per-dependency revalidation idiom the statistics catalog
  uses: equal version means *nothing anywhere changed* (hit without
  looking further); otherwise each dependency must still be the same
  relation object at the same mutation version.
* **result cache** -- SELECT result relations keyed like plans, guarded
  by a *version vector* over exactly the relations the plan touches.
  Admission is cost-based (only results whose measured execution time
  cleared :attr:`QueryCache.floor_s` are worth the memory) and eviction
  is byte-budgeted LRU.
* **ask cache** -- full intensional answers
  (:class:`~repro.query.system.QueryResult`) keyed on the normalized
  SQL fingerprint, additionally pinned to the rule-base version and the
  storage layer's ``rules_stale`` degradation flag, so ILS re-induction
  and stale-rule suppression can never serve an answer induced from
  other data.

Invalidation is *eager and exact*: the cache subscribes to the
catalog's mutation listeners, so the moment any registered relation
changes -- live DML, transaction rollback undo, or WAL tail replay,
which all mutate through the same hooks -- the entries depending on
that relation (and only those) are dropped.  The lazy version-vector
check stays as a belt-and-suspenders guard.

Transactions: entries admitted while an explicit transaction is open
are *private* -- correct for the transaction that created them (there
is no cross-connection visibility in this single-session engine), but
discarded wholesale on rollback and only published on commit, so no
entry born from state that never committed can outlive it.

Everything is observable twice over: always-on internal counters (the
``\\cache`` shell command and the invalidation tests read these) and
the usual zero-when-disabled obs metrics
(``query_cache_requests_total{level,result}``,
``query_cache_invalidations_total{level,reason}``,
``query_cache_evictions_total``, ``query_cache_bytes``).

Knobs: ``REPRO_CACHE=off`` disables caching process-wide,
``REPRO_CACHE_BYTES`` sets the value-store budget (default 32 MiB),
``REPRO_CACHE_FLOOR_MS`` the admission floor (default 0.2 ms).
"""

from __future__ import annotations

import os
import sys
import time
from collections import OrderedDict
from typing import Any, Iterable

from repro import obs
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "DEFAULT_BYTE_BUDGET",
    "DEFAULT_FLOOR_MS",
    "QueryCache",
    "cache_enabled_default",
    "query_cache",
]

#: Value-store (result + ask entries) budget when ``REPRO_CACHE_BYTES``
#: is absent.  Plans are count-capped instead -- they hold no rows.
DEFAULT_BYTE_BUDGET = 32 * 1024 * 1024

#: Admission floor: executions faster than this are not worth a cache
#: slot (the lookup machinery itself costs a few microseconds).
DEFAULT_FLOOR_MS = 0.2

#: Compiled plans kept per database (LRU on statement fingerprint).
PLAN_CAPACITY = 256

_OFF_VALUES = frozenset({"off", "0", "false", "no"})


def cache_enabled_default() -> bool:
    """Whether ``REPRO_CACHE`` leaves caching on (the default)."""
    return os.environ.get(
        "REPRO_CACHE", "").strip().lower() not in _OFF_VALUES


def _env_byte_budget() -> int:
    raw = os.environ.get("REPRO_CACHE_BYTES", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_BYTE_BUDGET
    return value if value > 0 else DEFAULT_BYTE_BUDGET


def _env_floor_s() -> float:
    raw = os.environ.get("REPRO_CACHE_FLOOR_MS", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_FLOOR_MS / 1000.0
    return max(value, 0.0) / 1000.0


def estimate_relation_bytes(relation: Relation) -> int:
    """Approximate retained size: fixed overhead plus the mean sampled
    row footprint scaled to the row count (sampling keeps admission
    O(1) for huge results)."""
    rows = relation.rows
    if not rows:
        return 512
    sample = rows[:32]
    per_row = sum(
        sys.getsizeof(row) + sum(sys.getsizeof(value) for value in row)
        for row in sample) / len(sample)
    return int(512 + per_row * len(rows))


class _PlanEntry:
    __slots__ = ("plan", "stats_version", "deps")

    def __init__(self, plan, stats_version: int, deps: tuple):
        self.plan = plan
        self.stats_version = stats_version
        self.deps = deps


class _ValueEntry:
    __slots__ = ("value", "deps", "rules_version", "degraded", "nbytes",
                 "private", "owner")

    def __init__(self, value, deps: tuple, rules_version: int,
                 degraded: bool, nbytes: int, private: bool,
                 owner=None):
        self.value = value
        self.deps = deps
        self.rules_version = rules_version
        self.degraded = degraded
        self.nbytes = nbytes
        self.private = private
        #: session token that admitted a private entry (None outside
        #: the multi-session server); a private entry is served only
        #: back to its owner until the transaction commits.
        self.owner = owner


class QueryCache:
    """Per-database three-level cache; obtain via :func:`query_cache`."""

    def __init__(self, database: Database,
                 byte_budget: int | None = None,
                 floor_s: float | None = None,
                 enabled: bool | None = None):
        self.database = database
        self.enabled = (cache_enabled_default() if enabled is None
                        else enabled)
        self.byte_budget = (_env_byte_budget() if byte_budget is None
                            else byte_budget)
        self.floor_s = _env_floor_s() if floor_s is None else floor_s
        self._plans: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        #: result + ask entries share one LRU and one byte budget.
        self._values: OrderedDict[tuple, _ValueEntry] = OrderedDict()
        #: relation name -> keys of value entries depending on it.
        self._by_dep: dict[str, set[tuple]] = {}
        #: keys admitted inside the currently-open explicit transaction.
        self._txn_keys: set[tuple] = set()
        #: session token the multi-client server sets around statement
        #: execution; tags private entries with their admitting session
        #: so another session can never be served them (``None`` for
        #: in-process single-session use, where everything matches).
        self.current_owner = None
        self.bytes_used = 0
        #: always-on counters: ``"<level>.<hit|miss|bypass>"``,
        #: ``"invalidate.<reason>"``, ``"evictions"``, ``"admit.skipped"``.
        self.counters: dict[str, int] = {}
        database.catalog.add_listener(self._on_mutation)

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _probe(self, level: str, result: str) -> None:
        self._count(f"{level}.{result}")
        obs.cache_event(level, result)

    def _deps_of(self, relations: Iterable[Relation]) -> tuple:
        seen: dict[str, Relation] = {}
        for relation in relations:
            seen[relation.name.lower()] = relation
        return tuple((name, relation, relation.version)
                     for name, relation in seen.items())

    def _deps_valid(self, deps: tuple) -> bool:
        catalog = self.database.catalog
        for name, relation, version in deps:
            if name not in catalog:
                return False
            current = catalog.get(name)
            if current is not relation or current.version != version:
                return False
        return True

    def _in_transaction(self) -> bool:
        storage = self.database.storage
        return storage is not None and storage.in_transaction()

    def _set_bytes_gauge(self) -> None:
        obs.gauge("query_cache_bytes",
                  "bytes retained by the result/ask cache").set(
                      self.bytes_used)

    # -- plan cache --------------------------------------------------------

    def plan_for(self, statement, rules=None, result_name: str = "result",
                 ) -> tuple[Any, str]:
        """Plan *statement* through the plan cache.

        Returns ``(planned, status)`` with status one of ``hit`` /
        ``miss`` / ``bypass`` (EXPLAIN renders it).  A cached plan is
        reused only while every relation it was planned against is the
        same object at the same mutation version -- otherwise the
        statistics it embedded are stale and the statement is re-planned.
        """
        from repro.plan.planner import plan_select
        if not self.enabled:
            self._probe("plan", "bypass")
            return plan_select(self.database, statement, rules=rules,
                               result_name=result_name), "bypass"
        rules_version = 0 if rules is None else rules.version
        key = (statement.render(), result_name, rules_version)
        stats_version = self.database.catalog.stats_version()
        entry = self._plans.get(key)
        if entry is not None:
            if (entry.stats_version == stats_version
                    or self._deps_valid(entry.deps)):
                entry.stats_version = stats_version
                self._plans.move_to_end(key)
                self._probe("plan", "hit")
                return entry.plan, "hit"
            del self._plans[key]
            self._invalidated("plan", "stale")
        planned = plan_select(self.database, statement, rules=rules,
                              result_name=result_name)
        deps = self._deps_of(planned.scope.relations.values())
        self._plans[key] = _PlanEntry(planned, stats_version, deps)
        while len(self._plans) > PLAN_CAPACITY:
            self._plans.popitem(last=False)
            self._count("evictions")
            obs.counter("query_cache_evictions_total",
                        "cache entries evicted for capacity").inc()
        self._probe("plan", "miss")
        return planned, "miss"

    # -- result cache ------------------------------------------------------

    def execute_select(self, statement, rules=None,
                       result_name: str = "result",
                       batch_size: int | None = None) -> Relation:
        """Execute a SELECT through the plan *and* result caches."""
        planned, _status = self.plan_for(statement, rules=rules,
                                         result_name=result_name)
        if not self.enabled:
            self._probe("result", "bypass")
            return planned.execute(batch_size)
        rules_version = 0 if rules is None else rules.version
        key = ("result", statement.render(), result_name, rules_version)
        entry = self._lookup(key, "result", rules_version, degraded=False)
        if entry is not None:
            return entry.value
        start = time.perf_counter()
        result = planned.execute(batch_size)
        elapsed = time.perf_counter() - start
        self._admit(key, result,
                    deps=self._deps_of(planned.scope.relations.values()),
                    rules_version=rules_version, degraded=False,
                    elapsed=elapsed,
                    nbytes=estimate_relation_bytes(result))
        return result

    # -- ask cache ---------------------------------------------------------

    def lookup_ask(self, ask_key: tuple, rules_version: int,
                   degraded: bool):
        """A cached :class:`QueryResult` for *ask_key*, or ``None``.

        *ask_key* is ``(normalize_sql(sql), forward, backward)``.  The
        entry must match the current rule-base version *and* the
        staleness degradation flag: a mismatch means the knowledge base
        moved (or went stale) underneath the answer, which is counted
        as a ``stale_rules`` invalidation, never served.
        """
        if not self.enabled:
            self._probe("ask", "bypass")
            return None
        entry = self._lookup(("ask",) + ask_key, "ask", rules_version,
                             degraded)
        return None if entry is None else entry.value

    def admit_ask(self, ask_key: tuple, rules_version: int, degraded: bool,
                  relations: Iterable[Relation], result,
                  elapsed: float) -> None:
        if not self.enabled:
            return
        nbytes = estimate_relation_bytes(result.extensional) + 2048
        self._admit(("ask",) + ask_key, result,
                    deps=self._deps_of(relations),
                    rules_version=rules_version, degraded=degraded,
                    elapsed=elapsed, nbytes=nbytes)

    # -- shared value-store machinery --------------------------------------

    def _lookup(self, key: tuple, level: str, rules_version: int,
                degraded: bool) -> _ValueEntry | None:
        entry = self._values.get(key)
        if entry is None:
            self._probe(level, "miss")
            return None
        if entry.private and entry.owner != self.current_owner:
            # Another session's transaction-private entry: invisible
            # here (not dropped -- it is still valid for its owner,
            # and commit will publish or rollback will discard it).
            self._probe(level, "miss")
            return None
        if entry.rules_version != rules_version or \
                entry.degraded != degraded:
            self._drop(key, reason="stale_rules")
            self._probe(level, "miss")
            return None
        if not self._deps_valid(entry.deps):
            self._drop(key, reason="stale")
            self._probe(level, "miss")
            return None
        self._values.move_to_end(key)
        self._probe(level, "hit")
        return entry

    def _admit(self, key: tuple, value, deps: tuple, rules_version: int,
               degraded: bool, elapsed: float, nbytes: int) -> None:
        if elapsed < self.floor_s or nbytes > self.byte_budget:
            self._count("admit.skipped")
            return
        existing = self._values.get(key)
        if existing is not None:
            if existing.private and existing.owner != self.current_owner:
                # Another session's transaction-private entry under the
                # same key: leave it for its owner (commit publishes or
                # rollback discards it) rather than thrash the slot.
                self._count("admit.skipped")
                return
            self._remove(key)
        private = self._in_transaction()
        entry = _ValueEntry(value, deps, rules_version, degraded, nbytes,
                            private=private,
                            owner=self.current_owner if private else None)
        self._values[key] = entry
        self.bytes_used += nbytes
        for name, _relation, _version in deps:
            self._by_dep.setdefault(name, set()).add(key)
        if entry.private:
            self._txn_keys.add(key)
        while self.bytes_used > self.byte_budget and self._values:
            oldest = next(iter(self._values))
            self._remove(oldest)
            self._count("evictions")
            obs.counter("query_cache_evictions_total",
                        "cache entries evicted for capacity").inc()
        self._set_bytes_gauge()

    def _remove(self, key: tuple) -> None:
        entry = self._values.pop(key, None)
        if entry is None:
            return
        self.bytes_used -= entry.nbytes
        for name, _relation, _version in entry.deps:
            keys = self._by_dep.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_dep[name]
        self._txn_keys.discard(key)

    def _drop(self, key: tuple, reason: str) -> None:
        if key in self._values:
            self._remove(key)
            self._invalidated(key[0], reason)
        self._set_bytes_gauge()

    def _invalidated(self, level: str, reason: str) -> None:
        self._count(f"invalidate.{reason}")
        obs.counter("query_cache_invalidations_total",
                    "cache entries invalidated by reason",
                    level=level, reason=reason).inc()

    # -- invalidation entry points ----------------------------------------

    def _on_mutation(self, relation: Relation | None) -> None:
        """Catalog listener: a registered relation changed (DML, DDL,
        rollback undo, or WAL replay).  Drop exactly the value entries
        depending on it; plans self-invalidate through their version
        checks."""
        if relation is None:
            for key in list(self._values):
                self._drop(key, reason="dml")
            return
        keys = self._by_dep.get(relation.name.lower())
        if keys:
            for key in list(keys):
                self._drop(key, reason="dml")

    def invalidate_rules(self, reason: str = "reinduction") -> int:
        """The rule base was replaced (ILS re-induction): every plan
        (semantic rewrites baked in) and every value entry (results of
        rule-optimized plans, intensional answers) dies.  Returns the
        number of entries dropped."""
        with obs.span("cache.invalidate_rules", reason=reason):
            dropped = len(self._plans)
            for _ in range(dropped):
                self._plans.popitem(last=False)
                self._invalidated("plan", reason)
            for key in list(self._values):
                self._drop(key, reason=reason)
                dropped += 1
        return dropped

    def on_commit(self) -> None:
        """Publish entries created inside the just-committed
        transaction."""
        for key in self._txn_keys:
            entry = self._values.get(key)
            if entry is not None:
                entry.private = False
                entry.owner = None
        self._txn_keys.clear()

    def on_rollback(self) -> None:
        """Discard entries created inside the rolled-back transaction:
        they were derived from state that never happened."""
        for key in list(self._txn_keys):
            self._drop(key, reason="rollback")
        self._txn_keys.clear()

    def clear(self) -> int:
        """Drop everything (the ``\\cache clear`` command)."""
        dropped = len(self._plans) + len(self._values)
        self._plans.clear()
        for key in list(self._values):
            self._remove(key)
        self._txn_keys.clear()
        self._count("invalidate.clear", dropped)
        self._set_bytes_gauge()
        return dropped

    # -- introspection -----------------------------------------------------

    def entry_counts(self) -> dict[str, int]:
        counts = {"plan": len(self._plans), "result": 0, "ask": 0}
        for key in self._values:
            counts[key[0]] += 1
        return counts

    def status(self) -> dict[str, Any]:
        """Snapshot for the shell's ``\\cache`` command."""
        return {
            "enabled": self.enabled,
            "entries": self.entry_counts(),
            "bytes_used": self.bytes_used,
            "byte_budget": self.byte_budget,
            "floor_ms": self.floor_s * 1000.0,
            "counters": dict(sorted(self.counters.items())),
        }


def query_cache(database: Database) -> QueryCache:
    """The per-database cache, created (and subscribed to the catalog)
    on first use -- the same lazy-accessor idiom as
    :func:`repro.plan.stats.statistics`."""
    cache = getattr(database, "_query_cache", None)
    if cache is None or cache.database is not database:
        cache = QueryCache(database)
        database._query_cache = cache
    return cache
