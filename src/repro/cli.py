"""Interactive shell for the intensional query processing system.

Usage::

    python -m repro.cli                 # ship database, knowledge induced
    python -m repro.cli --db dump.txt --ker schema.ker

Plain input is SQL and is answered extensionally *and* intensionally.
``EXPLAIN SELECT ...`` prints the cost-based query plan (estimated vs.
actual cardinalities, index choices, semantic rewrites) instead of the
answer; ``EXPLAIN ANALYZE SELECT ...`` adds the measured per-node wall
times.  Backslash commands inspect the system:

=================  ====================================================
``\\rules``         print the knowledge base (isa style)
``\\schema``        print the KER schema
``\\hierarchy T``   print the type hierarchy rooted at T
``\\tables``        list relations with row counts
``\\show T``        print relation T
``\\explain <sql>`` run a query and print the derivation trace
``\\lint``          run the KER schema linter against the data
``\\quel <stmt>``   run a QUEL statement
``\\cache``         query-cache status (``clear`` drops every entry,
                   ``on``/``off`` toggle caching for this session)
``\\obs on|off``    enable/disable observability (tracing + metrics)
``\\parallel [N]``  show or set the parallel worker count for this
                   session (``off`` plans serially, ``default``
                   restores the ``REPRO_PARALLEL``/core-count default)
``\\metrics``       dump recorded metrics (``prom`` for Prometheus
                   text format, ``reset`` to clear)
``\\trace [N]``     show the last N tracing spans (``clear``, or
                   ``export PATH`` for a JSONL dump)
``\\slowlog [ms]``  show the slow-query log / set its threshold
``\\begin``         open an explicit transaction (needs ``--data-dir``)
``\\commit``        commit it durably; ``\\rollback`` undoes it
``\\connect H:P``   drive a remote repro-server: SQL/ask/DML and
                   transactions go over the wire (with retries, an
                   idempotency token per DML and a circuit breaker)
                   until ``\\disconnect``; bare ``\\connect`` while
                   connected prints client+server resilience status
``\\checkpoint``    snapshot the database and truncate the WAL
``\\wal [N]``       storage status and the last N WAL records
``\\recover``       reload from the data directory (snapshot + WAL)
``\\refresh``       re-induce the rule base and store it atomically
``\\help``          this table
``\\quit``          leave
=================  ====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from repro.errors import ReproError
from repro.induction import InductionConfig
from repro.ker import parse_ker
from repro.ker.diagram import render_hierarchy, render_schema
from repro.quel import QuelSession
from repro.query import IntensionalQueryProcessor
from repro.relational.relation import Relation
from repro.relational.textio import load_database
from repro.testbed import ship_database, ship_ker_schema


class Shell:
    """The command interpreter; I/O-injectable for testing."""

    #: backslash commands forwarded over the wire while ``\connect``ed
    #: (transaction control plus the server's admin surface); anything
    #: else keeps acting on the local in-process system.
    REMOTE_COMMANDS = frozenset({
        "begin", "commit", "rollback", "cache", "hierarchy", "lint",
        "locks", "metrics", "obs", "rules", "schema", "sessions",
        "show", "slowlog", "status", "tables", "trace", "wal",
    })

    def __init__(self, system: IntensionalQueryProcessor,
                 out: TextIO | None = None):
        self.system = system
        self.out = out or sys.stdout
        self.quel = QuelSession(system.database)
        #: a repro.server client while ``\connect``ed, else None.
        self.remote = None

    def write(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the shell should
        exit."""
        line = line.strip()
        if not line:
            return True
        try:
            if line.startswith("\\"):
                return self._command(line)
            if self.remote is not None:
                return self._remote_statement(line)
            first_word = line.split(None, 1)[0].lower()
            if first_word in ("insert", "delete", "update"):
                from repro.sql import execute_statement
                count = execute_statement(self.system.database, line)
                self.write(f"{count} rows affected")
                return True
            if first_word == "explain":
                from repro.sql import execute_statement
                self.write(execute_statement(self.system.database, line,
                                             rules=self.system.rules))
                return True
            result = self.system.ask(line)
            self.write(result.render())
        except ReproError as error:
            self.write(f"error: {error}")
            hint = getattr(error, "hint", None)
            if hint:
                self.write(f"hint: {hint}")
        return True

    def _command(self, line: str) -> bool:
        command, _sep, argument = line[1:].partition(" ")
        command = command.lower()
        argument = argument.strip()
        if command in ("quit", "q", "exit"):
            self._disconnect(silent=True)
            return False
        if command == "connect":
            return self._connect_command(argument)
        if command == "disconnect":
            self._disconnect()
            return True
        if self.remote is not None and command in self.REMOTE_COMMANDS:
            return self._remote_command(command, argument)
        if command == "help":
            self.write(__doc__.split("=" * 17, 1)[-1]
                       if "=" in __doc__ else __doc__)
            return True
        if command == "rules":
            if len(self.system.rules):
                self.write(self.system.rules.render(isa_style=True))
            else:
                self.write("(no rules -- no KER schema was supplied)")
            return True
        if command == "schema":
            if self.system.binding is None:
                self.write("(no KER schema loaded)")
            else:
                self.write(render_schema(self.system.binding.schema))
            return True
        if command == "hierarchy":
            if self.system.binding is None:
                self.write("(no KER schema loaded)")
            elif not argument:
                self.write("usage: \\hierarchy TYPE")
            else:
                self.write(render_hierarchy(
                    self.system.binding.schema, argument.upper()))
            return True
        if command == "tables":
            for relation in self.system.database.catalog:
                self.write(f"{relation.name}: {len(relation)} rows")
            return True
        if command == "show":
            if not argument:
                self.write("usage: \\show RELATION")
            else:
                self.write(
                    self.system.database.relation(argument).render())
            return True
        if command == "lint":
            if self.system.binding is None:
                self.write("(no KER schema loaded)")
                return True
            from repro.ker import analyze_binding
            findings = analyze_binding(self.system.binding)
            if not findings:
                self.write("schema and data are clean")
            for finding in findings:
                self.write(finding.render())
            return True
        if command == "explain":
            if not argument:
                self.write("usage: \\explain SELECT ...")
                return True
            from repro.inference import explain_inference
            result = self.system.ask(argument)
            self.write(explain_inference(result.inference))
            return True
        if command == "quel":
            if not argument:
                self.write("usage: \\quel <statement>")
                return True
            result = self.quel.execute(argument)
            if isinstance(result, Relation):
                self.write(result.render())
            elif result is not None:
                self.write(f"{result} rows affected")
            else:
                self.write("ok")
            return True
        if command == "cache":
            return self._cache_command(argument)
        if command == "obs":
            return self._obs_command(argument)
        if command == "parallel":
            return self._parallel_command(argument)
        if command == "metrics":
            return self._metrics_command(argument)
        if command == "trace":
            return self._trace_command(argument)
        if command == "slowlog":
            return self._slowlog_command(argument)
        if command == "begin":
            self.system.begin()
            self.write("transaction opened")
            return True
        if command == "commit":
            self.system.commit()
            self.write("committed")
            return True
        if command == "rollback":
            self.system.rollback()
            self.write("rolled back")
            return True
        if command == "checkpoint":
            lsn = self.system.checkpoint()
            self.write(f"checkpoint complete (WAL truncated at lsn {lsn})")
            return True
        if command == "wal":
            return self._wal_command(argument)
        if command == "recover":
            return self._recover_command()
        if command == "refresh":
            rules = self.system.refresh_rules()
            self.write(f"rule base refreshed: {len(rules)} rules stored")
            return True
        self.write(f"unknown command \\{command} (try \\help)")
        return True

    # -- remote (\connect) commands ------------------------------------------

    def _connect_command(self, argument: str) -> bool:
        from repro.server.client import connect
        from repro.server.resilience import CircuitBreaker, RetryPolicy
        if not argument:
            if self.remote is None:
                self.write("usage: \\connect HOST:PORT")
                return True
            # Bare \connect while connected: the resilience dashboard.
            status = self.remote.resilience_status()
            self.write(f"connected to {self.remote.host}:"
                       f"{self.remote.port} "
                       f"(session {self.remote.session})")
            self.write(
                f"client: {status['requests']} requests, "
                f"{status['retries']} retries, "
                f"{status['reconnects']} reconnects, "
                f"{status['deduped']} deduped DML"
                + (f", breaker {status['breaker']['state']}"
                   if "breaker" in status else ""))
            self.write(self.remote.admin("status"))
            return True
        if self.remote is not None:
            self._disconnect()
        self.remote = connect(argument, retry=RetryPolicy(),
                              breaker=CircuitBreaker())
        self.write(f"connected to {argument} "
                   f"(session {self.remote.session}); statements now "
                   "run remotely with retries -- \\connect for status, "
                   "\\disconnect to go back local")
        return True

    def _disconnect(self, silent: bool = False) -> None:
        remote, self.remote = self.remote, None
        if remote is None:
            if not silent:
                self.write("(not connected)")
            return
        remote.close()
        if not silent:
            self.write("disconnected; statements run on the local "
                       "in-process system again")

    def _remote_statement(self, line: str) -> bool:
        first_word = line.split(None, 1)[0].lower()
        if first_word == "select":
            self.write(self.remote.ask(line).render())
            return True
        result = self.remote.sql(line)
        if isinstance(result, Relation):
            self.write(result.render())
        elif isinstance(result, int):
            self.write(f"{result} rows affected")
        else:
            self.write(str(result))
        return True

    def _remote_command(self, command: str, argument: str) -> bool:
        if command == "begin":
            self.remote.begin()
            self.write("transaction opened (remote)")
        elif command == "commit":
            self.remote.commit()
            self.write("committed (remote)")
        elif command == "rollback":
            self.remote.rollback()
            self.write("rolled back (remote)")
        else:
            text = self.remote.admin(
                f"{command} {argument}".strip())
            self.write(text)
        return True

    # -- durability commands -------------------------------------------------

    def _wal_command(self, argument: str) -> bool:
        storage = self.system.storage
        if storage is None:
            self.write("(no durable storage attached -- start with "
                       "--data-dir DIR)")
            return True
        status = storage.status()
        self.write(f"data directory: {status['data_dir']}")
        self.write(f"fsync policy:   {status['fsync']}")
        self.write(f"last LSN:       {status['last_lsn']}")
        self.write(f"snapshot:       "
                   + ("present" if status["snapshot"] else "none"))
        self.write(f"transaction:    "
                   + ("open" if status["in_transaction"] else "none"))
        if status["has_rules"]:
            self.write("rule base:      "
                       + ("STALE (run \\refresh)" if status["rules_stale"]
                          else "fresh"))
        count = 10
        if argument:
            try:
                count = int(argument)
            except ValueError:
                self.write("usage: \\wal [N]")
                return True
        from repro.storage import read_records
        records, torn = read_records(storage.wal.path)
        for record in records[-count:]:
            parts = [f"lsn={record['lsn']}", record["type"]]
            if "tx" in record:
                parts.append(f"tx={record['tx']}")
            if "rel" in record:
                parts.append(f"rel={record['rel']} op={record['op']}")
            elif "name" in record:
                parts.append(f"{record.get('op', '')} {record['name']}")
            self.write("  " + " ".join(parts))
        if torn:
            self.write("  (torn tail follows -- dropped on next append)")
        return True

    def _recover_command(self) -> bool:
        storage = self.system.storage
        if storage is None:
            self.write("(no durable storage attached -- start with "
                       "--data-dir DIR)")
            return True
        data_dir = storage.data_dir
        fsync = storage.wal.fsync
        storage.detach()
        ker_schema = (self.system.binding.schema
                      if self.system.binding is not None else None)
        self.system, report = IntensionalQueryProcessor.recover(
            data_dir, fsync=fsync, ker_schema=ker_schema)
        self.quel = QuelSession(self.system.database)
        self.write(report.render())
        return True

    # -- cache commands -------------------------------------------------------

    def _cache_command(self, argument: str) -> bool:
        from repro.cache import query_cache
        cache = query_cache(self.system.database)
        if argument == "clear":
            dropped = cache.clear()
            self.write(f"cache cleared ({dropped} entries dropped)")
            return True
        if argument in ("on", "off"):
            cache.enabled = argument == "on"
            self.write(f"query cache {'enabled' if cache.enabled else 'disabled'}")
            return True
        if argument not in ("", "status"):
            self.write("usage: \\cache [status|clear|on|off]")
            return True
        status = cache.status()
        entries = status["entries"]
        self.write("query cache: "
                   + ("enabled" if status["enabled"] else "disabled"))
        self.write(f"  entries:   {entries['plan']} plan, "
                   f"{entries['result']} result, {entries['ask']} ask")
        self.write(f"  bytes:     {status['bytes_used']} / "
                   f"{status['byte_budget']}")
        self.write(f"  floor:     {status['floor_ms']:g}ms admission floor")
        counters = status["counters"]
        for level in ("plan", "result", "ask"):
            hits = counters.get(f"{level}.hit", 0)
            misses = counters.get(f"{level}.miss", 0)
            if hits or misses:
                self.write(f"  {level + ':':<10} {hits} hits, "
                           f"{misses} misses")
        invalidations = {name.split(".", 1)[1]: count
                         for name, count in counters.items()
                         if name.startswith("invalidate.")}
        if invalidations:
            self.write("  invalidations: " + " ".join(
                f"{reason}={count}"
                for reason, count in sorted(invalidations.items())))
        if counters.get("evictions"):
            self.write(f"  evictions: {counters['evictions']}")
        return True

    def _parallel_command(self, argument: str) -> bool:
        from repro.plan import parallel
        argument = argument.strip().lower()
        if argument in ("", "status"):
            count = parallel.workers()
            source = ("session override" if parallel.FORCED is not None
                      else "environment/default")
            self.write(f"parallel workers: {count} ({source}; "
                       + ("serial planning)" if count <= 1
                          else "exchange operators may engage)"))
            return True
        if argument == "default":
            parallel.set_workers(None)
            self.write(f"parallel workers restored to default "
                       f"({parallel.workers()})")
            return True
        if argument in ("off", "0", "1"):
            parallel.set_workers(1)
            self.write("parallel planning off (serial plans)")
            return True
        try:
            count = int(argument)
        except ValueError:
            count = 0
        if count <= 0:
            self.write("usage: \\parallel [status|N|off|default]")
            return True
        parallel.set_workers(count)
        self.write(f"parallel workers set to {count}")
        return True

    # -- observability commands ---------------------------------------------

    def _obs_command(self, argument: str) -> bool:
        from repro import obs
        if argument == "on":
            obs.enable()
            self.write("observability enabled")
        elif argument == "off":
            obs.disable()
            self.write("observability disabled")
        elif argument in ("", "status"):
            state = "enabled" if obs.enabled() else "disabled"
            self.write(f"observability is {state} "
                       f"({len(obs.tracer())} spans retained, "
                       f"{len(obs.slow_queries())} slow queries)")
        else:
            self.write("usage: \\obs [on|off|status]")
        return True

    def _metrics_command(self, argument: str) -> bool:
        from repro import obs
        if argument == "prom":
            self.write(obs.metrics().render_prometheus())
        elif argument == "reset":
            obs.metrics().reset()
            self.write("metrics cleared")
        elif not argument:
            self.write(obs.metrics().render())
        else:
            self.write("usage: \\metrics [prom|reset]")
        return True

    def _trace_command(self, argument: str) -> bool:
        from repro import obs
        if argument == "clear":
            obs.tracer().clear()
            self.write("trace buffer cleared")
            return True
        if argument.startswith("export"):
            _word, _sep, path = argument.partition(" ")
            path = path.strip()
            if not path:
                self.write("usage: \\trace export PATH")
                return True
            count = obs.tracer().export_jsonl(path)
            self.write(f"{count} spans written to {path}")
            return True
        count = 20
        if argument:
            try:
                count = int(argument)
            except ValueError:
                self.write("usage: \\trace [N|clear|export PATH]")
                return True
        spans = obs.tracer().tail(count)
        if not spans:
            self.write("(no spans recorded -- \\obs on to start tracing)")
        for span in spans:
            self.write(span.render())
        return True

    def _slowlog_command(self, argument: str) -> bool:
        from repro import obs
        log = obs.slow_queries()
        if argument == "clear":
            log.clear()
            self.write("slow-query log cleared")
            return True
        if argument:
            try:
                threshold_ms = float(argument)
            except ValueError:
                self.write("usage: \\slowlog [THRESHOLD_MS|clear]")
                return True
            log.set_threshold(threshold_ms / 1000.0)
            self.write(f"slow-query threshold set to {threshold_ms:g}ms")
            return True
        self.write(log.render())
        return True

    def repl(self, stream: TextIO | None = None) -> None:
        """Read-eval-print over *stream* (stdin by default)."""
        stream = stream or sys.stdin
        self.write("intensional query shell -- \\help for commands")
        while True:
            self.out.write("iqp> ")
            self.out.flush()
            line = stream.readline()
            if not line:
                break
            if not self.handle(line):
                break


def build_system(db_path: str | None = None,
                 ker_path: str | None = None,
                 n_c: float = 3,
                 data_dir: str | None = None,
                 fsync: str = "commit",
                 cache_bytes: int | None = None,
                 out: TextIO | None = None) -> IntensionalQueryProcessor:
    """Assemble the system for the CLI: the ship test bed by default,
    or a text-dumped database plus optional KER DDL file.

    With *data_dir*, the system is durable: an existing snapshot/WAL in
    the directory is recovered from (the ``--db`` bootstrap is ignored
    then); a fresh directory is initialized with a baseline checkpoint
    of the bootstrap database.

    *cache_bytes* overrides the query cache's result-store budget
    (``--cache-bytes``; the ``REPRO_CACHE_BYTES`` env var is the
    non-CLI spelling).
    """
    def _configure_cache(system: IntensionalQueryProcessor
                         ) -> IntensionalQueryProcessor:
        if cache_bytes is not None:
            from repro.cache import query_cache
            query_cache(system.database).byte_budget = max(cache_bytes, 0)
        return system

    schema = None
    if ker_path is not None:
        with open(ker_path) as handle:
            schema = parse_ker(handle.read())
    elif db_path is None:
        # Default ship test bed: its KER schema is built in, and a
        # recovery without it would silently lose the binding (and with
        # it every subtype-style intensional answer).
        schema = ship_ker_schema()
    if data_dir is not None:
        from repro.storage import SNAPSHOT_FILE, snapshot_exists
        from repro.storage.engine import WAL_FILE
        import os
        if (snapshot_exists(data_dir)
                or os.path.exists(os.path.join(data_dir, WAL_FILE))):
            system, report = IntensionalQueryProcessor.recover(
                data_dir, fsync=fsync, ker_schema=schema)
            if out is not None:
                out.write(report.render() + "\n")
            return _configure_cache(system)
    if db_path is None:
        system = IntensionalQueryProcessor.from_database(
            ship_database(), ker_schema=ship_ker_schema(),
            config=InductionConfig(n_c=n_c),
            relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])
    else:
        with open(db_path) as handle:
            database = load_database(handle.readlines())
        system = IntensionalQueryProcessor.from_database(
            database, ker_schema=schema, config=InductionConfig(n_c=n_c))
    if data_dir is not None:
        storage = system.attach_storage(data_dir, fsync=fsync)
        if len(system.rules):
            # The bootstrap induction predates attachment; store its
            # rule relations and sync marker so the baseline snapshot
            # starts with a fresh (not stale) knowledge base.
            from repro.rules.rule_relations import encode_rule_relations
            with storage.transaction():
                encode_rule_relations(system.rules).register_into(
                    system.database)
                storage.mark_rules_current()
        storage.checkpoint()
    return _configure_cache(system)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Intensional query shell (Chu & Lee reproduction)")
    parser.add_argument("--db", help="database dump (repro.relational."
                                     "textio format); default: ship DB")
    parser.add_argument("--ker", help="KER DDL file for --db")
    parser.add_argument("--nc", type=float, default=3,
                        help="induction support threshold N_c")
    parser.add_argument("--data-dir", help="durable storage directory "
                        "(WAL + snapshots); recovered from if non-empty")
    parser.add_argument("--fsync", default="commit",
                        choices=["always", "commit", "never"],
                        help="WAL fsync policy (default: commit)")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        help="query-cache result-store budget in bytes "
                             "(default: 32 MiB; REPRO_CACHE=off disables "
                             "caching entirely)")
    arguments = parser.parse_args(argv)
    shell = Shell(build_system(arguments.db, arguments.ker,
                               n_c=arguments.nc,
                               data_dir=arguments.data_dir,
                               fsync=arguments.fsync,
                               cache_bytes=arguments.cache_bytes,
                               out=sys.stdout))
    shell.repl()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
