"""The intelligent (extended) data dictionary.

Section 5.3: "a knowledge-based data dictionary which includes database
schema and semantic knowledge represented in KER.  The knowledge
representation combines both frame-based and rule-based knowledge
representation."  Here:

* :mod:`repro.dictionary.frames` -- each object type as a frame; the
  hierarchy as a hierarchy of frames with slot inheritance;
* :mod:`repro.dictionary.knowledge_base` -- the dictionary object owning
  the frame system and the rule base, with save/load through rule
  relations so knowledge relocates with the database.
"""

from repro.dictionary.frames import Frame, FrameSystem
from repro.dictionary.knowledge_base import IntelligentDataDictionary

__all__ = ["Frame", "FrameSystem", "IntelligentDataDictionary"]
