"""Frame-based representation of the database schema.

"Each object type is represented as a frame and the object hierarchy is
represented as a hierarchy of frames."  A frame's slots are its
attributes (with resolved data types and any declared value ranges);
slot lookup follows the hierarchy upward, implementing property
inheritance.
"""

from __future__ import annotations

from typing import Any, Iterator, NamedTuple

from repro.errors import KerError
from repro.ker.model import KerSchema
from repro.relational.datatypes import DataType
from repro.rules.clause import Clause, Interval


class Slot(NamedTuple):
    """One frame slot (attribute facet set)."""

    name: str
    datatype: DataType | None
    domain_name: str | None
    is_key: bool
    value_range: Interval | None


class Frame:
    """One object type's frame."""

    def __init__(self, name: str, parent: "Frame | None" = None,
                 membership: tuple[Clause, ...] = ()):
        self.name = name
        self.parent = parent
        self.membership = membership
        self._slots: dict[str, Slot] = {}

    def add_slot(self, slot: Slot) -> None:
        self._slots[slot.name.lower()] = slot

    def own_slots(self) -> list[Slot]:
        return list(self._slots.values())

    def slot(self, name: str) -> Slot | None:
        """Slot lookup with inheritance (own slots shadow ancestors)."""
        own = self._slots.get(name.lower())
        if own is not None:
            return own
        if self.parent is not None:
            return self.parent.slot(name)
        return None

    def slots(self) -> list[Slot]:
        """All slots visible on this frame (inherited included)."""
        out: dict[str, Slot] = {}
        if self.parent is not None:
            for slot in self.parent.slots():
                out[slot.name.lower()] = slot
        out.update(self._slots)
        return list(out.values())

    def ancestors(self) -> list["Frame"]:
        out = []
        current = self.parent
        while current is not None:
            out.append(current)
            current = current.parent
        return out

    def isa(self, name: str) -> bool:
        if self.name.lower() == name.lower():
            return True
        return any(frame.name.lower() == name.lower()
                   for frame in self.ancestors())

    def __repr__(self) -> str:
        return f"<Frame {self.name}, {len(self._slots)} own slots>"


class FrameSystem:
    """All frames of a schema, built from a :class:`KerSchema`."""

    def __init__(self) -> None:
        self._frames: dict[str, Frame] = {}

    @classmethod
    def from_ker(cls, schema: KerSchema) -> "FrameSystem":
        system = cls()
        # Create frames top-down so parents exist before children.
        pending = list(schema.object_types.values())
        created: set[str] = set()
        while pending:
            progressed = False
            for object_type in list(pending):
                parent_name = schema.parent_of(object_type.name)
                if parent_name is not None and (
                        parent_name.lower() not in created):
                    continue
                parent = (system.frame(parent_name)
                          if parent_name is not None else None)
                frame = Frame(object_type.name, parent=parent,
                              membership=schema.membership_clauses(
                                  object_type.name))
                for attribute in object_type.attributes:
                    datatype = None
                    domain_name = attribute.domain_name
                    try:
                        datatype = schema.resolve_datatype(attribute.domain)
                    except KerError:
                        pass
                    value_range = None
                    if domain_name is not None:
                        value_range = schema.domain_interval(domain_name)
                    for constraint in object_type.range_constraints:
                        if (constraint.attribute.lower()
                                == attribute.name.lower()
                                and constraint.interval is not None):
                            value_range = constraint.interval
                    frame.add_slot(Slot(attribute.name, datatype,
                                        domain_name, attribute.is_key,
                                        value_range))
                system._frames[frame.name.lower()] = frame
                created.add(frame.name.lower())
                pending.remove(object_type)
                progressed = True
            if not progressed:
                raise KerError("frame hierarchy contains a cycle")
        return system

    def frame(self, name: str) -> Frame:
        try:
            return self._frames[name.lower()]
        except KeyError:
            raise KerError(f"no frame named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._frames

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames.values())

    def __len__(self) -> int:
        return len(self._frames)

    def classify_value(self, root: str, attribute: str,
                       value: Any) -> str | None:
        """Most specific subtype of *root* whose membership clause on
        *attribute* accepts *value* (frame-level has-instance test)."""
        best: str | None = None
        frontier = [self.frame(root)]
        while frontier:
            frame = frontier.pop(0)
            for child in self._frames.values():
                if child.parent is not frame:
                    continue
                for clause in child.membership:
                    if (clause.attribute.attribute.lower()
                            == attribute.lower()
                            and clause.satisfied_by(value)):
                        best = child.name
                        frontier.append(child)
        return best
