"""The intelligent data dictionary: frames + rule base + relocation.

"When the database is used in a location, the associated schema and
rules are loaded into the system.  The rule relations are then converted
into the KER representation and stored in the intelligent data
dictionary."  The dictionary owns:

* the frame system (schema knowledge),
* the rule base (induced + declared rules),

and supports the relocation round trip: :meth:`store_into` writes the
rule relations into a database; :meth:`load_from` reads them back out at
the new location.
"""

from __future__ import annotations

from repro.dictionary.frames import FrameSystem
from repro.ker.binding import SchemaBinding
from repro.ker.model import KerSchema
from repro.relational.database import Database
from repro.rules.rule_relations import (
    RuleRelationBundle, decode_rule_relations, encode_rule_relations,
    RULE_RELATION_NAME,
)
from repro.rules.ruleset import RuleSet


class IntelligentDataDictionary:
    """Schema knowledge (frames) plus semantic knowledge (rules)."""

    def __init__(self, schema: KerSchema, rules: RuleSet):
        self.schema = schema
        self.frames = FrameSystem.from_ker(schema)
        self.rules = rules

    @classmethod
    def build(cls, binding: SchemaBinding, induced: RuleSet,
              include_schema_rules: bool = True
              ) -> "IntelligentDataDictionary":
        """Assemble the dictionary from a binding and induced rules."""
        rules = induced
        if include_schema_rules:
            rules = induced.merged_with(binding.schema_rules())
        return cls(binding.schema, rules)

    # -- relocation ---------------------------------------------------------

    def store_into(self, database: Database) -> RuleRelationBundle:
        """Write the rule base into *database* as rule relations."""
        bundle = encode_rule_relations(self.rules)
        bundle.register_into(database)
        return bundle

    @classmethod
    def load_from(cls, database: Database, schema: KerSchema
                  ) -> "IntelligentDataDictionary":
        """Rebuild the dictionary at a new location from the rule
        relations travelling with *database*."""
        bundle = RuleRelationBundle.from_database(database)
        return cls(schema, decode_rule_relations(bundle))

    @staticmethod
    def has_knowledge(database: Database) -> bool:
        return RULE_RELATION_NAME in database

    # -- reporting ---------------------------------------------------------

    def render(self) -> str:
        lines = [f"Intelligent data dictionary: {len(self.frames)} frames, "
                 f"{len(self.rules)} rules", ""]
        for frame in self.frames:
            ancestry = " isa ".join(
                [frame.name] + [a.name for a in frame.ancestors()])
            lines.append(f"frame {ancestry}")
            for slot in frame.own_slots():
                rendered_type = (slot.datatype.render()
                                 if slot.datatype else slot.domain_name)
                marker = " (key)" if slot.is_key else ""
                lines.append(f"  {slot.name}: {rendered_type}{marker}")
        lines.append("")
        lines.append(self.rules.render(isa_style=True))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<IntelligentDataDictionary {len(self.frames)} frames, "
                f"{len(self.rules)} rules>")
