"""Exception hierarchy for the whole package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; parsers attach source positions where available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or used inconsistently."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared column data type."""


class CatalogError(ReproError):
    """A catalog lookup failed or a name collision occurred."""


class ExpressionError(ReproError):
    """An expression references unknown columns or mixes types illegally."""


class ParseError(ReproError):
    """A query or DDL text could not be parsed.

    Attributes
    ----------
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class QuelError(ReproError):
    """A QUEL statement failed at execution time."""


class SqlError(ReproError):
    """A SQL statement failed at execution time."""


class KerError(ReproError):
    """A KER model construct is inconsistent (bad hierarchy, domain, ...)."""


class RuleError(ReproError):
    """A rule or clause is malformed."""


class InductionError(ReproError):
    """The inductive learning subsystem was given unusable input."""


class InferenceError(ReproError):
    """The inference processor could not interpret a query or fact."""


class StorageError(ReproError):
    """A durable-storage operation failed (WAL, snapshot, transaction).

    Storage errors carry an optional ``hint`` -- one actionable sentence
    the CLI prints under the message so an operator knows what to do
    next instead of reading a traceback.
    """

    #: default hint; subclasses and call sites override per failure.
    hint: str | None = None

    def __init__(self, message: str, hint: str | None = None):
        super().__init__(message)
        if hint is not None:
            self.hint = hint


class CorruptWalRecord(StorageError):
    """A write-ahead-log record failed its CRC or structural check
    somewhere other than the torn tail (a torn tail is normal after a
    crash; corruption *before* intact records is not)."""

    hint = ("the WAL is damaged mid-file; restore the latest snapshot "
            "with \\recover, or truncate the log at the corrupt LSN "
            "after inspecting it with \\wal")


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent state."""

    hint = ("inspect the data directory: the snapshot may predate the "
            "WAL or belong to a different database; recovery needs a "
            "matching snapshot/WAL pair")


class StaleRuleBase(StorageError):
    """The rule relations describe an older state of the data than the
    one recovered; intensional answers would be unsound."""

    hint = ("the induced rules predate the recovered data; re-run "
            "induction (system.refresh_rules()) to restore intensional "
            "answers -- extensional answers remain correct meanwhile")


class LockTimeout(StorageError):
    """A shared/exclusive relation lock could not be granted within the
    wait budget -- the deadlock-avoidance policy of the multi-client
    server (SimpleDB-style wait-timeout).  When raised inside an
    explicit transaction the transaction has already been rolled back
    (it was chosen as the victim)."""

    hint = ("another session holds a conflicting lock; retry the "
            "statement (if a transaction was open it was rolled back "
            "as the deadlock victim -- re-issue it from \\begin)")

    #: a fresh attempt of the same request may succeed (the conflicting
    #: holder finishes eventually); the client's retry loop honours this.
    retryable = True


class RetryLater(StorageError):
    """The server shed this request under overload (admission control):
    nothing was executed, nothing changed -- resubmit after the hinted
    delay."""

    hint = ("the server is at its in-flight limit; back off and retry "
            "-- nothing was executed")
    retryable = True

    def __init__(self, message: str, hint: str | None = None,
                 retry_after_s: float | None = None):
        super().__init__(message, hint)
        #: server-suggested backoff, carried in the error frame.
        self.retry_after_s = retry_after_s


class DeadlineExceeded(StorageError):
    """The request's propagated deadline expired before (or while) the
    server could finish it.  Not retryable: the client's time budget is
    already gone."""

    hint = ("the per-request deadline elapsed; raise the deadline or "
            "reduce the statement's work")
    retryable = False


class StatementTimeout(StorageError):
    """A statement exceeded the server's per-statement execution budget
    and its streaming plan was cancelled mid-flight."""

    hint = ("the statement ran past the server's statement timeout and "
            "was cancelled; narrow the query or raise "
            "--statement-timeout")
    retryable = False


class ServerError(ReproError):
    """A client/server exchange failed (connection, protocol, or an
    error frame relayed from the server).

    Carries the server-side exception class name in ``remote_type`` and
    the server's actionable ``hint`` when the failure is a relayed
    error frame; both are ``None`` for local transport failures.
    """

    def __init__(self, message: str, hint: str | None = None,
                 remote_type: str | None = None,
                 aborted: bool = False,
                 retryable: bool = False,
                 retry_after_s: float | None = None):
        super().__init__(message)
        self.hint = hint
        self.remote_type = remote_type
        #: the server rolled back the session's open transaction while
        #: failing this request (lock-timeout victim, shutdown drain).
        self.aborted = aborted
        #: the error frame's machine-readable verdict: resending the
        #: same request can succeed (and cannot double-apply).
        self.retryable = retryable
        #: server-suggested backoff before retrying, when it sent one.
        self.retry_after_s = retry_after_s


class ProtocolError(ServerError):
    """A wire frame was malformed, oversized, or torn mid-read."""


class CircuitOpen(ServerError):
    """The client's circuit breaker is open: recent requests failed at
    the transport level, so new ones fail fast instead of piling onto a
    server that is down or unreachable."""

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(
            message,
            hint="the breaker re-probes after its cooldown; wait, or "
                 "call reset() on the breaker to force an attempt")
        self.retry_after_s = retry_after_s
