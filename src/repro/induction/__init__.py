"""The Inductive Learning Subsystem (ILS).

Implements Section 5.2's model-based learning methodology:

1. schema-guided candidate selection -- which attribute pairs (X, Y) to
   induce over, derived from the KER schema's classification attributes
   (:mod:`repro.induction.candidates`);
2. the four-step pairwise rule-induction algorithm of Section 5.2.1
   (:mod:`repro.induction.pairwise`), with both a *native* execution path
   and a *QUEL* path that runs the paper's own statements;
3. value-range ("run") construction (:mod:`repro.induction.runs`);
4. support-based pruning with the ``N_c`` threshold
   (:mod:`repro.induction.pruning`);
5. the :class:`~repro.induction.ils.InductiveLearningSubsystem` facade
   tying it together against a schema binding;
6. an ID3-style decision-tree learner for multi-attribute classification
   characteristics (:mod:`repro.induction.id3`), the inductive-learning
   technique Section 3.2 sketches.
"""

from repro.induction.config import InductionConfig
from repro.induction.pairwise import (
    PairExtraction, extract_pairs_native, extract_pairs_quel,
    induce_from_pairs, induce_scheme,
)
from repro.induction.candidates import CandidateScheme, candidate_schemes
from repro.induction.ils import InductiveLearningSubsystem
from repro.induction.id3 import DecisionTree, id3_induce, tree_to_rules
from repro.induction.maintenance import (
    RefreshReport, RuleViolation, refresh_rules, verify_rules,
)

__all__ = [
    "InductionConfig",
    "PairExtraction",
    "extract_pairs_native",
    "extract_pairs_quel",
    "induce_from_pairs",
    "induce_scheme",
    "CandidateScheme",
    "candidate_schemes",
    "InductiveLearningSubsystem",
    "DecisionTree",
    "id3_induce",
    "tree_to_rules",
    "RefreshReport",
    "RuleViolation",
    "refresh_rules",
    "verify_rules",
]
