"""Schema-guided candidate selection.

"Since a database schema is created by the designer based on the
semantic characteristics of the application, such semantic
characteristics can be used as the candidates for rule induction"
(Section 3.2).  Concretely:

* **classification attributes** are the attributes appearing in subtype
  derivation specifications (``CLASS.Type``, ``SONAR.SonarType``,
  ``SUBMARINE.Class`` in the ship schema) -- they are what the hierarchy
  classifies by;
* **intra-object schemes**: within each backed object type, every other
  attribute X is paired with each classification attribute Y of the same
  relation (``Id --> Class``, ``Displacement --> Type``, ...);
* **inter-object schemes**: for each relationship type (a backed type
  with two or more object-typed attributes), the key and classification
  attributes of one side are paired with the classification attributes
  of the *other* side, through the relationship join
  (``SUBMARINE.Id --> SONAR.SonarType``, ``SONAR.Sonar --> CLASS.Type``).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.ker.binding import SchemaBinding
from repro.rules.clause import AttributeRef


class CandidateScheme(NamedTuple):
    """One (X, Y) pair selected for induction."""

    x_ref: AttributeRef
    y_ref: AttributeRef
    kind: str                    #: "intra" or "inter"
    relationship: str | None     #: relationship relation (inter only)

    def render(self) -> str:
        via = f" via {self.relationship}" if self.relationship else ""
        return f"{self.x_ref.render()} --> {self.y_ref.render()}{via}"


def classification_attributes(binding: SchemaBinding) -> list[AttributeRef]:
    """Attributes referenced by subtype derivation specs, in schema
    declaration order."""
    seen: dict[tuple[str, str], AttributeRef] = {}
    for link in binding.schema.links():
        for clause in link.membership:
            seen.setdefault(clause.attribute.key, clause.attribute)
    return list(seen.values())


def foreign_key_map(binding: SchemaBinding
                    ) -> dict[AttributeRef, AttributeRef]:
    """Referencing attribute -> referenced key attribute."""
    return dict(binding.foreign_key_pairs())


def side_closure(binding: SchemaBinding, root_relation: str) -> list[str]:
    """Relations reachable from *root_relation* by following foreign
    keys (root first, breadth-first, no repeats)."""
    fk = foreign_key_map(binding)
    out = [root_relation]
    frontier = [root_relation]
    while frontier:
        relation = frontier.pop(0)
        for source, target in fk.items():
            if source.relation.lower() == relation.lower():
                if target.relation.lower() not in {
                        name.lower() for name in out}:
                    out.append(target.relation)
                    frontier.append(target.relation)
    return out


def candidate_schemes(binding: SchemaBinding,
                      relation_order: list[str] | None = None
                      ) -> list[CandidateScheme]:
    """All induction candidates for a bound schema."""
    classify = classification_attributes(binding)
    by_relation: dict[str, list[AttributeRef]] = {}
    for attribute in classify:
        by_relation.setdefault(attribute.relation.lower(), []).append(
            attribute)

    type_names = [t.name for t in binding.schema.object_types.values()
                  if binding.is_backed(t.name)]
    if relation_order:
        ordering = {name.lower(): index
                    for index, name in enumerate(relation_order)}
        type_names.sort(key=lambda name: ordering.get(name.lower(),
                                                      len(ordering)))

    fk = foreign_key_map(binding)
    schemes: list[CandidateScheme] = []

    for type_name in type_names:
        relation_name = binding.relation_name_of(type_name)
        object_type = binding.schema.object_type(type_name)
        fk_attributes = [
            a for a in object_type.attributes
            if AttributeRef(relation_name, a.name) in fk]

        if len(fk_attributes) >= 2:
            schemes.extend(_inter_schemes(
                binding, relation_name, fk_attributes, fk, by_relation))
            continue

        targets = by_relation.get(relation_name.lower(), [])
        for y_ref in targets:
            for attribute in object_type.attributes:
                if attribute.name.lower() == y_ref.attribute.lower():
                    continue
                schemes.append(CandidateScheme(
                    AttributeRef(relation_name, attribute.name), y_ref,
                    "intra", None))
    return schemes


def _inter_schemes(binding: SchemaBinding, relationship: str,
                   fk_attributes, fk, by_relation
                   ) -> list[CandidateScheme]:
    sides: list[dict] = []
    for attribute in fk_attributes:
        target = fk[AttributeRef(relationship, attribute.name)]
        closure = side_closure(binding, target.relation)
        classification = [
            ref for relation in closure
            for ref in by_relation.get(relation.lower(), [])]
        sides.append({
            "root_key": target,
            "closure": closure,
            "classification": classification,
        })

    schemes: list[CandidateScheme] = []
    for a_index, side_a in enumerate(sides):
        x_candidates: list[AttributeRef] = [side_a["root_key"]]
        for ref in side_a["classification"]:
            if ref not in x_candidates:
                x_candidates.append(ref)
        y_candidates: list[AttributeRef] = []
        for b_index, side_b in enumerate(sides):
            if b_index == a_index:
                continue
            for ref in side_b["classification"]:
                if ref not in y_candidates:
                    y_candidates.append(ref)
        for x_ref in x_candidates:
            for y_ref in y_candidates:
                schemes.append(CandidateScheme(
                    x_ref, y_ref, "inter", relationship))
    return schemes
