"""Induction configuration: the design knobs of Section 5.2.1.

``N_c`` "can be a percentage of the total number of instances of a
relation" -- both absolute and fractional thresholds are supported.
The remaining knobs are behaviours the paper fixes implicitly; they are
exposed because DESIGN.md benchmarks them as ablations:

* ``break_on_removed`` -- whether X values removed as inconsistent in
  step 2 break value ranges.  Required (True) to obtain the paper's
  R15/R16 as separate rules.
* ``support_metric`` -- ``"instances"`` counts original relation rows
  satisfying the rule (the paper's wording); ``"pairs"`` counts distinct
  (X, Y) pairs.
* ``use_quel`` -- execute steps 1-2 through the QUEL interpreter (the
  statements printed in the paper) instead of the native fast path.
  Both paths must agree; a test asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InductionError


@dataclass(frozen=True)
class InductionConfig:
    """Knobs for the rule-induction algorithm."""

    #: Minimum support N_c.  Interpreted per ``n_c_fraction``.
    n_c: float = 3
    #: When True, ``n_c`` is a fraction of the source relation size
    #: (e.g. 0.1 keeps rules satisfied by >= 10% of instances).
    n_c_fraction: bool = False
    #: Inconsistent X values break value ranges (paper behaviour).
    break_on_removed: bool = True
    #: "instances" or "pairs".
    support_metric: str = "instances"
    #: Run steps 1-2 through the QUEL interpreter.
    use_quel: bool = False

    def __post_init__(self) -> None:
        if self.support_metric not in ("instances", "pairs"):
            raise InductionError(
                f"unknown support metric {self.support_metric!r}")
        if self.n_c < 0:
            raise InductionError("N_c must be non-negative")
        if self.n_c_fraction and not 0 <= self.n_c <= 1:
            raise InductionError("fractional N_c must be in [0, 1]")

    def threshold_for(self, relation_size: int) -> float:
        """The effective minimum support for a relation of given size."""
        if self.n_c_fraction:
            return self.n_c * relation_size
        return self.n_c

    def with_n_c(self, n_c: float, fraction: bool = False
                 ) -> "InductionConfig":
        return replace(self, n_c=n_c, n_c_fraction=fraction)
