"""ID3-style decision-tree induction (Quinlan).

Section 3.2 describes the general inductive-learning loop the ILS is an
instance of: "selects the best descriptor from a set of examples based
on a statistical estimation or a theoretical information content" and
recursively partitions.  The pairwise interval algorithm of Section 5.2.1
is the paper's production variant; this module provides the classic
information-gain tree over multiple descriptors, used by the E12
benchmark to compare single-attribute interval rules against
multi-attribute tree rules on the same classification task.

Categorical attributes split per value; numeric (orderable) attributes
split on a binary threshold chosen among class-boundary midpoints.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import InductionError
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule


class DecisionTree:
    """A decision tree node.

    Leaves carry ``label`` and ``count``; internal nodes carry the split
    ``attribute`` and either ``branches`` (categorical: value -> subtree)
    or ``threshold``/``low``/``high`` (numeric binary split,
    ``value <= threshold`` goes low).
    """

    def __init__(self, label: Any = None, count: int = 0,
                 attribute: AttributeRef | None = None,
                 branches: dict[Any, "DecisionTree"] | None = None,
                 threshold: Any = None,
                 low: "DecisionTree | None" = None,
                 high: "DecisionTree | None" = None):
        self.label = label
        self.count = count
        self.attribute = attribute
        self.branches = branches
        self.threshold = threshold
        self.low = low
        self.high = high

    def is_leaf(self) -> bool:
        return self.attribute is None

    def depth(self) -> int:
        if self.is_leaf():
            return 0
        children = (list(self.branches.values()) if self.branches
                    else [self.low, self.high])
        return 1 + max(child.depth() for child in children if child)

    def leaf_count(self) -> int:
        if self.is_leaf():
            return 1
        children = (list(self.branches.values()) if self.branches
                    else [self.low, self.high])
        return sum(child.leaf_count() for child in children if child)

    def classify(self, record: Mapping[AttributeRef, Any]) -> Any:
        """Predicted label for *record* (majority label on missing
        branches)."""
        if self.is_leaf():
            return self.label
        value = record.get(self.attribute)
        if self.branches is not None:
            child = self.branches.get(value)
            if child is None:
                return self.label
            return child.classify(record)
        if value is None:
            return self.label
        child = self.low if value <= self.threshold else self.high
        return child.classify(record) if child else self.label

    def render(self, indent: str = "") -> str:
        if self.is_leaf():
            return f"{indent}-> {self.label} ({self.count})"
        lines = []
        if self.branches is not None:
            for value, child in self.branches.items():
                lines.append(f"{indent}{self.attribute.render()} = {value}:")
                lines.append(child.render(indent + "  "))
        else:
            lines.append(
                f"{indent}{self.attribute.render()} <= {self.threshold}:")
            lines.append(self.low.render(indent + "  "))
            lines.append(
                f"{indent}{self.attribute.render()} > {self.threshold}:")
            lines.append(self.high.render(indent + "  "))
        return "\n".join(lines)


def _entropy(labels: Sequence[Any]) -> float:
    total = len(labels)
    if total == 0:
        return 0.0
    counts: dict[Any, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    out = 0.0
    for count in counts.values():
        p = count / total
        out -= p * math.log2(p)
    return out


def _majority(labels: Sequence[Any]) -> Any:
    counts: dict[Any, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return max(counts.items(), key=lambda item: (item[1],))[0]


def id3_induce(records: Sequence[Mapping[AttributeRef, Any]],
               features: Sequence[AttributeRef],
               target: AttributeRef,
               min_samples: int = 1,
               max_depth: int | None = None) -> DecisionTree:
    """Induce a decision tree classifying *target* from *features*."""
    rows = [record for record in records
            if record.get(target) is not None]
    if not rows:
        raise InductionError("no labeled records to learn from")
    return _grow(rows, list(features), target, min_samples, max_depth, 0)


def _grow(rows, features, target, min_samples, max_depth, depth
          ) -> DecisionTree:
    labels = [row[target] for row in rows]
    majority = _majority(labels)
    if (len(set(labels)) == 1 or not features
            or len(rows) <= min_samples
            or (max_depth is not None and depth >= max_depth)):
        return DecisionTree(label=majority, count=len(rows))

    base = _entropy(labels)
    best_gain = 0.0
    best: tuple | None = None
    for feature in features:
        values = [row.get(feature) for row in rows]
        if all(value is None for value in values):
            continue
        if all(isinstance(value, (int, float)) or value is None
               for value in values):
            split = _best_numeric_split(rows, feature, target, base)
            if split is not None and split[0] > best_gain:
                best_gain = split[0]
                best = ("numeric", feature, split[1])
        else:
            gain = _categorical_gain(rows, feature, target, base)
            if gain > best_gain:
                best_gain = gain
                best = ("categorical", feature, None)

    if best is None or best_gain <= 1e-12:
        return DecisionTree(label=majority, count=len(rows))

    kind, feature, threshold = best
    if kind == "categorical":
        partitions: dict[Any, list] = {}
        for row in rows:
            partitions.setdefault(row.get(feature), []).append(row)
        remaining = [f for f in features if f != feature]
        branches = {
            value: _grow(subset, remaining, target, min_samples,
                         max_depth, depth + 1)
            for value, subset in partitions.items()}
        return DecisionTree(label=majority, count=len(rows),
                            attribute=feature, branches=branches)

    low_rows = [row for row in rows
                if row.get(feature) is not None
                and row[feature] <= threshold]
    high_rows = [row for row in rows
                 if row.get(feature) is not None
                 and row[feature] > threshold]
    return DecisionTree(
        label=majority, count=len(rows), attribute=feature,
        threshold=threshold,
        low=_grow(low_rows, features, target, min_samples, max_depth,
                  depth + 1),
        high=_grow(high_rows, features, target, min_samples, max_depth,
                   depth + 1))


def _categorical_gain(rows, feature, target, base: float) -> float:
    partitions: dict[Any, list] = {}
    for row in rows:
        partitions.setdefault(row.get(feature), []).append(row[target])
    weighted = sum(
        len(labels) / len(rows) * _entropy(labels)
        for labels in partitions.values())
    return base - weighted


def _best_numeric_split(rows, feature, target, base: float
                        ) -> tuple[float, Any] | None:
    pairs = sorted(
        (row[feature], row[target]) for row in rows
        if row.get(feature) is not None)
    if len(pairs) < 2:
        return None
    best: tuple[float, Any] | None = None
    values = [value for value, _label in pairs]
    for index in range(1, len(pairs)):
        # Every distinct-value boundary is a candidate.  (Restricting to
        # label-change boundaries is the textbook optimization, but it
        # misses splits next to values with *mixed* labels.)
        if values[index] == values[index - 1]:
            continue
        threshold = values[index - 1]
        low = [label for value, label in pairs if value <= threshold]
        high = [label for value, label in pairs if value > threshold]
        weighted = (len(low) / len(pairs) * _entropy(low)
                    + len(high) / len(pairs) * _entropy(high))
        gain = base - weighted
        if best is None or gain > best[0]:
            best = (gain, threshold)
    return best


def tree_to_rules(tree: DecisionTree, target: AttributeRef) -> list[Rule]:
    """Flatten a tree into path rules ``if <path clauses> then target = label``."""
    rules: list[Rule] = []

    def walk(node: DecisionTree, path: list[Clause]) -> None:
        if node.is_leaf():
            if path and node.count > 0:
                rules.append(Rule(
                    list(path), Clause(target, Interval.point(node.label)),
                    support=node.count, source="id3"))
            return
        if node.branches is not None:
            for value, child in node.branches.items():
                if value is None:
                    continue
                walk(child, path + [Clause(node.attribute,
                                           Interval.point(value))])
            return
        walk(node.low, path + [Clause(
            node.attribute, Interval.at_most(node.threshold))])
        walk(node.high, path + [Clause(
            node.attribute, Interval.at_least(node.threshold,
                                              strict=True))])

    walk(tree, [])
    return rules


def accuracy(tree: DecisionTree,
             records: Iterable[Mapping[AttributeRef, Any]],
             target: AttributeRef) -> float:
    """Fraction of records the tree classifies correctly."""
    total = 0
    correct = 0
    for record in records:
        expected = record.get(target)
        if expected is None:
            continue
        total += 1
        if tree.classify(record) == expected:
            correct += 1
    return correct / total if total else 0.0
