"""The Inductive Learning Subsystem facade.

Ties schema-guided candidate selection, pair extraction (native or
QUEL), run construction and pruning into one call::

    ils = InductiveLearningSubsystem(binding, InductionConfig(n_c=3))
    knowledge = ils.induce()          # a RuleSet

Induced consequences that realize a subtype's derivation specification
are tagged with the subtype name, so they print exactly like the paper's
rule list (``if 7250 <= Displacement <= 30000 then x isa SSBN``).
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.errors import InductionError
from repro.induction.candidates import (
    CandidateScheme, candidate_schemes, foreign_key_map,
)
from repro.induction.config import InductionConfig
from repro.induction.pairwise import (
    extract_pairs_columnar, extract_pairs_native, extract_pairs_quel,
    induce_from_pairs,
)
from repro.ker.binding import SchemaBinding
from repro.relational import columnar
from repro.relational.indexes import HashIndex
from repro.rules.clause import AttributeRef
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


class JoinExpander:
    """Expands a relationship relation into joined attribute records.

    Every row of the relationship becomes a mapping
    ``AttributeRef -> value`` covering the relationship's own attributes
    and, transitively, the attributes of every relation reachable through
    foreign keys (SUBMARINE pulls in its CLASS, the CLASS its TYPE, ...).
    """

    def __init__(self, binding: SchemaBinding):
        self.binding = binding
        self.fk = foreign_key_map(binding)
        self._indexes: dict[str, HashIndex] = {}

    def _index(self, relation_name: str, key_column: str) -> HashIndex:
        cache_key = f"{relation_name.lower()}.{key_column.lower()}"
        if cache_key not in self._indexes:
            relation = self.binding.database.relation(relation_name)
            self._indexes[cache_key] = HashIndex(relation, key_column)
        return self._indexes[cache_key]

    def expand(self, relationship: str) -> list[dict[AttributeRef, Any]]:
        relation = self.binding.database.relation(relationship)
        records: list[dict[AttributeRef, Any]] = []
        for row in relation:
            record: dict[AttributeRef, Any] = {}
            self._add_row(record, relation.name, relation.schema, row,
                          visited=set())
            records.append(record)
        return records

    def _add_row(self, record: dict, relation_name: str, schema, row,
                 visited: set) -> None:
        if relation_name.lower() in visited:
            return
        visited.add(relation_name.lower())
        for column, value in zip(schema.columns, row):
            ref = AttributeRef(relation_name, column.name)
            record.setdefault(ref, value)
            target = self.fk.get(ref)
            if target is None or value is None:
                continue
            index = self._index(target.relation, target.attribute)
            matches = index.lookup(value)
            if matches:
                target_relation = self.binding.database.relation(
                    target.relation)
                self._add_row(record, target_relation.name,
                              target_relation.schema, matches[0],
                              visited)


class InductiveLearningSubsystem:
    """Model-based inductive learning over a bound KER schema."""

    def __init__(self, binding: SchemaBinding,
                 config: InductionConfig | None = None,
                 relation_order: list[str] | None = None):
        self.binding = binding
        self.config = config or InductionConfig()
        self.relation_order = relation_order
        self._expander = JoinExpander(binding)

    # -- candidates -----------------------------------------------------

    def schemes(self) -> list[CandidateScheme]:
        return candidate_schemes(self.binding,
                                 relation_order=self.relation_order)

    # -- induction ---------------------------------------------------------

    def induce(self, include_tree_rules: bool = False) -> RuleSet:
        """Induce the full knowledge base (all candidate schemes).

        With ``include_tree_rules``, classification attributes are
        additionally learned with the ID3 tree over *all* other
        attributes of the relation, and the resulting multi-clause path
        rules (premises conjoining several attributes -- the general
        Horn form of Section 5.2.2 that the pairwise algorithm never
        produces) are added with source ``"id3"``.  Single-clause tree
        rules that duplicate pairwise rules are skipped.
        """
        with obs.span("induction.induce") as span:
            ruleset = RuleSet()
            schemes = self.schemes()
            for scheme in schemes:
                for rule in self.induce_one(scheme):
                    ruleset.add(rule)
            if include_tree_rules:
                for rule in self._induce_tree_rules(ruleset):
                    ruleset.add(rule)
            span.set(schemes=len(schemes), rules=len(ruleset))
            obs.counter("induction_rules_total",
                        "rules induced by the ILS").inc(len(ruleset))
            # Stamp the database state the rules were induced from, so
            # the planner's semantic optimizer can refuse to rewrite
            # queries with rules the data has since outgrown.
            ruleset.record_basis(self.binding.database)
            return ruleset

    def induce_and_store(self, include_tree_rules: bool = False) -> RuleSet:
        """Induce and persist the knowledge base in ONE transaction.

        The four rule relations, the induction-metadata relation (the
        N_c configuration the run used) and the ``rule_sync`` staleness
        marker commit together: after any crash the database holds
        either the complete new knowledge base or the previous one --
        never rules without their metadata, and never a sync marker for
        rules that were not fully written.

        Without attached storage this still registers everything (the
        transaction machinery is just absent).
        """
        import contextlib

        from repro.relational.datatypes import INTEGER, REAL, char
        from repro.relational.relation import Relation
        from repro.relational.schema import Column, RelationSchema
        from repro.rules.rule_relations import (
            INDUCTION_META_NAME, encode_rule_relations,
        )

        ruleset = self.induce(include_tree_rules=include_tree_rules)
        database = self.binding.database
        bundle = encode_rule_relations(ruleset)
        meta = Relation(
            RelationSchema(INDUCTION_META_NAME, [
                Column("NC", REAL), Column("NCFraction", INTEGER),
                Column("SupportMetric", char(16)),
                Column("RuleCount", INTEGER),
            ]),
            [(float(self.config.n_c),
              1 if self.config.n_c_fraction else 0,
              self.config.support_metric, len(ruleset))])
        storage = database.storage
        scope = (storage.transaction() if storage is not None
                 else contextlib.nullcontext())
        with scope:
            bundle.register_into(database)
            database.catalog.register(meta, replace=True)
            if storage is not None:
                storage.mark_rules_current()
        # The knowledge base changed wholesale: cached plans carry the
        # old rules' semantic rewrites and cached intensional answers
        # were derived from them, so the query cache flushes everything
        # (counted under reason="reinduction").
        cache = getattr(database, "_query_cache", None)
        if cache is not None:
            cache.invalidate_rules()
        return ruleset

    def _induce_tree_rules(self, existing: RuleSet) -> list[Rule]:
        from repro.induction.candidates import classification_attributes
        from repro.induction.id3 import id3_induce, tree_to_rules

        out: list[Rule] = []
        for target in classification_attributes(self.binding):
            relation = self.binding.database.relation(target.relation)
            threshold = self.config.threshold_for(len(relation))
            key_columns = {name.lower() for name in relation.schema.key}
            features = [
                AttributeRef(relation.name, column.name)
                for column in relation.schema.columns
                if column.name.lower() != target.attribute.lower()
                # Keys are identifiers, not characteristics: a tree
                # splitting on them memorizes rows instead of learning
                # classification semantics.
                and column.name.lower() not in key_columns]
            if len(features) < 2:
                continue  # single-feature trees duplicate pairwise rules
            refs = [AttributeRef(relation.name, column.name)
                    for column in relation.schema.columns]
            records = [dict(zip(refs, row)) for row in relation]
            tree = id3_induce(records, features, target)
            for rule in tree_to_rules(tree, target):
                if len(rule.lhs) < 2:
                    continue  # single-clause: pairwise territory
                if rule.support < threshold:
                    continue
                if not rule.sound_on(records):
                    # Impure leaves (identical feature vectors with
                    # conflicting labels) yield majority rules; unlike
                    # the pairwise algorithm's step 2, the tree has no
                    # inconsistency-removal, so enforce soundness here.
                    continue
                self._tag_subtype(rule)
                out.append(rule)
        return out

    def induce_one(self, scheme: CandidateScheme) -> list[Rule]:
        """Induce the rules of a single candidate scheme."""
        with obs.span("induction.scheme", kind=scheme.kind,
                      x=scheme.x_ref.render(),
                      y=scheme.y_ref.render()) as span:
            if scheme.kind == "intra":
                rules = self._induce_intra(scheme)
            elif scheme.kind == "inter":
                rules = self._induce_inter(scheme)
            else:
                raise InductionError(
                    f"unknown scheme kind {scheme.kind!r}")
            for rule in rules:
                self._tag_subtype(rule)
            span.set(rules=len(rules))
            return rules

    def _induce_intra(self, scheme: CandidateScheme) -> list[Rule]:
        database = self.binding.database
        relation = database.relation(scheme.x_ref.relation)
        if self.config.use_quel:
            extraction = extract_pairs_quel(
                database, relation.name,
                scheme.x_ref.attribute, scheme.y_ref.attribute)
        elif columnar.enabled():
            # Aggregation sweep over the column store: the interval
            # passes reduce over distinct-pair counts (dictionary codes
            # when encoded) instead of walking rows.
            extraction = extract_pairs_columnar(
                relation.column_store(),
                scheme.x_ref.attribute, scheme.y_ref.attribute)
        else:
            xs, ys = relation.columns(scheme.x_ref.attribute,
                                      scheme.y_ref.attribute)
            extraction = extract_pairs_native(zip(xs, ys))
        return induce_from_pairs(extraction, scheme.x_ref, scheme.y_ref,
                                 self.config, relation_size=len(relation))

    def _induce_inter(self, scheme: CandidateScheme) -> list[Rule]:
        records = self._expander.expand(scheme.relationship)
        pairs = [(record.get(scheme.x_ref), record.get(scheme.y_ref))
                 for record in records]
        extraction = extract_pairs_native(pairs)
        return induce_from_pairs(extraction, scheme.x_ref, scheme.y_ref,
                                 self.config, relation_size=len(records))

    # -- subtype tagging --------------------------------------------------------

    def _tag_subtype(self, rule: Rule) -> None:
        schema = self.binding.schema
        subtype = schema.subtype_for_clause(rule.rhs)
        if subtype is None and rule.rhs.is_equality():
            subtype = schema.subtype_for_interval(
                rule.rhs.attribute, rule.rhs.interval)
        if subtype is not None:
            rule.rhs_subtype = subtype
