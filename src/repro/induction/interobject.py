"""Induction of inter-attribute comparison constraints.

Complements the pairwise interval algorithm with the other inter-object
knowledge form Section 3.1 names: constraints like "the draft of the
ship must be less than the depth of the port", induced by scanning a
relationship's joined instances for attribute pairs whose order relation
is uniform.

For each candidate pair (L, R) of comparable attributes from *different*
sides of the relationship, the induced constraint is:

* ``L < R``  when every instance has ``L < R``;
* ``L <= R`` when every instance has ``L <= R`` with at least one tie;
* nothing otherwise (violations; or fewer than ``min_support``
  instances with both values present).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.induction.candidates import foreign_key_map, side_closure
from repro.induction.ils import JoinExpander
from repro.ker.binding import SchemaBinding
from repro.rules.clause import AttributeRef
from repro.rules.comparisons import ComparisonConstraint


def comparison_candidates(binding: SchemaBinding, relationship: str
                          ) -> list[tuple[AttributeRef, AttributeRef]]:
    """Cross-side attribute pairs with comparable (numeric) types."""
    relation = binding.database.relation(relationship)
    object_type = binding.schema.object_type(relationship)
    fk = foreign_key_map(binding)

    sides: list[list[AttributeRef]] = []
    for attribute in object_type.attributes:
        ref = AttributeRef(relation.name, attribute.name)
        target = fk.get(ref)
        if target is None:
            continue
        members: list[AttributeRef] = []
        for side_relation in side_closure(binding, target.relation):
            schema = binding.database.relation(side_relation).schema
            for column in schema.columns:
                if column.datatype.is_numeric():
                    members.append(AttributeRef(side_relation,
                                                column.name))
        sides.append(members)

    pairs: list[tuple[AttributeRef, AttributeRef]] = []
    for index, left_side in enumerate(sides):
        for right_side in sides[index + 1:]:
            for left in left_side:
                for right in right_side:
                    pairs.append((left, right))
    return pairs


def induce_comparison_constraints(
        binding: SchemaBinding, relationship: str,
        min_support: int = 2) -> list[ComparisonConstraint]:
    """Scan the relationship's joined instances for uniform order
    relations among the candidate pairs."""
    expander = JoinExpander(binding)
    records = expander.expand(relationship)
    constraints: list[ComparisonConstraint] = []
    for left, right in comparison_candidates(binding, relationship):
        constraint = _classify_pair(records, left, right, min_support)
        if constraint is not None:
            constraints.append(constraint)
    return constraints


def _classify_pair(records: Sequence[Mapping[AttributeRef, Any]],
                   left: AttributeRef, right: AttributeRef,
                   min_support: int) -> ComparisonConstraint | None:
    strictly_less = False
    tied = False
    support = 0
    for record in records:
        left_value = record.get(left)
        right_value = record.get(right)
        if left_value is None or right_value is None:
            continue
        support += 1
        if left_value < right_value:
            strictly_less = True
        elif left_value == right_value:
            tied = True
        else:
            return None  # violated; no uniform constraint
    if support < min_support or not strictly_less:
        # All-ties means the attributes are equal on every instance --
        # an equivalence, not an order constraint; and without any
        # strict case a `<` claim would be vacuous.
        return None
    op = "<=" if tied else "<"
    return ComparisonConstraint(left, op, right, support=support)
