"""Knowledge maintenance after database updates.

The paper induces once and stores the rules with the database; when the
EDB changes, the stored IDB can silently go stale (a new submarine whose
displacement contradicts R9 would make forward answers wrong).  This
module provides the two maintenance operations a deployment needs:

* :func:`verify_rules` -- recheck every rule against the current data
  and report the violated ones (with the offending records);
* :func:`refresh_rules` -- re-run the ILS and diff old vs new knowledge
  (added / removed / kept), so callers can update the stored rule
  relations incrementally.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.induction.candidates import foreign_key_map
from repro.induction.config import InductionConfig
from repro.induction.ils import InductiveLearningSubsystem, JoinExpander
from repro.ker.binding import SchemaBinding
from repro.rules.clause import AttributeRef
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


class RuleViolation(NamedTuple):
    """A rule contradicted by current data."""

    rule: Rule
    record: dict      #: the offending attribute record
    observed: object  #: the consequence attribute's actual value

    def render(self) -> str:
        return (f"{self.rule.render()} violated: observed "
                f"{self.rule.rhs.attribute.render()} = {self.observed!r}")


def _records_for_verification(binding: SchemaBinding) -> list[dict]:
    """Attribute records covering every rule's vocabulary: one record
    per relationship row (joined over FKs) plus one per row of each
    non-relationship relation."""
    expander = JoinExpander(binding)
    fk = foreign_key_map(binding)
    records: list[dict] = []
    for object_type in binding.schema.object_types.values():
        if not binding.is_backed(object_type.name):
            continue
        relation = binding.database.relation(object_type.name)
        fk_count = sum(
            1 for attribute in object_type.attributes
            if AttributeRef(relation.name, attribute.name) in fk)
        if fk_count >= 2:
            records.extend(expander.expand(relation.name))
            continue
        for row in relation:
            records.append({
                AttributeRef(relation.name, column.name):
                    row[relation.schema.position(column.name)]
                for column in relation.schema.columns})
    return records


def verify_rules(binding: SchemaBinding,
                 ruleset: RuleSet) -> list[RuleViolation]:
    """Every (rule, record) pair where the premise holds but the
    consequence is contradicted by a non-NULL value."""
    records = _records_for_verification(binding)
    violations: list[RuleViolation] = []
    for rule in ruleset:
        for record in records:
            if not rule.premise_satisfied_by(record):
                continue
            value = record.get(rule.rhs.attribute)
            if value is None:
                continue
            if not rule.rhs.satisfied_by(value):
                violations.append(RuleViolation(rule, record, value))
    return violations


class RefreshReport(NamedTuple):
    """Diff between stored knowledge and a fresh induction pass."""

    refreshed: RuleSet
    added: list[Rule]      #: in the fresh set only
    removed: list[Rule]    #: in the stored set only
    kept: int

    def render(self) -> str:
        lines = [f"kept {self.kept}, added {len(self.added)}, "
                 f"removed {len(self.removed)}"]
        for rule in self.added:
            lines.append(f"  + {rule.render()}")
        for rule in self.removed:
            lines.append(f"  - {rule.render()}")
        return "\n".join(lines)


def refresh_rules(binding: SchemaBinding, stored: RuleSet,
                  config: InductionConfig | None = None,
                  relation_order: list[str] | None = None) -> RefreshReport:
    """Re-induce and diff against *stored* (matching on premise and
    consequence; support changes alone count as kept)."""
    fresh = InductiveLearningSubsystem(
        binding, config, relation_order=relation_order).induce()
    stored_keys = {(rule.lhs, rule.rhs) for rule in stored}
    fresh_keys = {(rule.lhs, rule.rhs) for rule in fresh}
    added = [rule for rule in fresh
             if (rule.lhs, rule.rhs) not in stored_keys]
    removed = [rule for rule in stored
               if (rule.lhs, rule.rhs) not in fresh_keys]
    kept = len(fresh) - len(added)
    return RefreshReport(fresh, added, removed, kept)
