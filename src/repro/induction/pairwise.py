"""The rule-induction algorithm of Section 5.2.1.

Four steps, for the rule scheme X --> Y over a source of (X, Y) pairs:

1. retrieve the distinct (X, Y) pairs (``retrieve into S unique``);
2. remove pairs whose X maps to multiple Y values (the self-join into T
   followed by the delete);
3. construct one rule ``if x1 <= X <= x2 then Y = y`` per maximal value
   range (see :mod:`repro.induction.runs`);
4. prune rules with support below ``N_c``.

Steps 1-2 can execute on either of two equivalent paths:

* :func:`extract_pairs_native` -- plain Python over the relation rows;
* :func:`extract_pairs_quel` -- the literal QUEL statements the paper
  prints, run through :class:`repro.quel.QuelSession`.

Both produce a :class:`PairExtraction`; a test pins their equivalence.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, NamedTuple

from repro.errors import InductionError
from repro.induction.config import InductionConfig
from repro.induction.runs import build_runs
from repro.quel.interpreter import QuelSession
from repro.relational import columnar
from repro.relational.columnar import (
    ColumnStore, DictionaryColumn, PlainColumn,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule

#: Temporary relation names used by the QUEL execution path (INGRES-style
#: working relations; dropped after extraction).
_QUEL_S = "_ILS_S"
_QUEL_T = "_ILS_T"


class PairExtraction(NamedTuple):
    """Steps 1-2 output, ready for run construction."""

    occurring_x: tuple           #: sorted distinct non-NULL X values
    mapping: dict                #: consistent X -> Y
    removed: frozenset           #: X values removed as inconsistent
    counts: dict                 #: X -> source row count (consistent X only)
    source_size: int             #: rows considered (non-NULL X)


def extract_pairs_native(pairs: Iterable[tuple[Any, Any]]) -> PairExtraction:
    """Run steps 1-2 natively over raw (x, y) pairs.

    Rows with NULL X are unusable for range construction and are
    skipped; rows with NULL Y keep their X in the occurring set (they
    break runs) but never produce a mapping.
    """
    ys_by_x: dict[Any, set] = {}
    counts: dict[Any, int] = {}
    source_size = 0
    null_y_xs: set = set()
    for x, y in pairs:
        if x is None:
            continue
        source_size += 1
        if y is None:
            null_y_xs.add(x)
            continue
        ys_by_x.setdefault(x, set()).add(y)
        counts[x] = counts.get(x, 0) + 1

    removed = frozenset(x for x, ys in ys_by_x.items() if len(ys) > 1)
    mapping = {x: next(iter(ys)) for x, ys in ys_by_x.items()
               if len(ys) == 1}
    occurring = sorted(set(ys_by_x) | null_y_xs)
    consistent_counts = {x: n for x, n in counts.items() if x in mapping}
    return PairExtraction(tuple(occurring), mapping, removed,
                          consistent_counts, source_size)


def extract_pairs_columnar(store: ColumnStore, x_column: str,
                           y_column: str) -> PairExtraction:
    """Steps 1-2 as an aggregation sweep over a column store.

    Instead of one dict probe per row, the (X, Y) pair distribution is
    counted in bulk -- ``np.unique`` over packed dictionary/integer
    codes when numpy is in play, a C-speed ``Counter(zip(...))``
    otherwise -- and the :class:`PairExtraction` is reconstructed from
    the *distinct-pair* counts, which for the low-cardinality attributes
    rule induction targets is orders of magnitude smaller than the row
    count.  Exactly equivalent to :func:`extract_pairs_native` over the
    same rows (a hypothesis test pins this).
    """
    x_position = store.schema.position(x_column)
    y_position = store.schema.position(y_column)
    pair_counts = _pair_counts(store.columns[x_position],
                               store.columns[y_position])
    ys_by_x: dict[Any, set] = {}
    counts: dict[Any, int] = {}
    null_y_xs: set = set()
    source_size = 0
    for (x, y), occurrences in pair_counts:
        if x is None:
            continue
        source_size += occurrences
        if y is None:
            null_y_xs.add(x)
            continue
        ys_by_x.setdefault(x, set()).add(y)
        counts[x] = counts.get(x, 0) + occurrences

    removed = frozenset(x for x, ys in ys_by_x.items() if len(ys) > 1)
    mapping = {x: next(iter(ys)) for x, ys in ys_by_x.items()
               if len(ys) == 1}
    occurring = sorted(set(ys_by_x) | null_y_xs)
    consistent_counts = {x: n for x, n in counts.items() if x in mapping}
    return PairExtraction(tuple(occurring), mapping, removed,
                          consistent_counts, source_size)


def _pair_counts(x_col, y_col) -> list[tuple[tuple[Any, Any], int]]:
    """Distinct (x, y) value pairs with their occurrence counts."""
    np = columnar.numpy_module()
    if np is not None:
        counted = _np_pair_counts(np, x_col, y_col)
        if counted is not None:
            return counted
    xs = x_col.decode() if isinstance(x_col, DictionaryColumn) \
        else x_col.values
    ys = y_col.decode() if isinstance(y_col, DictionaryColumn) \
        else y_col.values
    return list(Counter(zip(xs, ys)).items())


def _np_pair_counts(np, x_col, y_col):
    """Pair counts via one ``np.unique`` over packed codes, or ``None``
    when either column has no small-integer surrogate."""
    x_view = _surrogate_codes(np, x_col)
    y_view = _surrogate_codes(np, y_col)
    if x_view is None or y_view is None:
        return None
    x_codes, x_decode = x_view
    y_codes, y_decode = y_view
    if not len(x_codes):
        return []
    span = int(y_codes.max()) + 1
    if int(x_codes.max()) >= (2 ** 62) // max(span, 1):
        return None  # packing would overflow; let Counter handle it
    packed, occurrences = np.unique(
        x_codes.astype(np.int64) * span + y_codes, return_counts=True)
    return [((x_decode(int(key) // span), y_decode(int(key) % span)),
             int(count)) for key, count in zip(packed, occurrences)]


def _surrogate_codes(np, column):
    """``(codes, decode)`` mapping the column to non-negative int codes
    (NULL included), or ``None`` when no cheap encoding exists."""
    if isinstance(column, DictionaryColumn):
        values = column.values

        def decode_dict(code: int):
            return None if code == 0 else values[code - 1]

        return column.np_codes().astype(np.int64) + 1, decode_dict
    if isinstance(column, PlainColumn) and column.datatype.name == "integer":
        array = column.array()
        if array is None:  # NULLs or non-int64 values: no surrogate
            return None
        low = int(array.min()) if len(array) else 0

        def decode_int(code: int, low: int = low) -> int:
            return code + low

        return array - low, decode_int
    return None


def extract_pairs_quel(database: Database, relation_name: str,
                       x_column: str, y_column: str) -> PairExtraction:
    """Run steps 1-2 through the QUEL interpreter, using the statements
    printed in Section 5.2.1 verbatim (modulo attribute names)."""
    session = QuelSession(database)
    session.execute(f"range of r is {relation_name}")
    session.execute(
        f"retrieve into {_QUEL_S} unique (r.{y_column}, r.{x_column}) "
        f"sort by r.{y_column}")
    session.execute(f"range of s is {_QUEL_S}")
    session.execute(
        f"retrieve into {_QUEL_T} unique (s.{y_column}, s.{x_column}) "
        f"where (r.{x_column} = s.{x_column} "
        f"and r.{y_column} != s.{y_column})")
    session.execute(f"range of t is {_QUEL_T}")
    session.execute(
        f"delete s where (s.{x_column} = t.{x_column} "
        f"and s.{y_column} = t.{y_column})")

    survivors = database.relation(_QUEL_S)
    removed_rel = database.relation(_QUEL_T)
    # NULL X cannot anchor a range; NULL Y classifies nothing.  (INGRES
    # would keep such pairs in S; the native path drops them, so drop
    # them here too.)
    mapping = {
        survivors.value(row, x_column): survivors.value(row, y_column)
        for row in survivors
        if survivors.value(row, x_column) is not None
        and survivors.value(row, y_column) is not None}
    removed = frozenset(removed_rel.value(row, x_column)
                        for row in removed_rel)

    source = database.relation(relation_name)
    counts: dict[Any, int] = {}
    occurring: set = set()
    source_size = 0
    x_position = source.schema.position(x_column)
    y_position = source.schema.position(y_column)
    for row in source:
        x = row[x_position]
        if x is None:
            continue
        source_size += 1
        occurring.add(x)
        if row[y_position] is not None and x in mapping:
            counts[x] = counts.get(x, 0) + 1

    database.drop(_QUEL_S)
    database.drop(_QUEL_T)
    return PairExtraction(tuple(sorted(occurring)), mapping, removed,
                          counts, source_size)


def induce_from_pairs(extraction: PairExtraction,
                      x_ref: AttributeRef, y_ref: AttributeRef,
                      config: InductionConfig,
                      relation_size: int | None = None) -> list[Rule]:
    """Steps 3-4: build value-range rules and prune by support."""
    runs = build_runs(extraction.occurring_x, extraction.mapping,
                      extraction.removed, extraction.counts,
                      break_on_removed=config.break_on_removed)
    threshold = config.threshold_for(
        relation_size if relation_size is not None
        else extraction.source_size)
    rules = []
    for run in runs:
        if run.support(config.support_metric) < threshold:
            continue
        rules.append(Rule(
            [Clause(x_ref, Interval.closed(run.low, run.high))],
            Clause(y_ref, Interval.point(run.y)),
            support=run.instances))
    return rules


def induce_scheme(relation: Relation, x_column: str, y_column: str,
                  config: InductionConfig | None = None,
                  x_ref: AttributeRef | None = None,
                  y_ref: AttributeRef | None = None,
                  database: Database | None = None) -> list[Rule]:
    """Induce the full rule set for one scheme X --> Y over *relation*.

    With ``config.use_quel`` the extraction runs through QUEL, which
    requires *database* (the relation must be registered in it).
    """
    config = config or InductionConfig()
    x_ref = x_ref or AttributeRef(relation.name, x_column)
    y_ref = y_ref or AttributeRef(relation.name, y_column)
    if config.use_quel:
        if database is None:
            raise InductionError(
                "the QUEL induction path needs the owning database")
        extraction = extract_pairs_quel(database, relation.name,
                                        x_column, y_column)
    elif columnar.enabled():
        extraction = extract_pairs_columnar(relation.column_store(),
                                            x_column, y_column)
    else:
        x_position = relation.schema.position(x_column)
        y_position = relation.schema.position(y_column)
        extraction = extract_pairs_native(
            (row[x_position], row[y_position]) for row in relation)
    return induce_from_pairs(extraction, x_ref, y_ref, config,
                             relation_size=len(relation))
