"""The rule-induction algorithm of Section 5.2.1.

Four steps, for the rule scheme X --> Y over a source of (X, Y) pairs:

1. retrieve the distinct (X, Y) pairs (``retrieve into S unique``);
2. remove pairs whose X maps to multiple Y values (the self-join into T
   followed by the delete);
3. construct one rule ``if x1 <= X <= x2 then Y = y`` per maximal value
   range (see :mod:`repro.induction.runs`);
4. prune rules with support below ``N_c``.

Steps 1-2 can execute on either of two equivalent paths:

* :func:`extract_pairs_native` -- plain Python over the relation rows;
* :func:`extract_pairs_quel` -- the literal QUEL statements the paper
  prints, run through :class:`repro.quel.QuelSession`.

Both produce a :class:`PairExtraction`; a test pins their equivalence.
"""

from __future__ import annotations

from typing import Any, Iterable, NamedTuple

from repro.errors import InductionError
from repro.induction.config import InductionConfig
from repro.induction.runs import build_runs
from repro.quel.interpreter import QuelSession
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule

#: Temporary relation names used by the QUEL execution path (INGRES-style
#: working relations; dropped after extraction).
_QUEL_S = "_ILS_S"
_QUEL_T = "_ILS_T"


class PairExtraction(NamedTuple):
    """Steps 1-2 output, ready for run construction."""

    occurring_x: tuple           #: sorted distinct non-NULL X values
    mapping: dict                #: consistent X -> Y
    removed: frozenset           #: X values removed as inconsistent
    counts: dict                 #: X -> source row count (consistent X only)
    source_size: int             #: rows considered (non-NULL X)


def extract_pairs_native(pairs: Iterable[tuple[Any, Any]]) -> PairExtraction:
    """Run steps 1-2 natively over raw (x, y) pairs.

    Rows with NULL X are unusable for range construction and are
    skipped; rows with NULL Y keep their X in the occurring set (they
    break runs) but never produce a mapping.
    """
    ys_by_x: dict[Any, set] = {}
    counts: dict[Any, int] = {}
    source_size = 0
    null_y_xs: set = set()
    for x, y in pairs:
        if x is None:
            continue
        source_size += 1
        if y is None:
            null_y_xs.add(x)
            continue
        ys_by_x.setdefault(x, set()).add(y)
        counts[x] = counts.get(x, 0) + 1

    removed = frozenset(x for x, ys in ys_by_x.items() if len(ys) > 1)
    mapping = {x: next(iter(ys)) for x, ys in ys_by_x.items()
               if len(ys) == 1}
    occurring = sorted(set(ys_by_x) | null_y_xs)
    consistent_counts = {x: n for x, n in counts.items() if x in mapping}
    return PairExtraction(tuple(occurring), mapping, removed,
                          consistent_counts, source_size)


def extract_pairs_quel(database: Database, relation_name: str,
                       x_column: str, y_column: str) -> PairExtraction:
    """Run steps 1-2 through the QUEL interpreter, using the statements
    printed in Section 5.2.1 verbatim (modulo attribute names)."""
    session = QuelSession(database)
    session.execute(f"range of r is {relation_name}")
    session.execute(
        f"retrieve into {_QUEL_S} unique (r.{y_column}, r.{x_column}) "
        f"sort by r.{y_column}")
    session.execute(f"range of s is {_QUEL_S}")
    session.execute(
        f"retrieve into {_QUEL_T} unique (s.{y_column}, s.{x_column}) "
        f"where (r.{x_column} = s.{x_column} "
        f"and r.{y_column} != s.{y_column})")
    session.execute(f"range of t is {_QUEL_T}")
    session.execute(
        f"delete s where (s.{x_column} = t.{x_column} "
        f"and s.{y_column} = t.{y_column})")

    survivors = database.relation(_QUEL_S)
    removed_rel = database.relation(_QUEL_T)
    # NULL X cannot anchor a range; NULL Y classifies nothing.  (INGRES
    # would keep such pairs in S; the native path drops them, so drop
    # them here too.)
    mapping = {
        survivors.value(row, x_column): survivors.value(row, y_column)
        for row in survivors
        if survivors.value(row, x_column) is not None
        and survivors.value(row, y_column) is not None}
    removed = frozenset(removed_rel.value(row, x_column)
                        for row in removed_rel)

    source = database.relation(relation_name)
    counts: dict[Any, int] = {}
    occurring: set = set()
    source_size = 0
    x_position = source.schema.position(x_column)
    y_position = source.schema.position(y_column)
    for row in source:
        x = row[x_position]
        if x is None:
            continue
        source_size += 1
        occurring.add(x)
        if row[y_position] is not None and x in mapping:
            counts[x] = counts.get(x, 0) + 1

    database.drop(_QUEL_S)
    database.drop(_QUEL_T)
    return PairExtraction(tuple(sorted(occurring)), mapping, removed,
                          counts, source_size)


def induce_from_pairs(extraction: PairExtraction,
                      x_ref: AttributeRef, y_ref: AttributeRef,
                      config: InductionConfig,
                      relation_size: int | None = None) -> list[Rule]:
    """Steps 3-4: build value-range rules and prune by support."""
    runs = build_runs(extraction.occurring_x, extraction.mapping,
                      extraction.removed, extraction.counts,
                      break_on_removed=config.break_on_removed)
    threshold = config.threshold_for(
        relation_size if relation_size is not None
        else extraction.source_size)
    rules = []
    for run in runs:
        if run.support(config.support_metric) < threshold:
            continue
        rules.append(Rule(
            [Clause(x_ref, Interval.closed(run.low, run.high))],
            Clause(y_ref, Interval.point(run.y)),
            support=run.instances))
    return rules


def induce_scheme(relation: Relation, x_column: str, y_column: str,
                  config: InductionConfig | None = None,
                  x_ref: AttributeRef | None = None,
                  y_ref: AttributeRef | None = None,
                  database: Database | None = None) -> list[Rule]:
    """Induce the full rule set for one scheme X --> Y over *relation*.

    With ``config.use_quel`` the extraction runs through QUEL, which
    requires *database* (the relation must be registered in it).
    """
    config = config or InductionConfig()
    x_ref = x_ref or AttributeRef(relation.name, x_column)
    y_ref = y_ref or AttributeRef(relation.name, y_column)
    if config.use_quel:
        if database is None:
            raise InductionError(
                "the QUEL induction path needs the owning database")
        extraction = extract_pairs_quel(database, relation.name,
                                        x_column, y_column)
    else:
        x_position = relation.schema.position(x_column)
        y_position = relation.schema.position(y_column)
        extraction = extract_pairs_native(
            (row[x_position], row[y_position]) for row in relation)
    return induce_from_pairs(extraction, x_ref, y_ref, config,
                             relation_size=len(relation))
