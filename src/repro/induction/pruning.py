"""Standalone pruning utilities (step 4 of the induction algorithm).

Pruning normally happens inside :func:`repro.induction.pairwise.
induce_from_pairs`; these helpers support the N_c ablation benchmark
(E8): re-pruning an unpruned rule set at different thresholds without
re-running extraction, and sweeping thresholds.
"""

from __future__ import annotations

from typing import Callable, Iterable, NamedTuple

from repro.rules.ruleset import RuleSet


def prune_by_support(ruleset: RuleSet, n_c: float) -> RuleSet:
    """Keep rules with support >= n_c (renumbered)."""
    return ruleset.filtered(lambda rule: rule.support >= n_c)


class SweepPoint(NamedTuple):
    """One N_c sweep measurement."""

    n_c: float
    rules_kept: int
    support_min: int | None
    support_max: int | None


def nc_sweep(induce_at: Callable[[float], RuleSet],
             thresholds: Iterable[float]) -> list[SweepPoint]:
    """Run induction (or re-pruning) at each threshold and summarize.

    *induce_at* maps a threshold to the resulting rule set; it may
    re-run the full ILS or just re-prune a cached N_c=0 rule set.
    """
    points: list[SweepPoint] = []
    for threshold in thresholds:
        ruleset = induce_at(threshold)
        supports = [rule.support for rule in ruleset]
        points.append(SweepPoint(
            threshold, len(ruleset),
            min(supports) if supports else None,
            max(supports) if supports else None))
    return points
