"""Rule-set quality metrics: coverage, precision, generalization.

Section 5.2.1's N_c is motivated as a storage/applicability tradeoff,
but pruning has a second effect the paper does not measure: under noisy
data, low-support rules overfit.  These metrics make that measurable
(benchmark E17 evaluates induced rule sets on held-out records):

* **coverage** -- fraction of records some rule fires on;
* **precision** -- among fired (rule, record) pairs, the fraction whose
  consequence is satisfied;
* **accuracy** -- fraction of records where the *prediction* (the
  highest-support fired rule's consequence value) equals the actual
  value; uncovered records count as wrong, so
  ``accuracy <= coverage``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, NamedTuple

from repro.rules.clause import AttributeRef
from repro.rules.rule import Rule


class ClassificationMetrics(NamedTuple):
    """Quality of a rule set as a classifier for one target attribute."""

    records: int
    covered: int
    fired_pairs: int
    correct_pairs: int
    correct_predictions: int

    @property
    def coverage(self) -> float:
        return self.covered / self.records if self.records else 0.0

    @property
    def precision(self) -> float:
        return (self.correct_pairs / self.fired_pairs
                if self.fired_pairs else 0.0)

    @property
    def accuracy(self) -> float:
        return (self.correct_predictions / self.records
                if self.records else 0.0)

    def render(self) -> str:
        return (f"coverage {self.coverage:.3f}, "
                f"precision {self.precision:.3f}, "
                f"accuracy {self.accuracy:.3f} "
                f"({self.records} records)")


def predict(rules: Iterable[Rule], record: Mapping[AttributeRef, Any],
            target: AttributeRef) -> Any:
    """The highest-support fired rule's consequence value (point
    consequences only), or ``None`` when nothing fires."""
    best: Rule | None = None
    for rule in rules:
        if rule.rhs.attribute != target:
            continue
        if not rule.rhs.is_equality():
            continue
        if not rule.premise_satisfied_by(record):
            continue
        if best is None or rule.support > best.support:
            best = rule
    return best.rhs.interval.low if best is not None else None


def classification_metrics(rules: Iterable[Rule],
                           records: Iterable[Mapping[AttributeRef, Any]],
                           target: AttributeRef) -> ClassificationMetrics:
    """Evaluate *rules* as a classifier for *target* over *records*.

    Records without a target value are skipped entirely.
    """
    rule_list = [rule for rule in rules
                 if rule.rhs.attribute == target]
    total = covered = fired_pairs = correct_pairs = 0
    correct_predictions = 0
    for record in records:
        actual = record.get(target)
        if actual is None:
            continue
        total += 1
        fired = [rule for rule in rule_list
                 if rule.premise_satisfied_by(record)]
        if fired:
            covered += 1
            fired_pairs += len(fired)
            correct_pairs += sum(
                1 for rule in fired if rule.rhs.satisfied_by(actual))
        if predict(rule_list, record, target) == actual:
            correct_predictions += 1
    return ClassificationMetrics(total, covered, fired_pairs,
                                 correct_pairs, correct_predictions)
