"""Value-range ("run") construction -- step 3 of the induction algorithm.

"For each distinct value of Y in S, say y, determine the value range x
of X ... A value range is defined as a consecutive sequence of X values
that occur in the database."  Concretely: sort every X value occurring
in the source, walk them in order, and emit a maximal run for each
stretch that consistently maps to one Y value.  X values removed as
inconsistent in step 2 break runs (the paper's INSTALL rules R14/R15/R16
are three rules precisely because the classes between them were removed);
this behaviour is the ``break_on_removed`` knob.
"""

from __future__ import annotations

from typing import Any, Mapping, NamedTuple, Sequence


class ValueRun(NamedTuple):
    """One maximal consecutive value range mapping to a single Y."""

    y: Any
    low: Any                 #: first X value of the run (inclusive)
    high: Any                #: last X value of the run (inclusive)
    xs: tuple                #: the X values the run covers, in order
    instances: int           #: original rows satisfied (support, paper)
    pairs: int               #: distinct (X, Y) pairs covered

    def support(self, metric: str) -> int:
        return self.instances if metric == "instances" else self.pairs


def build_runs(occurring_x: Sequence[Any],
               mapping: Mapping[Any, Any],
               removed: frozenset | set,
               counts: Mapping[Any, int],
               break_on_removed: bool = True) -> list[ValueRun]:
    """Construct maximal runs.

    Parameters
    ----------
    occurring_x:
        Every distinct X value occurring in the source relation, sorted
        ascending (including values later removed as inconsistent).
    mapping:
        Consistent X -> Y mapping (step 2 output).
    removed:
        X values removed as inconsistent.
    counts:
        X -> number of original source rows carrying that X value.
    break_on_removed:
        Whether removed values close the current run.
    """
    runs: list[ValueRun] = []
    current_y: Any = None
    current_xs: list[Any] = []
    current_instances = 0

    def close() -> None:
        nonlocal current_xs, current_instances, current_y
        if current_xs:
            runs.append(ValueRun(
                current_y, current_xs[0], current_xs[-1],
                tuple(current_xs), current_instances, len(current_xs)))
        current_xs = []
        current_instances = 0
        current_y = None

    for x in occurring_x:
        if x in removed:
            if break_on_removed:
                close()
            continue
        if x not in mapping:
            # X occurs in the source but produced no (X, Y) pair -- the
            # Y value was NULL.  NULLs classify nothing; break the run.
            close()
            continue
        y = mapping[x]
        if current_xs and y != current_y:
            close()
        if not current_xs:
            current_y = y
        current_xs.append(x)
        current_instances += counts.get(x, 1)
    close()
    return runs
