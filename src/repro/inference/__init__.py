"""The inference processor: *type inference* over induced rules.

Given the query's conditions (as interval clauses), the engine

* **forward-infers** (Modus Ponens): a rule fires when the condition on
  each premise attribute is subsumed by the premise interval (widened by
  declared attribute domains), yielding facts every answer satisfies --
  "the intensional answer characterizes a set *containing* the
  extensional answer";
* **backward-infers**: a rule whose consequence lies inside an
  established fact describes a *subset* of the answers -- "a set
  *contained in* the extensional answer";
* **combines** the two into the most specific characterization
  (Example 3 of the paper).

Attribute references are canonicalized through foreign-key equivalences
from the KER schema and the query's own join conditions, which is how a
condition on ``INSTALL.Sonar`` reaches rules written on ``SONAR.Sonar``.
"""

from repro.inference.facts import Canonicalizer, FactBase
from repro.inference.answers import (
    IntensionalAnswer, InferenceResult,
)
from repro.inference.engine import TypeInferenceEngine
from repro.inference.explain import explain_inference
from repro.inference.verification import verify_answers

__all__ = [
    "Canonicalizer",
    "FactBase",
    "IntensionalAnswer",
    "InferenceResult",
    "TypeInferenceEngine",
    "explain_inference",
    "verify_answers",
]
