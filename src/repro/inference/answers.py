"""Intensional answers and their English rendering.

Two answer kinds mirror Section 4's semantics:

* ``forward`` -- a characterization every answer satisfies; the
  characterized set *contains* the extensional answer.
* ``backward`` -- a description of instances guaranteed to satisfy the
  established facts; the characterized set is *contained in* (or, when
  matched against forward-derived facts, approximates) the extensional
  answer.

:class:`InferenceResult` carries both lists plus the fact base, and
composes them into a single combined sentence the way Example 3 does:
the forward subtype facts, conjoined with the most informative backward
premise -- where backward descriptions sharing a premise attribute are
*intersected* (Example 3's ``0201..0215`` from R6 and ``0208..0215``
from R16 combine to ``0208..0215``), and premise attributes that are
classification attributes of the schema are preferred (Example 2 answers
with the class range, not the displacement range).
"""

from __future__ import annotations

from typing import Sequence

from repro.inference.backward import PartialDescription
from repro.inference.forward import ForwardDerivation
from repro.inference.facts import FactBase
from repro.rules.clause import AttributeRef, Clause


class IntensionalAnswer:
    """One renderable intensional answer."""

    def __init__(self, kind: str, clauses: Sequence[Clause],
                 subtype: str | None = None,
                 conclusion: Clause | None = None,
                 via: Sequence[int | None] = (),
                 approximate: bool = False):
        self.kind = kind
        self.clauses = tuple(clauses)
        self.subtype = subtype
        self.conclusion = conclusion
        self.via = tuple(number for number in via if number is not None)
        self.approximate = approximate

    def _target(self) -> str:
        if self.subtype:
            return f"of type {self.subtype}"
        return f"satisfying {self.conclusion.render()}"

    def render(self) -> str:
        via = ""
        if self.via:
            via = " [via " + ", ".join(f"R{n}" for n in self.via) + "]"
        if self.kind == "forward":
            return f"Every answer is {self._target()}.{via}"
        premise = " and ".join(clause.render() for clause in self.clauses)
        qualifier = ("approximate description" if self.approximate
                     else "partial description")
        return (f"Instances with {premise} are {self._target()} "
                f"({qualifier}).{via}")

    def __repr__(self) -> str:
        return f"<IntensionalAnswer {self.render()}>"


class InferenceResult:
    """Everything the inference processor derived for one query."""

    def __init__(self, conditions: Sequence[Clause],
                 facts: FactBase,
                 forward: Sequence[ForwardDerivation],
                 backward: Sequence[PartialDescription],
                 classification_attributes: Sequence[AttributeRef] = (),
                 unsatisfiable: bool = False,
                 propagations: Sequence = ()):
        self.conditions = tuple(conditions)
        self.facts = facts
        self.forward = tuple(forward)
        self.backward = tuple(backward)
        #: bounds transferred through comparison constraints.
        self.propagations = tuple(propagations)
        #: True when the query conditions contradict each other: the
        #: answer set is provably empty before touching the EDB.
        self.unsatisfiable = unsatisfiable
        self._classification = {
            facts.canonicalizer.canon(ref).key
            for ref in classification_attributes}

    # -- answer lists ----------------------------------------------------

    def forward_answers(self) -> list[IntensionalAnswer]:
        out = []
        for derivation in self.forward:
            out.append(IntensionalAnswer(
                "forward", derivation.rule.lhs,
                subtype=derivation.rule.rhs_subtype,
                conclusion=derivation.clause,
                via=(derivation.rule.number,)))
        return out

    def backward_answers(self) -> list[IntensionalAnswer]:
        out = []
        for description in self.backward:
            out.append(IntensionalAnswer(
                "backward", description.rule.lhs,
                subtype=description.rule.rhs_subtype,
                conclusion=description.rule.rhs,
                via=(description.rule.number,),
                approximate=description.via_derived_fact))
        return out

    def answers(self) -> list[IntensionalAnswer]:
        return self.forward_answers() + self.backward_answers()

    def forward_subtypes(self) -> list[str]:
        """Subtype names every answer was proven to belong to."""
        out: list[str] = []
        for derivation in self.forward:
            subtype = derivation.rule.rhs_subtype
            if subtype and subtype not in out:
                out.append(subtype)
        return out

    # -- the combined sentence ------------------------------------------------

    def _backward_groups(self) -> list[dict]:
        """Single-premise backward descriptions grouped by (canonical)
        premise attribute, premise intervals intersected."""
        canon = self.facts.canonicalizer.canon
        groups: dict[tuple[str, str], dict] = {}
        order: list[tuple[str, str]] = []
        for description in self.backward:
            if len(description.rule.lhs) != 1:
                continue
            clause = description.rule.lhs[0]
            key = canon(clause.attribute).key
            if key not in groups:
                groups[key] = {
                    "attribute": clause.attribute,
                    "interval": clause.interval,
                    "rules": [description.rule],
                    "support": description.rule.support,
                    "classification": key in self._classification,
                }
                order.append(key)
                continue
            merged = groups[key]["interval"].intersect(clause.interval)
            if merged is None:
                continue  # disjoint descriptions cannot be conjoined
            groups[key]["interval"] = merged
            groups[key]["rules"].append(description.rule)
            groups[key]["support"] = max(groups[key]["support"],
                                         description.rule.support)
        return [groups[key] for key in order]

    def best_backward_description(self) -> dict | None:
        """The most informative backward premise group: classification
        attributes first, then most corroborating rules, then support."""
        groups = self._backward_groups()
        if not groups:
            return None
        return max(groups, key=lambda group: (
            group["classification"], len(group["rules"]), group["support"]))

    def combined_answer(self) -> str | None:
        """One sentence merging the forward characterization with the
        best backward description (Example 3's form), or ``None`` when
        nothing was derived."""
        if self.unsatisfiable:
            condition = " and ".join(c.render() for c in self.conditions)
            return ("The query conditions are contradictory; no "
                    f"instance can satisfy {condition}.")
        subtypes = self.forward_subtypes()
        for derivation in self.forward:
            if derivation.rule.rhs_subtype is None:
                label = derivation.clause.render()
                if label not in subtypes:
                    subtypes.append(label)
        best = self.best_backward_description()

        if not subtypes and best is None:
            return None
        parts = []
        if subtypes:
            parts.append("Every answer is " + " and ".join(subtypes))
        if best is not None:
            premise = best["interval"].render(best["attribute"].render())
            via = ", ".join(f"R{rule.number}" for rule in best["rules"]
                            if rule.number is not None)
            parts.append(
                f"in particular, instances with {premise} qualify"
                + (f" [{via}]" if via else ""))
        condition = " and ".join(c.render() for c in self.conditions)
        sentence = "; ".join(parts)
        if condition:
            sentence += f" (query condition: {condition})"
        return sentence + "."

    def summary(self) -> str:
        """Multi-line report: conditions, derived facts, answers."""
        lines = ["Query conditions:"]
        for clause in self.conditions:
            lines.append(f"  {clause.render()}")
        if self.unsatisfiable:
            lines.append(self.combined_answer())
            return "\n".join(lines)
        if self.propagations:
            lines.append("Propagated bounds (via comparison constraints):")
            for step in self.propagations:
                lines.append(f"  {step.clause.render()} "
                             f"[via {step.constraint.render()}]")
        if self.forward:
            lines.append("Forward inference (contains the answer set):")
            for answer in self.forward_answers():
                lines.append(f"  {answer.render()}")
        if self.backward:
            lines.append("Backward inference (subset descriptions):")
            for answer in self.backward_answers():
                lines.append(f"  {answer.render()}")
        combined = self.combined_answer()
        if combined:
            lines.append(f"Combined: {combined}")
        if not self.forward and not self.backward:
            lines.append("No intensional answer derivable.")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<InferenceResult {len(self.forward)} forward, "
                f"{len(self.backward)} backward>")
