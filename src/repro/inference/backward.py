"""Backward type inference.

"Backward inference uses the known facts to infer what must be true
according to the induced rules" -- reading a rule right-to-left: when a
rule's consequence lies inside an established fact, every instance
satisfying the rule's premise is guaranteed to satisfy the fact, so the
premise *describes a subset of the answers*.  The description can be
incomplete (Example 2: class 1301 is an SSBN but no surviving rule says
so), which is why backward answers characterize a set *contained in* the
extensional answer.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.inference.facts import FactBase
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


class PartialDescription(NamedTuple):
    """One backward-derived subset description."""

    rule: Rule
    #: whether the matched consequence fact came straight from the query
    #: (Example 2) or was itself forward-derived (Example 3).
    via_derived_fact: bool


def backward_match(facts: FactBase, rules: RuleSet,
                   exclude: set[int] | None = None
                   ) -> list[PartialDescription]:
    """Rules whose consequence is implied by the established facts.

    *exclude* holds ``id()``s of rules to skip -- the engine passes the
    rules that already fired forward, whose backward reading restates
    them.
    """
    out: list[PartialDescription] = []
    for rule in rules:
        if exclude and id(rule) in exclude:
            continue
        fact = facts.interval_for(rule.rhs.attribute)
        if fact is None:
            continue
        if not fact.contains(rule.rhs.interval):
            continue
        if _premise_trivial(rule, facts):
            continue
        sources = facts.sources_for(rule.rhs.attribute)
        via_derived = any(source != "query" for source in sources)
        out.append(PartialDescription(rule, via_derived))
    out.sort(key=lambda item: -item.rule.support)
    return out


def _premise_trivial(rule: Rule, facts: FactBase) -> bool:
    """A backward description is uninformative when its premise merely
    restates facts already established for every answer (e.g. the rule's
    premise interval contains the query's own condition)."""
    for clause in rule.lhs:
        fact = facts.interval_for(clause.attribute)
        if fact is None or not clause.interval.contains(fact):
            return False
    return True
