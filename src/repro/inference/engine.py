"""The type-inference engine facade.

Wires canonicalization, the fact base, forward chaining and backward
matching into a single call::

    engine = TypeInferenceEngine(ruleset, binding=binding)
    result = engine.infer(conditions, equivalences=query_joins)
    print(result.summary())

*binding* is optional: without a KER schema the engine still chains over
whatever rule set it is given (no foreign-key canonicalization, no
domain widening) -- this is the configuration the Motro-style baseline
uses with declared constraints only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro import obs
from repro.errors import InferenceError
from repro.inference.answers import InferenceResult
from repro.inference.backward import backward_match
from repro.inference.facts import Canonicalizer, FactBase
from repro.inference.forward import forward_chain
from repro.ker.binding import SchemaBinding
from repro.rules.comparisons import propagate_bounds
from repro.rules.clause import AttributeRef, Clause
from repro.rules.ruleset import RuleSet

#: Per-engine inference memo capacity.  Inference is a pure function of
#: (rule-base version, conditions, equivalences, direction flags) --
#: the engine's binding and constraints are fixed at construction -- so
#: the memo needs no invalidation machinery beyond the rule-base
#: version in its key; stale keys simply age out of the LRU.
MEMO_CAPACITY = 512


class TypeInferenceEngine:
    """Forward/backward type inference over a knowledge base."""

    def __init__(self, rules: RuleSet,
                 binding: SchemaBinding | None = None,
                 extra_equivalences: Iterable[
                     tuple[AttributeRef, AttributeRef]] = (),
                 constraints: Iterable = ()):
        self.rules = rules
        self.binding = binding
        #: inter-attribute comparison constraints (bound propagation).
        self.constraints = list(constraints)
        pairs = list(extra_equivalences)
        if binding is not None:
            pairs = binding.foreign_key_pairs() + pairs
        self._base_canonicalizer = Canonicalizer(pairs)
        self._domains = binding.domains() if binding is not None else {}
        if binding is not None:
            from repro.induction.candidates import classification_attributes
            self._classification = tuple(classification_attributes(binding))
        else:
            self._classification = ()
        self._memo: OrderedDict[tuple, InferenceResult] = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0

    def infer(self, conditions: Sequence[Clause],
              equivalences: Iterable[tuple[AttributeRef, AttributeRef]] = (),
              forward: bool = True, backward: bool = True
              ) -> InferenceResult:
        """Run type inference for the given query conditions.

        Calls are memoized (unless ``REPRO_CACHE=off``): the result is
        keyed on the rendered conditions, the equivalence pairs, the
        direction flags and the rule-base version, so a re-induced or
        mutated rule set can never satisfy a key minted for the old one.

        Parameters
        ----------
        conditions:
            Interval clauses extracted from the query qualification.
        equivalences:
            Extra attribute equivalences from the query's own equi-join
            conditions (``SUBMARINE.CLASS = CLASS.CLASS``).
        forward / backward:
            Enable each direction (the paper uses them "individually or
            combined").
        """
        from repro.cache.core import cache_enabled_default
        equivalences = list(equivalences)
        key = None
        if cache_enabled_default():
            key = (self.rules.version, bool(forward), bool(backward),
                   tuple(clause.render() for clause in conditions),
                   tuple(sorted((left.key, right.key)
                                for left, right in equivalences)))
            memoized = self._memo.get(key)
            if memoized is not None:
                self._memo.move_to_end(key)
                self.memo_hits += 1
                obs.cache_event("infer", "hit")
                return memoized
            self.memo_misses += 1
            obs.cache_event("infer", "miss")
        result = self._infer(conditions, equivalences, forward, backward)
        if key is not None:
            self._memo[key] = result
            while len(self._memo) > MEMO_CAPACITY:
                self._memo.popitem(last=False)
        return result

    def _infer(self, conditions: Sequence[Clause],
               equivalences: Iterable[tuple[AttributeRef, AttributeRef]],
               forward: bool, backward: bool) -> InferenceResult:
        with obs.span("inference.infer", conditions=len(conditions),
                      rules=len(self.rules)) as span:
            canonicalizer = self._base_canonicalizer.copy()
            for left, right in equivalences:
                canonicalizer.unite(left, right)
            facts = FactBase(canonicalizer, self._domains)
            try:
                for clause in conditions:
                    facts.add_condition(clause)
            except InferenceError:
                # Contradictory conditions: the query denotes the empty
                # set.  That *is* an intensional answer ("no instance
                # can qualify"), not an execution failure.
                obs.counter("inference_unsatisfiable_total",
                            "queries proven unsatisfiable from their "
                            "own conditions").inc()
                span.set(outcome="unsatisfiable")
                return InferenceResult(conditions, facts, [], [],
                                       classification_attributes=(
                                           self._classification),
                                       unsatisfiable=True)

            derivations = []
            propagations = []
            rounds = 0
            if forward:
                fired: set[int] = set()
                with obs.span("inference.forward") as forward_span:
                    for _round in range(20):
                        rounds += 1
                        new_derivations = forward_chain(facts, self.rules,
                                                        fired=fired)
                        new_propagations = (
                            propagate_bounds(facts, self.constraints)
                            if self.constraints else [])
                        derivations.extend(new_derivations)
                        propagations.extend(new_propagations)
                        if not new_derivations and not new_propagations:
                            break
                    forward_span.set(rounds=rounds,
                                     fired=len(derivations),
                                     propagations=len(propagations))
                if derivations:
                    obs.counter("inference_rules_fired_total",
                                "forward-chaining rule firings").inc(
                                    len(derivations))
            else:
                fired = set()
            if backward:
                with obs.span("inference.backward") as backward_span:
                    descriptions = backward_match(facts, self.rules,
                                                  exclude=fired)
                    backward_span.set(matches=len(descriptions))
                if descriptions:
                    obs.counter("inference_backward_matches_total",
                                "backward rule-description matches").inc(
                                    len(descriptions))
            else:
                descriptions = []
            span.set(derivations=len(derivations),
                     descriptions=len(descriptions))
            return InferenceResult(conditions, facts, derivations,
                                   descriptions,
                                   classification_attributes=(
                                       self._classification),
                                   propagations=propagations)
