"""Derivation traces for intensional answers.

An intensional answer is only as trustworthy as its derivation; this
module renders the inference record as a proof trace, e.g. for
Example 1::

    established: 8000 < CLASS.Displacement          (query condition)
    R9 fires:    8000 < CLASS.Displacement is subsumed by
                 7250 <= CLASS.Displacement <= 30000
                 (domain CLASS.Displacement in [2000..30000])
      => CLASS.Type = SSBN   (x isa SSBN)

Backward descriptions are traced through the fact they matched.
"""

from __future__ import annotations

from repro.inference.answers import InferenceResult


def explain_inference(result: InferenceResult) -> str:
    """Multi-line derivation trace for *result*."""
    lines: list[str] = []

    lines.append("Established from the query:")
    if result.conditions:
        for clause in result.conditions:
            lines.append(f"  {clause.render()}")
    else:
        lines.append("  (no interval conditions)")

    if result.forward:
        lines.append("")
        lines.append("Forward derivations (in firing order):")
        for step, derivation in enumerate(result.forward, start=1):
            rule = derivation.rule
            number = f"R{rule.number}" if rule.number else "rule"
            lines.append(f"  step {step}: {number} fires")
            for premise, trigger in zip(rule.lhs, derivation.triggers):
                domain = result.facts.domain_for(premise.attribute)
                domain_note = ""
                if domain is not None:
                    domain_note = (
                        f"  [domain {domain.render(premise.attribute.render())}]")
                lines.append(
                    f"    fact {trigger.render()} is subsumed by "
                    f"premise {premise.render()}{domain_note}")
            conclusion = derivation.clause.render()
            if rule.rhs_subtype:
                conclusion += f"   (x isa {rule.rhs_subtype})"
            lines.append(f"    => {conclusion}")

    if result.backward:
        lines.append("")
        lines.append("Backward matches:")
        for description in result.backward:
            rule = description.rule
            number = f"R{rule.number}" if rule.number else "rule"
            fact = result.facts.interval_for(rule.rhs.attribute)
            origin = ("a derived fact" if description.via_derived_fact
                      else "the query condition")
            lines.append(
                f"  {number}: consequence {rule.rhs.render()} lies "
                f"inside {origin} "
                f"({fact.render(rule.rhs.attribute.render())})")
            premise = " and ".join(c.render() for c in rule.lhs)
            lines.append(f"    hence instances with {premise} satisfy it")

    if not result.forward and not result.backward:
        lines.append("")
        lines.append("No rule was applicable.")
    return "\n".join(lines)
