"""Fact bookkeeping for type inference.

A *fact* is an interval established for an attribute: either a query
condition ("every answer has Displacement > 8000") or a forward-derived
consequence ("every answer has Type = SSBN").  Facts attach to
*canonical* attributes: the :class:`Canonicalizer` maintains a union-find
over attribute references, seeded with the schema's foreign-key pairs
and extended with the query's equi-join conditions, so that
``INSTALL.Sonar``, ``SONAR.Sonar`` and any aliased references all carry
one shared fact.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import InferenceError
from repro.rules.clause import AttributeRef, Clause, Interval


class Canonicalizer:
    """Union-find over attribute references."""

    def __init__(self, pairs: Iterable[tuple[AttributeRef, AttributeRef]]
                 = ()):
        self._parent: dict[tuple[str, str], AttributeRef] = {}
        for left, right in pairs:
            self.unite(left, right)

    def _find(self, ref: AttributeRef) -> AttributeRef:
        key = ref.key
        parent = self._parent.get(key)
        if parent is None or parent.key == key:
            return ref if parent is None else parent
        root = self._find(parent)
        self._parent[key] = root
        return root

    def canon(self, ref: AttributeRef) -> AttributeRef:
        """The representative reference of *ref*'s equivalence class."""
        return self._find(ref)

    def unite(self, left: AttributeRef, right: AttributeRef) -> None:
        root_left = self._find(left)
        root_right = self._find(right)
        if root_left.key != root_right.key:
            # Keep the right root (FK pairs are (referencing, referenced),
            # so referenced key attributes become representatives).
            self._parent[root_left.key] = root_right
            self._parent.setdefault(root_right.key, root_right)

    def copy(self) -> "Canonicalizer":
        clone = Canonicalizer()
        clone._parent = dict(self._parent)
        return clone

    def equivalent(self, left: AttributeRef, right: AttributeRef) -> bool:
        return self.canon(left).key == self.canon(right).key


class FactEntry:
    """One attribute's established interval plus its provenance."""

    __slots__ = ("interval", "sources")

    def __init__(self, interval: Interval, sources: tuple):
        self.interval = interval
        self.sources = sources


class FactBase:
    """Canonicalized interval facts with provenance tracking."""

    def __init__(self, canonicalizer: Canonicalizer | None = None,
                 domains: dict[AttributeRef, Interval] | None = None):
        self.canonicalizer = canonicalizer or Canonicalizer()
        self._facts: dict[tuple[str, str], tuple[AttributeRef, FactEntry]] = {}
        self._domains: dict[tuple[str, str], Interval] = {}
        for ref, interval in (domains or {}).items():
            self._domains[self.canonicalizer.canon(ref).key] = interval

    # -- domains -----------------------------------------------------------

    def domain_for(self, ref: AttributeRef) -> Interval | None:
        return self._domains.get(self.canonicalizer.canon(ref).key)

    # -- facts ---------------------------------------------------------------

    def assert_interval(self, ref: AttributeRef, interval: Interval,
                        source: Any) -> bool:
        """Record that every answer's *ref* lies in *interval*.

        Multiple assertions on one attribute intersect (all of them hold
        simultaneously).  Returns True when the stored fact narrowed.
        A contradictory assertion (empty intersection) raises -- it
        means the query is unsatisfiable against the knowledge base.
        """
        canon = self.canonicalizer.canon(ref)
        existing = self._facts.get(canon.key)
        if existing is None:
            self._facts[canon.key] = (canon, FactEntry(interval, (source,)))
            return True
        merged = existing[1].interval.intersect(interval)
        if merged is None:
            raise InferenceError(
                f"contradictory facts on {canon.render()}: "
                f"{existing[1].interval!r} vs {interval!r}")
        if merged == existing[1].interval:
            return False
        self._facts[canon.key] = (
            canon, FactEntry(merged, existing[1].sources + (source,)))
        return True

    def interval_for(self, ref: AttributeRef) -> Interval | None:
        entry = self._facts.get(self.canonicalizer.canon(ref).key)
        return entry[1].interval if entry else None

    def sources_for(self, ref: AttributeRef) -> tuple:
        entry = self._facts.get(self.canonicalizer.canon(ref).key)
        return entry[1].sources if entry else ()

    def facts(self) -> list[tuple[AttributeRef, Interval, tuple]]:
        """(canonical ref, interval, sources) triples, insertion order."""
        return [(ref, entry.interval, entry.sources)
                for ref, entry in self._facts.values()]

    def add_condition(self, clause: Clause) -> None:
        """Record a query condition clause."""
        self.assert_interval(clause.attribute, clause.interval, "query")

    def __len__(self) -> int:
        return len(self._facts)
