"""Forward type inference (Modus Ponens over interval subsumption).

"Using forward inference, we can traverse the type hierarchies of the
object types specified in the query based on the query condition and the
with constraints to derive intensional answers."  A rule fires when the
established fact on each premise attribute is *subsumed by* the premise
interval (the declared attribute domain widens the check: Displacement >
8000 within a [2000..30000] domain is subsumed by [7250..30000]).  Fired
rules add their consequences as new facts; chaining runs to fixpoint, so
a derived ``SonarType = BQS`` can enable further rules.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.inference.facts import FactBase
from repro.rules.clause import Clause
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.rules.subsumption import interval_subsumes


class ForwardDerivation(NamedTuple):
    """One forward-derived fact."""

    rule: Rule
    clause: Clause        #: the consequence asserted
    narrowed: bool        #: whether it changed the fact base
    #: snapshot of the established fact on each premise attribute at the
    #: moment the rule fired (the subsumption witnesses) -- used by
    #: :mod:`repro.inference.explain` to print derivation traces.
    triggers: tuple = ()


def rule_fires(rule: Rule, facts: FactBase) -> bool:
    """Whether every premise of *rule* is implied by the current facts."""
    for clause in rule.lhs:
        fact = facts.interval_for(clause.attribute)
        if fact is None:
            return False
        domain = facts.domain_for(clause.attribute)
        if not interval_subsumes(clause.interval, fact, domain):
            return False
    return True


def forward_chain(facts: FactBase, rules: RuleSet,
                  max_iterations: int = 100,
                  fired: set[int] | None = None
                  ) -> list[ForwardDerivation]:
    """Run forward inference to fixpoint; returns the derivations in
    firing order.  Each rule fires at most once.

    Passing *fired* lets the engine interleave chaining with bound
    propagation without re-firing rules across rounds.
    """
    derivations: list[ForwardDerivation] = []
    if fired is None:
        fired = set()
    for _round in range(max_iterations):
        progressed = False
        for rule in rules:
            if id(rule) in fired:
                continue
            if not rule_fires(rule, facts):
                continue
            fired.add(id(rule))
            triggers = tuple(
                Clause(premise.attribute,
                       facts.interval_for(premise.attribute))
                for premise in rule.lhs)
            narrowed = facts.assert_interval(
                rule.rhs.attribute, rule.rhs.interval, rule)
            derivations.append(ForwardDerivation(
                rule, rule.rhs, narrowed, triggers))
            progressed = True
        if not progressed:
            break
    return derivations
