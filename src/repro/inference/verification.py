"""Empirical verification of intensional answers against the extension.

Section 4 states the two containment guarantees:

* forward answers "characterize a set of instances *containing* the
  extensional answer" -- every answer tuple satisfies every derived fact;
* backward answers "characterize a set of answers *contained in* the
  extensional answer" -- when matched against query-given facts, every
  instance satisfying the description satisfies the matched fact.

These are theorems of the inference procedure, but a production system
wants to *check* them (and our property tests do).  This module turns a
:class:`~repro.query.system.QueryResult` into a checked report.
"""

from __future__ import annotations

from typing import NamedTuple, TYPE_CHECKING

from repro.relational.relation import Relation
from repro.rules.clause import AttributeRef

if TYPE_CHECKING:  # avoid the query <-> inference import cycle
    from repro.query.system import QueryResult


class AnswerCheck(NamedTuple):
    """One verified guarantee."""

    kind: str          #: "forward" or "backward"
    description: str
    holds: bool
    detail: str


def _column_for(extensional: Relation, ref: AttributeRef) -> str | None:
    """Best-effort match of an attribute reference to an output column
    (the extensional answer's columns carry bare names)."""
    if extensional.schema.has_column(ref.attribute):
        return ref.attribute
    return None


def verify_forward_answers(result: QueryResult) -> list[AnswerCheck]:
    """Check that every extensional tuple satisfies every forward-derived
    fact whose attribute appears among the output columns."""
    checks: list[AnswerCheck] = []
    extensional = result.extensional
    for derivation in result.inference.forward:
        clause = derivation.clause
        column = _column_for(extensional, clause.attribute)
        if column is None:
            checks.append(AnswerCheck(
                "forward", derivation.rule.render(),
                True, "not checkable: attribute not in output columns"))
            continue
        violating = [
            row for row in extensional
            if not clause.interval.contains_value(
                extensional.value(row, column))]
        checks.append(AnswerCheck(
            "forward", derivation.rule.render(),
            not violating,
            f"{len(extensional) - len(violating)}/{len(extensional)} "
            "tuples satisfy the derived fact"))
    return checks


def verify_backward_answers(result: QueryResult) -> list[AnswerCheck]:
    """Check that each backward description (matched on a query-given
    fact) denotes a subset of the extension, measured over the output
    columns available."""
    checks: list[AnswerCheck] = []
    extensional = result.extensional
    for description in result.inference.backward:
        if description.via_derived_fact:
            checks.append(AnswerCheck(
                "backward", description.rule.render(),
                True, "approximate (matched a derived fact); "
                      "no containment guarantee to check"))
            continue
        columns = [(_column_for(extensional, clause.attribute), clause)
                   for clause in description.rule.lhs]
        if any(column is None for column, _clause in columns):
            checks.append(AnswerCheck(
                "backward", description.rule.render(),
                True, "not checkable: premise attribute not in output"))
            continue
        described = [
            row for row in extensional
            if all(clause.interval.contains_value(
                extensional.value(row, column))
                for column, clause in columns)]
        checks.append(AnswerCheck(
            "backward", description.rule.render(),
            True,
            f"description covers {len(described)}/{len(extensional)} "
            "extensional tuples (a subset, possibly proper)"))
    return checks


class VerificationReport(NamedTuple):
    """All checks for one query."""

    checks: list[AnswerCheck]

    @property
    def all_hold(self) -> bool:
        return all(check.holds for check in self.checks)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            mark = "ok " if check.holds else "FAIL"
            lines.append(f"[{mark}] ({check.kind}) {check.description}")
            lines.append(f"       {check.detail}")
        lines.append("all guarantees hold" if self.all_hold
                     else "GUARANTEE VIOLATED")
        return "\n".join(lines)


def verify_answers(result: QueryResult) -> VerificationReport:
    """Run every check for *result*."""
    return VerificationReport(
        verify_forward_answers(result) + verify_backward_answers(result))
