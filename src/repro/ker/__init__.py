"""The Knowledge-based Entity-Relationship (KER) model.

KER extends the ER model with three constructs (Section 2):

* ``has/with`` -- aggregation: object types own typed attributes, with
  constraint knowledge attached (``with Displacement in [2000..30000]``).
* ``isa/with`` and ``contains/with`` -- generalization/specialization:
  subtype links carrying derivation specifications
  (``SSBN isa SUBMARINE with ShipType = "SSBN"``).
* ``has-instance`` -- classification: tuples of the bound relation are
  the instances of the type.

This package provides the model objects (:mod:`repro.ker.model`), the
with-constraint varieties (:mod:`repro.ker.constraints`), a parser for
the Appendix A DDL (:mod:`repro.ker.ddl`), text diagram rendering
(:mod:`repro.ker.diagram`), and the binding of a KER schema onto a
relational database (:mod:`repro.ker.binding`).
"""

from repro.ker.model import (
    Attribute, Domain, KerSchema, ObjectType, SubtypeLink,
)
from repro.ker.constraints import (
    ClassificationRule, ConstraintRule, DomainRangeConstraint,
)
from repro.ker.ddl import parse_ker
from repro.ker.binding import SchemaBinding
from repro.ker.analysis import Finding, analyze_binding, analyze_schema

__all__ = [
    "Attribute",
    "Domain",
    "KerSchema",
    "ObjectType",
    "SubtypeLink",
    "ClassificationRule",
    "ConstraintRule",
    "DomainRangeConstraint",
    "parse_ker",
    "SchemaBinding",
    "Finding",
    "analyze_binding",
    "analyze_schema",
]
