"""Schema diagnostics: a linter for KER models.

The KER constructs carry semantic commitments -- ``contains`` declares
*disjoint* subtypes, derivation specs ground ``isa`` conclusions,
object-typed attribute domains are foreign keys.  This module checks
them, statically (:func:`analyze_schema`) and against a bound database
(:func:`analyze_binding`).  The checks caught two classes of authoring
mistakes while building the ship test bed, so they ship as a tool.

Finding codes
-------------
``no-derivation``        subtype has no derivation specification
``overlap``              sibling derivation specs overlap (contains
                         promises disjointness)
``uncovered-value``      a data value of a classification attribute
                         belongs to no sibling subtype
``dangling-domain``      attribute references an unknown domain/type
``foreign-key-orphan``   referencing value absent from the target key
``range-violation``      declared range constraint violated by data
``cross-type-conclusion`` structure rule concludes into a subtype of a
                         different hierarchy than its variable's type
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import KerError
from repro.ker.binding import SchemaBinding
from repro.ker.model import KerSchema
from repro.relational.indexes import HashIndex


class Finding(NamedTuple):
    """One diagnostic."""

    severity: str      #: "error" or "warning"
    code: str
    subject: str       #: type/attribute the finding is about
    message: str

    def render(self) -> str:
        return f"[{self.severity}] {self.code} ({self.subject}): " \
               f"{self.message}"


def analyze_schema(schema: KerSchema) -> list[Finding]:
    """Static checks (no database needed)."""
    findings: list[Finding] = []
    findings.extend(_check_derivations(schema))
    findings.extend(_check_sibling_overlap(schema))
    findings.extend(_check_domains(schema))
    findings.extend(_check_rule_conclusions(schema))
    return findings


def analyze_binding(binding: SchemaBinding) -> list[Finding]:
    """Static checks plus data-level checks."""
    findings = analyze_schema(binding.schema)
    findings.extend(_check_foreign_keys(binding))
    findings.extend(_check_ranges(binding))
    findings.extend(_check_coverage(binding))
    return findings


# -- static checks ----------------------------------------------------------


def _check_derivations(schema: KerSchema) -> list[Finding]:
    out = []
    for link in schema.links():
        if not link.membership:
            out.append(Finding(
                "warning", "no-derivation", link.child,
                f"subtype of {link.parent} has no derivation "
                "specification; it cannot appear in rule conclusions"))
    return out


def _check_sibling_overlap(schema: KerSchema) -> list[Finding]:
    out = []
    for parent in list(schema.object_types.values()):
        children = schema.children_of(parent.name)
        for index, left_name in enumerate(children):
            for right_name in children[index + 1:]:
                left = schema.membership_clauses(left_name)
                right = schema.membership_clauses(right_name)
                if len(left) != 1 or len(right) != 1:
                    continue
                if left[0].attribute != right[0].attribute:
                    continue
                if left[0].interval.overlaps(right[0].interval):
                    out.append(Finding(
                        "error", "overlap", f"{left_name}/{right_name}",
                        f"derivation specs overlap on "
                        f"{left[0].attribute.render()}; contains "
                        "declares disjoint subtypes"))
    return out


def _check_domains(schema: KerSchema) -> list[Finding]:
    out = []
    for object_type in schema.object_types.values():
        for attribute in object_type.attributes:
            try:
                schema.resolve_datatype(attribute.domain)
            except KerError:
                out.append(Finding(
                    "error", "dangling-domain",
                    f"{object_type.name}.{attribute.name}",
                    f"references unknown domain {attribute.domain!r}"))
    return out


def _check_rule_conclusions(schema: KerSchema) -> list[Finding]:
    out = []
    for object_type in schema.object_types.values():
        for rule in object_type.classification_rules:
            role_type = rule.role_type(rule.conclusion_variable)
            if role_type is None:
                continue
            if not schema.has_object_type(rule.subtype):
                out.append(Finding(
                    "error", "cross-type-conclusion",
                    object_type.name,
                    f"rule concludes into undeclared subtype "
                    f"{rule.subtype!r}"))
                continue
            if not schema.is_subtype_of(rule.subtype, role_type):
                out.append(Finding(
                    "warning", "cross-type-conclusion",
                    object_type.name,
                    f"rule binds {rule.conclusion_variable} isa "
                    f"{role_type} but concludes {rule.subtype} (a "
                    f"subtype of "
                    f"{schema.parent_of(rule.subtype) or '?'}); the "
                    "conclusion classifies through the membership "
                    "attribute instead"))
    return out


# -- data-level checks --------------------------------------------------------


def _check_foreign_keys(binding: SchemaBinding) -> list[Finding]:
    out = []
    for source, target in binding.foreign_key_pairs():
        source_relation = binding.database.relation(source.relation)
        target_relation = binding.database.relation(target.relation)
        index = HashIndex(target_relation, target.attribute)
        orphans = sorted({
            value for value in source_relation.column_values(
                source.attribute)
            if value is not None and value not in index})
        if orphans:
            shown = ", ".join(str(o) for o in orphans[:5])
            out.append(Finding(
                "error", "foreign-key-orphan", source.render(),
                f"{len(orphans)} value(s) missing from "
                f"{target.render()}: {shown}"))
    return out


def _check_ranges(binding: SchemaBinding) -> list[Finding]:
    return [Finding("error", "range-violation", "instance", message)
            for message in binding.validate_instances()]


def _check_coverage(binding: SchemaBinding) -> list[Finding]:
    """Every observed value of a classification attribute should fall
    into some sibling subtype's derivation spec."""
    out = []
    schema = binding.schema
    for parent in list(schema.object_types.values()):
        children = schema.children_of(parent.name)
        if not children:
            continue
        # Group single-clause memberships by attribute.
        by_attribute: dict = {}
        for child in children:
            membership = schema.membership_clauses(child)
            if len(membership) == 1:
                by_attribute.setdefault(
                    membership[0].attribute, []).append(
                        (child, membership[0]))
        for attribute, entries in by_attribute.items():
            relation_name = attribute.relation
            if relation_name not in binding.database:
                continue
            relation = binding.database.relation(relation_name)
            if not relation.schema.has_column(attribute.attribute):
                continue
            for value in sorted(set(
                    relation.column_values(attribute.attribute))):
                if value is None:
                    continue
                if not any(clause.satisfied_by(value)
                           for _child, clause in entries):
                    out.append(Finding(
                        "warning", "uncovered-value",
                        attribute.render(),
                        f"value {value!r} belongs to no subtype of "
                        f"{parent.name}"))
    return out
