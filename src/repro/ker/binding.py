"""Binding a KER schema onto a relational database.

The KER model is conceptual; the EDB is relational.  The binding
resolves, for every object type, which relation stores its instances
(subtypes are *virtual* -- their instances live in an ancestor's
relation, distinguished by the derivation spec), and derives the three
knowledge artifacts the inference processor consumes:

* ``domains()`` -- declared value ranges per attribute (used to widen
  subsumption tests, Section 4's ``Displacement > 8000`` example);
* ``foreign_key_pairs()`` -- attribute equivalences induced by object-
  typed attribute domains (``INSTALL.Ship`` *is* a ``SUBMARINE.Id``);
* ``schema_rules()`` -- the declared with-constraint rules, normalized
  to :class:`repro.rules.Rule` (this is exactly the knowledge the
  integrity-constraint baseline of Motro-style answering has available).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import KerError
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.ker.model import Attribute, KerSchema


class SchemaBinding:
    """A KER schema bound to a database instance."""

    def __init__(self, schema: KerSchema, database: Database,
                 relation_map: Mapping[str, str] | None = None):
        self.schema = schema
        self.database = database
        self._relation_map = {
            key.lower(): value
            for key, value in (relation_map or {}).items()}
        self.check()

    # -- resolution ------------------------------------------------------

    def relation_name_of(self, type_name: str) -> str | None:
        """The relation backing *type_name*, walking up the hierarchy for
        virtual subtypes; ``None`` when no ancestor is backed either."""
        current: str | None = type_name
        while current is not None:
            mapped = self._relation_map.get(current.lower(), current)
            if mapped in self.database:
                return self.database.relation(mapped).name
            current = self.schema.parent_of(current)
        return None

    def is_backed(self, type_name: str) -> bool:
        mapped = self._relation_map.get(type_name.lower(), type_name)
        return mapped in self.database

    def attribute_ref(self, type_name: str, attribute: str) -> AttributeRef:
        """Relation-qualified reference for *attribute* of *type_name*.

        The owning type is the nearest type in the supertype chain that
        declares the attribute; the reference uses that type's relation.
        """
        chain = [type_name] + self.schema.ancestor_names(type_name)
        for candidate in chain:
            if self.schema.object_type(candidate).has_attribute(attribute):
                relation = self.relation_name_of(candidate)
                if relation is None:
                    raise KerError(
                        f"type {candidate} (owner of {attribute!r}) has "
                        "no backing relation")
                return AttributeRef(relation, attribute)
        raise KerError(
            f"type {type_name} has no attribute {attribute!r}")

    # -- checks ----------------------------------------------------------------

    def check(self) -> None:
        """Verify that every backed type's attributes exist with
        compatible columns."""
        for object_type in self.schema.object_types.values():
            if not self.is_backed(object_type.name):
                continue
            relation = self.database.relation(
                self._relation_map.get(object_type.name.lower(),
                                       object_type.name))
            for attribute in object_type.attributes:
                if not relation.schema.has_column(attribute.name):
                    raise KerError(
                        f"relation {relation.name} lacks column "
                        f"{attribute.name!r} declared on type "
                        f"{object_type.name}")
                declared = self._datatype_of(attribute)
                actual = relation.schema.column(attribute.name).datatype
                if declared is not None and type(declared) is not type(
                        actual) and not (
                            declared.is_numeric() and actual.is_numeric()):
                    raise KerError(
                        f"column {relation.name}.{attribute.name} is "
                        f"{actual.render()} but the schema declares "
                        f"{declared.render()}")

    def _datatype_of(self, attribute: Attribute) -> DataType | None:
        try:
            return self.schema.resolve_datatype(attribute.domain)
        except KerError:
            return None

    def validate_instances(self) -> list[str]:
        """Check declared range constraints against the data; returns a
        list of violation descriptions (empty when the EDB conforms)."""
        violations: list[str] = []
        for object_type in self.schema.object_types.values():
            if not self.is_backed(object_type.name):
                continue
            relation = self.database.relation(object_type.name)
            for constraint in object_type.range_constraints:
                position = relation.schema.position(constraint.attribute)
                for row in relation:
                    value = row[position]
                    if value is None:
                        continue
                    if constraint.interval is not None and not (
                            constraint.interval.contains_value(value)):
                        violations.append(
                            f"{relation.name}.{constraint.attribute} = "
                            f"{value!r} violates {constraint.render()}")
                    if constraint.values is not None and value not in (
                            constraint.values):
                        violations.append(
                            f"{relation.name}.{constraint.attribute} = "
                            f"{value!r} not in the declared value set")
        return violations

    # -- knowledge artifacts ----------------------------------------------------

    def domains(self) -> dict[AttributeRef, Interval]:
        """Declared interval per attribute, from with-range constraints
        and (derived) domain ranges."""
        out: dict[AttributeRef, Interval] = {}
        for object_type in self.schema.object_types.values():
            relation = self.relation_name_of(object_type.name)
            if relation is None:
                continue
            for constraint in object_type.range_constraints:
                if constraint.interval is not None:
                    out[AttributeRef(relation, constraint.attribute)] = (
                        constraint.interval)
            for attribute in object_type.attributes:
                ref = AttributeRef(relation, attribute.name)
                if ref in out:
                    continue
                if isinstance(attribute.domain, str):
                    interval = self.schema.domain_interval(attribute.domain)
                    if interval is not None:
                        out[ref] = interval
        return out

    def foreign_key_pairs(self) -> list[tuple[AttributeRef, AttributeRef]]:
        """(referencing attribute, referenced key attribute) pairs from
        object-typed attribute domains."""
        pairs: list[tuple[AttributeRef, AttributeRef]] = []
        for object_type in self.schema.object_types.values():
            relation = self.relation_name_of(object_type.name)
            if relation is None:
                continue
            for attribute in object_type.attributes:
                target_name = self._referenced_type(attribute)
                if target_name is None:
                    continue
                target = self.schema.object_type(target_name)
                keys = target.key_attributes()
                if len(keys) != 1:
                    continue
                target_relation = self.relation_name_of(target.name)
                if target_relation is None:
                    continue
                pairs.append((
                    AttributeRef(relation, attribute.name),
                    AttributeRef(target_relation, keys[0].name)))
        return pairs

    def _referenced_type(self, attribute: Attribute) -> str | None:
        domain = attribute.domain
        if not isinstance(domain, str):
            return None
        if self.schema.has_object_type(domain):
            return domain
        named = self.schema.domain(domain)
        if named is not None and named.object_type:
            return named.object_type
        return None

    def schema_rules(self) -> RuleSet:
        """Declared with-constraint rules as a normalized rule set."""
        ruleset = RuleSet()
        for object_type in self.schema.object_types.values():
            relation = self.relation_name_of(object_type.name)
            if relation is None:
                continue
            for constraint_rule in object_type.constraint_rules:
                lhs = [Clause(self.attribute_ref(object_type.name, name),
                              interval)
                       for name, interval in constraint_rule.premises]
                rhs = Clause(
                    self.attribute_ref(
                        object_type.name,
                        constraint_rule.conclusion_attribute),
                    constraint_rule.conclusion)
                subtype = self.schema.subtype_for_clause(rhs)
                ruleset.add(Rule(lhs, rhs, rhs_subtype=subtype,
                                 source="schema"))
            for classification in object_type.classification_rules:
                rule = self._classification_to_rule(
                    object_type.name, classification)
                if rule is not None:
                    ruleset.add(rule)
        return ruleset

    def _classification_to_rule(self, owner: str, classification
                                ) -> Rule | None:
        roles = {variable.lower(): type_name
                 for variable, type_name in classification.roles}
        lhs = []
        for variable, attribute, interval in classification.premises:
            type_name = roles.get(variable.lower(), owner)
            lhs.append(Clause(
                self.attribute_ref(type_name, attribute), interval))
        membership = self.schema.membership_clauses(classification.subtype)
        if len(membership) != 1:
            # A conclusion subtype without a one-clause derivation spec
            # cannot be expressed as a Horn consequence; Appendix B gives
            # every concluded subtype one, so reaching here means the
            # schema author left the derivation out.
            raise KerError(
                f"subtype {classification.subtype!r} needs a single-"
                "clause derivation spec to appear in a rule conclusion")
        if not lhs:
            return None
        return Rule(lhs, membership[0],
                    rhs_subtype=classification.subtype, source="schema")
