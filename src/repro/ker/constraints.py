"""With-constraint varieties.

Appendix A distinguishes three constraint forms attachable to a KER
definition:

* *domain range constraints* -- ``Displacement in [2000..30000]``;
* *constraint rules* -- ``if "0101" <= Class <= "0103" then Type = "SSBN"``;
* *structure rules* -- ``if x isa SUBMARINE and x.Displacement >= 7250
  then x isa SSBN`` (the conclusion names a subtype rather than an
  attribute value).

Constraint and structure rules normalize to :class:`repro.rules.Rule`
values once the schema is bound to a database (see
:meth:`repro.ker.binding.SchemaBinding.schema_rules`); structure rules
keep the subtype name so intensional answers can speak in type terms.
"""

from __future__ import annotations

from typing import Sequence

from repro.rules.clause import Interval


def render_interval_ddl(interval: Interval, name: str) -> str:
    """Interval rendering for DDL output: string bounds are quoted (the
    Appendix B convention), so the text re-parses with the right types.
    """
    def fmt(value):
        if isinstance(value, str):
            return '"' + value.replace('"', '\\"') + '"'
        return str(value)

    if interval.is_point():
        return f"{name} = {fmt(interval.low)}"
    parts = []
    if interval.low is not None:
        parts.append(f"{fmt(interval.low)} "
                     f"{'<' if interval.low_open else '<='} {name}")
    if interval.high is not None:
        if parts:
            parts[0] += (f" {'<' if interval.high_open else '<='} "
                         f"{fmt(interval.high)}")
        else:
            parts.append(f"{name} {'<' if interval.high_open else '<='} "
                         f"{fmt(interval.high)}")
    return parts[0] if parts else f"{name} is anything"


class DomainRangeConstraint:
    """``attribute in [low..high]`` (or a value-set constraint)."""

    def __init__(self, attribute: str, interval: Interval | None = None,
                 values: Sequence | None = None):
        self.attribute = attribute
        self.interval = interval
        self.values = tuple(values) if values is not None else None

    def render(self) -> str:
        if self.interval is not None:
            low = self.interval.low if self.interval.low is not None else ""
            high = (self.interval.high
                    if self.interval.high is not None else "")
            lo_bracket = "(" if self.interval.low_open else "["
            hi_bracket = ")" if self.interval.high_open else "]"
            return (f"{self.attribute} in "
                    f"{lo_bracket}{low}..{high}{hi_bracket}")
        return (f"{self.attribute} in set of "
                "{" + ", ".join(str(v) for v in self.values or ()) + "}")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DomainRangeConstraint)
                and self.attribute.lower() == other.attribute.lower()
                and self.interval == other.interval
                and self.values == other.values)

    def __repr__(self) -> str:
        return f"<DomainRangeConstraint {self.render()}>"


class ConstraintRule:
    """``if <clauses on own attributes> then <attribute> = <constant>``.

    Attribute names are unqualified here (they refer to the enclosing
    object type); binding qualifies them with the backing relation.
    """

    def __init__(self, premises: Sequence[tuple[str, Interval]],
                 conclusion_attribute: str, conclusion: Interval):
        self.premises = tuple(premises)
        self.conclusion_attribute = conclusion_attribute
        self.conclusion = conclusion

    def render(self) -> str:
        premise = " and ".join(render_interval_ddl(interval, name)
                               for name, interval in self.premises)
        return (f"if {premise} then "
                + render_interval_ddl(self.conclusion,
                                      self.conclusion_attribute))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ConstraintRule)
                and self.premises == other.premises
                and self.conclusion_attribute.lower()
                == other.conclusion_attribute.lower()
                and self.conclusion == other.conclusion)

    def __repr__(self) -> str:
        return f"<ConstraintRule {self.render()}>"


class ClassificationRule:
    """A structure rule: premises over role attributes conclude a subtype.

    ``roles`` carries the role definitions ``variable isa TYPE``; each
    premise is ``(variable, attribute, interval)`` and the conclusion is
    ``(variable, subtype_name)``.  With a single role this is the Figure 5
    form; with two roles it is the INSTALL inter-object form.
    """

    def __init__(self, roles: Sequence[tuple[str, str]],
                 premises: Sequence[tuple[str, str, Interval]],
                 conclusion_variable: str, subtype: str):
        self.roles = tuple(roles)
        self.premises = tuple(premises)
        self.conclusion_variable = conclusion_variable
        self.subtype = subtype

    def role_type(self, variable: str) -> str | None:
        for role_variable, type_name in self.roles:
            if role_variable.lower() == variable.lower():
                return type_name
        return None

    def render(self) -> str:
        """Parseable structure-rule form (roles stated explicitly, the
        Appendix A.5 shape)."""
        roles = " and ".join(f"{variable} isa {type_name}"
                             for variable, type_name in self.roles)
        premise = " and ".join(
            render_interval_ddl(interval, f"{variable}.{attribute}")
            for variable, attribute, interval in self.premises)
        body = " and ".join(part for part in (roles, premise) if part)
        return (f"if {body} then "
                f"{self.conclusion_variable} isa {self.subtype}")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ClassificationRule)
                and self.roles == other.roles
                and self.premises == other.premises
                and self.conclusion_variable.lower()
                == other.conclusion_variable.lower()
                and self.subtype.lower() == other.subtype.lower())

    def __repr__(self) -> str:
        return f"<ClassificationRule {self.render()}>"
