"""Parser for the KER data-definition language of Appendix A.

Accepted forms (matching Appendix B's usage)::

    domain: SHIP_NAME isa NAME
    domain: AGE isa integer range [0..200]

    object type CLASS
        has key: Class         domain: CHAR[4]
        has:     ClassName     domain: CLASS_NAME
        has:     Type          domain: type
        has:     Displacement  domain: INTEGER
        with
            if "0101" <= Class <= "0103" then Type = "SSBN"
            Displacement in [2000..30000]

    CLASS contains SSBN, SSN
        with
            if x isa CLASS and 2145 <= x.Displacement <= 6955
                then x isa SSN

    SSBN isa CLASS with Type = "SSBN"

Notes on lexical conventions, all documented deviations being paper-
faithful readings rather than extensions:

* identifiers may contain dashes (``BQS-04``, ``BQQ-2``), since Section 6
  writes sonar designators unquoted inside rules;
* an unquoted number with a leading zero (``0203``) denotes the *string*
  ``"0203"`` -- ship classes are 4-character codes and the paper writes
  them both quoted and bare;
* comments ``/* ... */`` are skipped, so role declarations must be stated
  in rule premises (the structure-rule form of Appendix A.5), not in
  comments as the Figure 5 listing does;
* a ``with`` block extends while the next token starts a constraint
  (``if``, or ``<ident> in``).
"""

from __future__ import annotations

from typing import Any

from repro.errors import KerError, ParseError
from repro.langutil import Scanner, TokenStream, TokenKind
from repro.langutil.tokens import Token
from repro.ker.constraints import (
    ClassificationRule, ConstraintRule, DomainRangeConstraint,
)
from repro.ker.model import (
    Attribute, Domain, KerSchema, ObjectType,
)
from repro.relational.datatypes import char
from repro.rules.clause import AttributeRef, Clause, Interval

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".",
              "..", "[", "]", "{", "}", ":", ";")
_SCANNER = Scanner(operators=_OPERATORS, ident_continue_dash=True)

_COMPARISON_TOKENS = {"=": "=", "!=": "!=", "<>": "!=", "<": "<",
                      "<=": "<=", ">": ">", ">=": ">="}

_STANDARD = {"integer", "real", "string", "date"}


def parse_ker(text: str, name: str = "schema") -> KerSchema:
    """Parse KER DDL *text* into a fresh :class:`KerSchema`."""
    parser = _Parser(TokenStream(_SCANNER.scan(text)), KerSchema(name))
    parser.parse()
    return parser.schema


class _Parser:
    def __init__(self, stream: TokenStream, schema: KerSchema):
        self.stream = stream
        self.schema = schema
        #: (child, parent, clauses) gathered before all types exist
        self._pending_isa: list[tuple[str, str,
                                      list[tuple[str, Interval]]]] = []

    def parse(self) -> None:
        while not self.stream.at_end():
            if self.stream.at_keyword("domain"):
                self._domain_definition()
            elif self.stream.at_keyword("object"):
                self._object_type_definition()
            elif self.stream.current.kind is TokenKind.IDENT:
                self._hierarchy_definition()
            else:
                self.stream.fail("expected a KER definition")
        self._resolve_pending_isa()

    # -- domains ---------------------------------------------------------

    def _domain_definition(self) -> None:
        self.stream.expect_keyword("domain")
        self.stream.accept_op(":")
        name = self.stream.expect_ident("domain name").text
        self.stream.expect_keyword("isa")
        base, parent, object_type = self._domain_reference()
        interval = None
        values = None
        if self.stream.accept_keyword("range"):
            interval = self._range_literal()
        elif self.stream.at_op("[") or self.stream.at_op("("):
            interval = self._range_literal()
        elif self.stream.accept_keyword("set"):
            self.stream.expect_keyword("of")
            values = self._set_literal()
        self.schema.add_domain(Domain(
            name, base=base, parent=parent, interval=interval,
            values=values, object_type=object_type))

    def _domain_reference(self):
        """Returns (base datatype | None, parent name | None, object type
        | None)."""
        token = self.stream.expect_ident("domain reference")
        word = token.text.lower()
        if word == "char":
            self.stream.expect_op("[")
            width = self.stream.advance()
            if width.kind is not TokenKind.NUMBER:
                self.stream.fail("expected a char width")
            self.stream.expect_op("]")
            return char(int(width.value)), None, None
        if word in _STANDARD:
            from repro.relational.datatypes import (
                INTEGER, REAL, DATE)
            mapping = {"integer": INTEGER, "real": REAL, "date": DATE,
                       "string": char(None)}
            return mapping[word], None, None
        if self.schema.has_object_type(token.text):
            return None, None, token.text
        return None, token.text, None

    def _range_literal(self) -> Interval:
        low_open = False
        if self.stream.accept_op("("):
            low_open = True
        else:
            self.stream.expect_op("[")
        low = self._value()
        self.stream.expect_op("..")
        high = self._value()
        high_open = False
        if self.stream.accept_op(")"):
            high_open = True
        else:
            self.stream.expect_op("]")
        return Interval(low, high, low_open=low_open, high_open=high_open)

    def _set_literal(self) -> list[Any]:
        self.stream.expect_op("{")
        values = [self._value()]
        while self.stream.accept_op(","):
            values.append(self._value())
        self.stream.expect_op("}")
        return values

    def _value(self) -> Any:
        token = self.stream.advance()
        if token.kind is TokenKind.NUMBER:
            return _number_value(token)
        if token.kind in (TokenKind.STRING, TokenKind.IDENT):
            return token.value
        self.stream.fail("expected a value")
        raise AssertionError("unreachable")

    # -- object types ----------------------------------------------------------

    def _object_type_definition(self) -> None:
        self.stream.expect_keyword("object")
        self.stream.expect_keyword("type")
        name = self.stream.expect_ident("object type name").text
        object_type = self.schema.ensure_object_type(name)
        while self.stream.at_keyword("has"):
            object_type.add_attribute(self._attribute())
        if self.stream.accept_keyword("with"):
            self._with_block(object_type)

    def _attribute(self) -> Attribute:
        self.stream.expect_keyword("has")
        is_key = self.stream.accept_keyword("key")
        self.stream.accept_op(":")
        name = self.stream.expect_ident("attribute name").text
        self.stream.expect_keyword("domain")
        self.stream.accept_op(":")
        base, parent, object_type = self._domain_reference()
        if base is not None:
            return Attribute(name, base, is_key=is_key)
        return Attribute(name, object_type or parent, is_key=is_key)

    # -- hierarchies -----------------------------------------------------------

    def _hierarchy_definition(self) -> None:
        name = self.stream.expect_ident("object type name").text
        if self.stream.accept_keyword("contains"):
            children = [self.stream.expect_ident("subtype name").text]
            while self.stream.accept_op(","):
                children.append(self.stream.expect_ident("subtype name").text)
            parent = self.schema.ensure_object_type(name)
            self.schema.declare_contains(name, children)
            while self.stream.at_keyword("has"):
                parent.add_attribute(self._attribute())
            if self.stream.accept_keyword("with"):
                self._with_block(parent)
            return
        if self.stream.accept_keyword("isa"):
            parent = self.stream.expect_ident("supertype name").text
            if not self.schema.has_object_type(parent):
                self.stream.fail(
                    f"supertype {parent!r} must be defined before "
                    f"{name!r} (attribute names in the derivation spec "
                    "are resolved against it)")
            owner = self.schema.object_type(parent)
            clauses: list[tuple[str, Interval]] = []
            if self.stream.accept_keyword("with"):
                clauses.append(self._membership_clause(owner))
                while self.stream.accept_keyword("and"):
                    clauses.append(self._membership_clause(owner))
            self._pending_isa.append((name, parent, clauses))
            return
        self.stream.fail(f"expected 'contains' or 'isa' after {name!r}")

    def _membership_clause(self, owner: ObjectType) -> tuple[str, Interval]:
        """One derivation-spec clause: ``Attr = const`` or a chain."""
        chain = self._comparison_chain(owner=owner, roles={})
        if chain is None:
            self.stream.fail("expected a derivation clause")
        variable, attribute, interval = chain
        if variable is not None:
            self.stream.fail("derivation clauses must not use role "
                             "variables")
        return attribute, interval

    def _resolve_pending_isa(self) -> None:
        for child, parent, raw_clauses in self._pending_isa:
            membership = []
            for attribute, interval in raw_clauses:
                owner = self._attribute_owner(parent, attribute)
                membership.append(
                    Clause(AttributeRef(owner, attribute), interval))
            self.schema.add_subtype(child, parent, membership)

    def _attribute_owner(self, type_name: str, attribute: str) -> str:
        """Nearest type in *type_name*'s ancestor chain (self first)
        declaring *attribute*."""
        chain = [type_name] + self.schema.ancestor_names(type_name)
        for candidate in chain:
            if self.schema.object_type(candidate).has_attribute(attribute):
                return candidate
        raise KerError(
            f"type {type_name} has no attribute {attribute!r} "
            "(searched the supertype chain)")

    # -- with-blocks -------------------------------------------------------------

    def _with_block(self, object_type: ObjectType) -> None:
        while True:
            if self.stream.at_keyword("if"):
                self._rule(object_type)
                continue
            if (self.stream.current.kind is TokenKind.IDENT
                    and not self._starts_definition()
                    and self.stream.peek().is_keyword("in")):
                self._range_constraint(object_type)
                continue
            break

    def _starts_definition(self) -> bool:
        current = self.stream.current
        if current.is_keyword("domain") or current.is_keyword("object"):
            return True
        nxt = self.stream.peek()
        return nxt.is_keyword("contains") or nxt.is_keyword("isa")

    def _range_constraint(self, object_type: ObjectType) -> None:
        attribute = self.stream.expect_ident("attribute name").text
        self.stream.expect_keyword("in")
        if self.stream.accept_keyword("set"):
            self.stream.expect_keyword("of")
            values = self._set_literal()
            object_type.range_constraints.append(
                DomainRangeConstraint(attribute, values=values))
            return
        if self.stream.accept_keyword("range"):
            pass
        interval = self._range_literal()
        if not object_type.has_attribute(attribute):
            raise KerError(
                f"range constraint on unknown attribute "
                f"{object_type.name}.{attribute}")
        object_type.range_constraints.append(
            DomainRangeConstraint(attribute, interval=interval))

    def _rule(self, object_type: ObjectType) -> None:
        self.stream.expect_keyword("if")
        roles: dict[str, str] = {}
        premises: list[tuple[str | None, str, Interval]] = []
        while True:
            role = self._try_role_definition()
            if role is not None:
                variable, type_name = role
                roles[variable.lower()] = type_name
            else:
                chain = self._comparison_chain(object_type, roles)
                if chain is None:
                    self.stream.fail("expected a rule premise")
                premises.append(chain)
            if not self.stream.accept_keyword("and"):
                break
        self.stream.expect_keyword("then")
        # Conclusion: `x isa SUB` (structure) or `Attr = const` (value).
        conclusion_role = self._try_role_definition()
        if conclusion_role is not None:
            variable, subtype = conclusion_role
            variable = variable.lower()
            # Unqualified premise attributes and undeclared role
            # variables default to the enclosing object type (the
            # Figure 5 listing relies on this, declaring its role only
            # in a comment).
            normalized = []
            for premise_variable, attribute, interval in premises:
                bound = (premise_variable or variable).lower()
                roles.setdefault(bound, object_type.name)
                normalized.append((bound, attribute, interval))
            roles.setdefault(variable, object_type.name)
            object_type.classification_rules.append(ClassificationRule(
                sorted(roles.items()), normalized, variable, subtype))
            return
        chain = self._comparison_chain(object_type, roles)
        if chain is None or not chain[2].is_point():
            self.stream.fail("rule conclusion must be `attr = constant` "
                             "or `var isa TYPE`")
        _variable, attribute, interval = chain
        object_type.constraint_rules.append(ConstraintRule(
            [(a, i) for _v, a, i in premises], attribute, interval))

    def _try_role_definition(self) -> tuple[str, str] | None:
        """``variable isa TYPE`` lookahead."""
        current = self.stream.current
        if (current.kind is TokenKind.IDENT
                and self.stream.peek().is_keyword("isa")):
            variable = self.stream.advance().text
            self.stream.expect_keyword("isa")
            type_name = self.stream.expect_ident("object type name").text
            return variable, type_name
        return None

    def _comparison_chain(self, owner: ObjectType | None,
                          roles: dict[str, str]
                          ) -> tuple[str | None, str, Interval] | None:
        """Parse ``a <= x.Attr <= b``, ``Attr = c``, ``x.Attr >= c`` etc.

        Returns ``(role variable | None, attribute name, interval)``.
        """
        first = self._operand(owner, roles)
        op_token = self.stream.current
        if (op_token.kind is not TokenKind.OP
                or op_token.text not in _COMPARISON_TOKENS):
            self.stream.fail("expected a comparison operator")
        self.stream.advance()
        op = _COMPARISON_TOKENS[op_token.text]
        second = self._operand(owner, roles)

        third = None
        chain_op = None
        nxt = self.stream.current
        if (nxt.kind is TokenKind.OP and nxt.text in _COMPARISON_TOKENS
                and _is_attribute(second)):
            chain_op = _COMPARISON_TOKENS[self.stream.advance().text]
            third = self._operand(owner, roles)

        if third is not None:
            # const OP attr OP const
            if _is_attribute(first) or _is_attribute(third):
                self.stream.fail("chained comparison must be "
                                 "constant OP attribute OP constant")
            if op not in ("<", "<=") or chain_op not in ("<", "<="):
                self.stream.fail("chained comparisons must use < or <=")
            variable, attribute = second[1], second[2]
            return variable, attribute, Interval(
                first[1], third[1],
                low_open=(op == "<"), high_open=(chain_op == "<"))

        if _is_attribute(first) and not _is_attribute(second):
            variable, attribute = first[1], first[2]
            return variable, attribute, Interval.from_comparison(
                op, second[1])
        if _is_attribute(second) and not _is_attribute(first):
            from repro.relational.expressions import FLIPPED_OP
            variable, attribute = second[1], second[2]
            return variable, attribute, Interval.from_comparison(
                FLIPPED_OP[op], first[1])
        self.stream.fail("comparison must relate an attribute to a constant")
        raise AssertionError("unreachable")

    def _operand(self, owner: ObjectType | None, roles: dict[str, str]):
        """Returns ('attr', variable|None, name) or ('const', value)."""
        token = self.stream.current
        if token.kind is TokenKind.NUMBER:
            self.stream.advance()
            return ("const", _number_value(token))
        if token.kind is TokenKind.STRING:
            self.stream.advance()
            return ("const", token.value)
        if token.kind is TokenKind.IDENT:
            self.stream.advance()
            if self.stream.accept_op("."):
                attribute = self.stream.expect_ident("attribute name").text
                return ("attr", token.text, attribute)
            # Bare identifier: attribute of the enclosing type or of a
            # role type wins over a string constant.
            if owner is not None and owner.has_attribute(token.text):
                return ("attr", None, token.text)
            if owner is not None and self._inherited_attribute(
                    owner, token.text):
                return ("attr", None, token.text)
            for type_name in roles.values():
                if self.schema.has_object_type(type_name) and (
                        self.schema.object_type(type_name)
                        .has_attribute(token.text)):
                    return ("attr", None, token.text)
            return ("const", token.value)
        self.stream.fail("expected an operand")
        raise AssertionError("unreachable")

    def _inherited_attribute(self, owner: ObjectType, name: str) -> bool:
        try:
            return any(a.name.lower() == name.lower()
                       for a in self.schema.attributes_of(owner.name))
        except KerError:
            return False


def _is_attribute(operand) -> bool:
    return operand[0] == "attr"


def _number_value(token: Token) -> Any:
    """Leading-zero integers denote code strings (ship classes)."""
    text = token.text
    if (isinstance(token.value, int) and len(text) > 1
            and text.startswith("0")):
        return text
    return token.value
