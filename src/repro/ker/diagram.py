"""Text renderings of KER schemas.

The paper's Figures 1-5 are diagrams of the KER model; this module
reproduces them as text artifacts:

* :func:`render_object_type` -- the Figure 1 block form;
* :func:`render_hierarchy` -- the Figure 2 type-hierarchy tree;
* :func:`render_schema` -- the whole schema, Appendix-B style;
* :func:`render_with_rules` -- the Figure 5 form: an object type with a
  ``with`` block of (induced) rules printed in ``x isa SUBTYPE`` style.
"""

from __future__ import annotations

from typing import Iterable

from repro.ker.model import KerSchema
from repro.rules.rule import Rule


def render_object_type(schema: KerSchema, name: str) -> str:
    """Figure 1 style::

        object type SUBMARINE
          has key: Id            domain: char[7]
          has:     Name          domain: SHIP_NAME
          with Displacement in [2000..30000]
    """
    object_type = schema.object_type(name)
    lines = [f"object type {object_type.name}"]
    width = max((len(a.name) for a in object_type.attributes), default=0)
    for attribute in object_type.attributes:
        keyword = "has key:" if attribute.is_key else "has:    "
        domain = (attribute.domain if isinstance(attribute.domain, str)
                  else attribute.domain.render())
        lines.append(f"  {keyword} {attribute.name.ljust(width)}"
                     f"  domain: {domain}")
    constraints = ([c.render() for c in object_type.range_constraints]
                   + [c.render() for c in object_type.constraint_rules]
                   + [c.render() for c in object_type.classification_rules])
    if constraints:
        lines.append("  with")
        lines.extend(f"    {text}" for text in constraints)
    return "\n".join(lines)


def render_hierarchy(schema: KerSchema, root: str,
                     _prefix: str = "") -> str:
    """ASCII tree of the type hierarchy rooted at *root* (Figure 2)."""
    lines = [root]
    children = schema.children_of(root)
    for index, child in enumerate(children):
        last = index == len(children) - 1
        branch = "`-- " if last else "|-- "
        continuation = "    " if last else "|   "
        subtree = render_hierarchy(schema, child).splitlines()
        lines.append(_prefix + branch + subtree[0])
        lines.extend(_prefix + continuation + line for line in subtree[1:])
    return "\n".join(lines)


def render_schema(schema: KerSchema) -> str:
    """Whole-schema dump: domains, object types, hierarchy links."""
    blocks: list[str] = []
    if schema.domains:
        blocks.append("\n".join(domain.render()
                                for domain in schema.domains.values()))
    for object_type in schema.object_types.values():
        if schema.parent_of(object_type.name) is not None and not (
                object_type.attributes):
            continue  # pure subtypes render via their links
        blocks.append(render_object_type(schema, object_type.name))
    links = list(schema.links())
    if links:
        blocks.append("\n".join(link.render() for link in links))
    return "\n\n".join(blocks)


def render_with_rules(schema: KerSchema, name: str,
                      rules: Iterable[Rule]) -> str:
    """Figure 5 style: the object type block with induced rules attached.

    Rules are printed ``if <premise> then x isa <subtype>`` when they
    classify into a named subtype, as Section 6 prints R1..R17.
    """
    header = render_object_type(schema, name)
    lines = [header, "  with /* induced rules */"]
    for rule in rules:
        lines.append(f"    {rule.render(isa_style=True)}")
    return "\n".join(lines)
