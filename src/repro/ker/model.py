"""KER model objects: domains, attributes, object types, hierarchies.

A :class:`KerSchema` gathers the whole application model: named domains
(derived from the four standard domains), object types with their
attributes and with-constraints, and the type hierarchy -- subtype links
with derivation specifications plus classification (structure) rules.

The type hierarchy is what "type inference" traverses: the inference
processor walks from a queried object type down to the subtypes whose
derivation specs or induced rules the query conditions imply.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import KerError
from repro.relational.datatypes import (
    DataType, INTEGER, REAL, DATE, char,
)
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.ker.constraints import (
    ClassificationRule, ConstraintRule, DomainRangeConstraint,
)

_STANDARD_DOMAINS: dict[str, DataType] = {
    "integer": INTEGER,
    "real": REAL,
    "date": DATE,
    "string": char(None),
}


class Domain:
    """A named value domain.

    Domains bottom out at a standard domain (``integer``, ``real``,
    ``string``/``char[n]``, ``date``) and may restrict it with a range or
    a value set, or may reference another named domain (``SHIP_NAME isa
    NAME``).  A domain may instead reference an *object type* (foreign
    key), in which case ``object_type`` is set and the value domain is
    that type's key domain.
    """

    def __init__(self, name: str, base: DataType | None = None,
                 parent: str | None = None,
                 interval: Interval | None = None,
                 values: Sequence[Any] | None = None,
                 object_type: str | None = None):
        if base is None and parent is None and object_type is None:
            raise KerError(f"domain {name} needs a base, parent or type")
        self.name = name
        self.base = base
        self.parent = parent
        self.interval = interval
        self.values = tuple(values) if values is not None else None
        self.object_type = object_type

    def render(self) -> str:
        if self.object_type:
            return f"domain: {self.name} isa object {self.object_type}"
        base = self.parent if self.parent else self.base.render()
        extra = ""
        if self.interval is not None:
            low_bracket = "(" if self.interval.low_open else "["
            high_bracket = ")" if self.interval.high_open else "]"
            extra = (f" range {low_bracket}{self.interval.low}.."
                     f"{self.interval.high}{high_bracket}")
        elif self.values is not None:
            extra = " set of {" + ", ".join(
                _render_value(v) for v in self.values) + "}"
        return f"domain: {self.name} isa {base}{extra}"

    def __repr__(self) -> str:
        return f"<Domain {self.render()}>"


def _render_value(value: Any) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)


class Attribute:
    """One ``has [key]`` attribute of an object type."""

    def __init__(self, name: str, domain: str | DataType,
                 is_key: bool = False):
        self.name = name
        self.domain = domain
        self.is_key = is_key

    @property
    def domain_name(self) -> str | None:
        return self.domain if isinstance(self.domain, str) else None

    def render(self) -> str:
        keyword = "has key:" if self.is_key else "has:"
        domain = (self.domain if isinstance(self.domain, str)
                  else self.domain.render())
        return f"{keyword} {self.name}  domain: {domain}"

    def __repr__(self) -> str:
        return f"<Attribute {self.name}>"


class ObjectType:
    """An entity or relationship type (both model as object types)."""

    def __init__(self, name: str, attributes: Sequence[Attribute] = (),
                 kind: str = "entity"):
        self.name = name
        self.attributes: list[Attribute] = list(attributes)
        self.kind = kind
        self.range_constraints: list[DomainRangeConstraint] = []
        self.constraint_rules: list[ConstraintRule] = []
        self.classification_rules: list[ClassificationRule] = []

    def attribute(self, name: str) -> Attribute | None:
        for attribute in self.attributes:
            if attribute.name.lower() == name.lower():
                return attribute
        return None

    def has_attribute(self, name: str) -> bool:
        return self.attribute(name) is not None

    def key_attributes(self) -> list[Attribute]:
        return [a for a in self.attributes if a.is_key]

    def add_attribute(self, attribute: Attribute) -> None:
        if self.has_attribute(attribute.name):
            raise KerError(
                f"object type {self.name} already has attribute "
                f"{attribute.name!r}")
        self.attributes.append(attribute)

    def __repr__(self) -> str:
        return f"<ObjectType {self.name}, {len(self.attributes)} attrs>"


class SubtypeLink:
    """``child isa parent with <derivation>``.

    ``membership`` is the derivation specification as clauses over
    *relation-qualified* attributes (e.g. ``CLASS.Type = "SSBN"``); it
    may be empty for purely nominal subtypes.
    """

    def __init__(self, child: str, parent: str,
                 membership: Sequence[Clause] = (),
                 source: str = "isa"):
        self.child = child
        self.parent = parent
        self.membership = tuple(membership)
        self.source = source

    def render(self) -> str:
        """Parseable DDL form; membership attributes render unqualified
        (they refer to the supertype chain by construction) and string
        values quoted (the Appendix B convention)."""
        from repro.ker.constraints import render_interval_ddl
        text = f"{self.child} isa {self.parent}"
        if self.membership:
            text += " with " + " and ".join(
                render_interval_ddl(clause.interval,
                                    clause.attribute.attribute)
                for clause in self.membership)
        return text

    def __repr__(self) -> str:
        return f"<SubtypeLink {self.render()}>"


class KerSchema:
    """A complete KER application schema."""

    def __init__(self, name: str = "schema"):
        self.name = name
        self.domains: dict[str, Domain] = {}
        self.object_types: dict[str, ObjectType] = {}
        self._links: dict[str, SubtypeLink] = {}   # child -> link
        self._children: dict[str, list[str]] = {}  # parent -> children

    # -- domains -------------------------------------------------------------

    def add_domain(self, domain: Domain) -> Domain:
        key = domain.name.lower()
        if key in self.domains:
            raise KerError(f"domain {domain.name!r} already defined")
        self.domains[key] = domain
        return domain

    def domain(self, name: str) -> Domain | None:
        return self.domains.get(name.lower())

    def resolve_datatype(self, domain: str | DataType) -> DataType:
        """Resolve a domain reference to its base data type."""
        if isinstance(domain, DataType):
            return domain
        name = domain.lower()
        if name in _STANDARD_DOMAINS:
            return _STANDARD_DOMAINS[name]
        named = self.domains.get(name)
        if named is not None:
            if named.object_type:
                target = self.object_type(named.object_type)
                keys = target.key_attributes()
                if len(keys) != 1:
                    raise KerError(
                        f"domain {domain!r} references type "
                        f"{named.object_type} without a single key")
                return self.resolve_datatype(keys[0].domain)
            if named.base is not None:
                return named.base
            return self.resolve_datatype(named.parent)
        if name in self.object_types:
            target = self.object_types[name]
            keys = target.key_attributes()
            if len(keys) != 1:
                raise KerError(
                    f"attribute domain {domain!r} references object type "
                    f"{target.name} without a single-attribute key")
            return self.resolve_datatype(keys[0].domain)
        raise KerError(f"unknown domain {domain!r}")

    def domain_interval(self, domain: str | DataType) -> Interval | None:
        """The value-range restriction of a (possibly derived) domain."""
        if isinstance(domain, DataType):
            return None
        named = self.domains.get(domain.lower())
        if named is None:
            return None
        if named.interval is not None:
            return named.interval
        if named.parent is not None:
            return self.domain_interval(named.parent)
        return None

    # -- object types -----------------------------------------------------------

    def add_object_type(self, object_type: ObjectType) -> ObjectType:
        key = object_type.name.lower()
        if key in self.object_types:
            raise KerError(f"object type {object_type.name!r} already defined")
        self.object_types[key] = object_type
        return object_type

    def object_type(self, name: str) -> ObjectType:
        try:
            return self.object_types[name.lower()]
        except KeyError:
            raise KerError(f"unknown object type {name!r}") from None

    def has_object_type(self, name: str) -> bool:
        return name.lower() in self.object_types

    def ensure_object_type(self, name: str, kind: str = "entity"
                           ) -> ObjectType:
        if not self.has_object_type(name):
            return self.add_object_type(ObjectType(name, kind=kind))
        return self.object_type(name)

    # -- hierarchy ----------------------------------------------------------------

    def add_subtype(self, child: str, parent: str,
                    membership: Sequence[Clause] = (),
                    source: str = "isa") -> SubtypeLink:
        """Declare ``child isa parent with membership``.

        The child object type is created if it does not exist yet
        (subtypes routinely add no attributes of their own).
        """
        self.object_type(parent)  # must exist
        self.ensure_object_type(child)
        key = child.lower()
        existing = self._links.get(key)
        if existing is not None:
            # `CLASS contains SSBN, SSN` followed by `SSBN isa CLASS with
            # Type = "SSBN"` refines the same link with its derivation
            # spec; a different parent is a real conflict.
            if existing.parent.lower() != parent.lower():
                raise KerError(
                    f"{child!r} already has a supertype "
                    f"({existing.parent})")
            if membership and not existing.membership:
                existing.membership = tuple(membership)
                return existing
            if not membership:
                return existing
            raise KerError(
                f"{child!r} already has a derivation specification")
        if key == parent.lower() or key in {
                name.lower() for name in self.ancestor_names(parent)}:
            raise KerError(
                f"subtype cycle: {parent!r} already descends from "
                f"{child!r}")
        link = SubtypeLink(child, parent, membership, source=source)
        self._links[key] = link
        self._children.setdefault(parent.lower(), []).append(child)
        return link

    def declare_contains(self, parent: str, children: Sequence[str],
                         memberships: dict[str, Sequence[Clause]] | None = None
                         ) -> list[SubtypeLink]:
        """``parent contains child1, child2, ...`` -- disjoint subtypes."""
        memberships = memberships or {}
        return [
            self.add_subtype(child, parent,
                             memberships.get(child, ()), source="contains")
            for child in children
        ]

    def link_of(self, child: str) -> SubtypeLink | None:
        return self._links.get(child.lower())

    def parent_of(self, child: str) -> str | None:
        link = self._links.get(child.lower())
        return link.parent if link else None

    def children_of(self, parent: str) -> list[str]:
        return list(self._children.get(parent.lower(), ()))

    def ancestor_names(self, name: str) -> list[str]:
        """Proper ancestors, nearest first."""
        out: list[str] = []
        seen: set[str] = {name.lower()}
        current = self.parent_of(name)
        while current is not None:
            if current.lower() in seen:
                raise KerError(f"subtype cycle through {current!r}")
            out.append(current)
            seen.add(current.lower())
            current = self.parent_of(current)
        return out

    def descendant_names(self, name: str) -> list[str]:
        """Proper descendants, breadth-first."""
        out: list[str] = []
        frontier = self.children_of(name)
        while frontier:
            child = frontier.pop(0)
            out.append(child)
            frontier.extend(self.children_of(child))
        return out

    def is_subtype_of(self, child: str, parent: str) -> bool:
        if child.lower() == parent.lower():
            return True
        return parent.lower() in {
            name.lower() for name in self.ancestor_names(child)}

    def root_names(self) -> list[str]:
        return [t.name for t in self.object_types.values()
                if self.parent_of(t.name) is None]

    # -- inheritance ----------------------------------------------------------------

    def attributes_of(self, name: str) -> list[Attribute]:
        """Own attributes plus inherited ones (own definitions win).

        "A subtype inherits all the properties of its supertypes, unless
        some of the properties have been redefined in the subtype."
        """
        chain = [self.object_type(name)] + [
            self.object_type(ancestor) for ancestor in self.ancestor_names(
                name)]
        out: list[Attribute] = []
        seen: set[str] = set()
        for object_type in chain:
            for attribute in object_type.attributes:
                if attribute.name.lower() not in seen:
                    seen.add(attribute.name.lower())
                    out.append(attribute)
        return out

    # -- membership knowledge -----------------------------------------------------

    def membership_clauses(self, subtype: str) -> tuple[Clause, ...]:
        link = self._links.get(subtype.lower())
        return link.membership if link else ()

    def subtype_for_clause(self, clause: Clause) -> str | None:
        """The subtype whose (single-clause) derivation spec equals
        *clause* -- lets the ILS tag induced consequences with subtype
        names (``Class = "0103"`` realizes ``x isa C0103``)."""
        for link in self._links.values():
            if len(link.membership) == 1 and link.membership[0] == clause:
                return link.child
        return None

    def subtype_for_interval(self, attribute: AttributeRef,
                             interval: Interval) -> str | None:
        """The subtype whose derivation spec on *attribute* contains
        *interval* entirely (e.g. SonarType values inside BQS)."""
        best: str | None = None
        for link in self._links.values():
            for clause in link.membership:
                if clause.attribute != attribute:
                    continue
                if clause.interval.contains(interval):
                    # Prefer the most specific (deepest) subtype.
                    if best is None or self.is_subtype_of(link.child, best):
                        best = link.child
        return best

    # -- iteration ----------------------------------------------------------------

    def links(self) -> Iterable[SubtypeLink]:
        return list(self._links.values())

    def __repr__(self) -> str:
        return (f"<KerSchema {self.name}: {len(self.object_types)} types, "
                f"{len(self._links)} subtype links>")
