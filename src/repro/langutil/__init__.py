"""Shared lexing machinery for the three little languages in the package
(QUEL, the SQL subset, and the KER DDL of Appendix A)."""

from repro.langutil.tokens import Token, TokenKind
from repro.langutil.scanner import Scanner, TokenStream

__all__ = ["Token", "TokenKind", "Scanner", "TokenStream"]
