"""A small configurable scanner plus a pull-style token stream.

The scanner recognizes identifiers, numbers, single- or double-quoted
strings, C-style ``/* ... */`` comments, ``--``-to-end-of-line comments,
and a configurable operator set (longest match first).  All three query
languages in the package are lexically in this family; each parser
instantiates the scanner with its own operator table.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ParseError
from repro.langutil.tokens import Token, TokenKind

#: Operators shared by QUEL/SQL/KER (order irrelevant; matching sorts by
#: length so multi-character operators win).
DEFAULT_OPERATORS = (
    "<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".", "*", "+",
    "-", "/", "[", "]", "{", "}", ":", ";", "..",
)

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789-")
_DIGITS = set("0123456789")


class Scanner:
    """Tokenize *text* into a list of :class:`Token`.

    Parameters
    ----------
    operators:
        Operator/punctuation spellings to recognize.
    ident_continue_dash:
        Whether ``-`` may appear inside identifiers.  The ship database
        uses identifiers like ``BQS-04`` and ``CLASS-0101`` (the paper
        writes sonar names unquoted in rules), so the KER scanner allows
        it; QUEL and SQL keep ``-`` as an operator.
    """

    def __init__(self, operators: Sequence[str] = DEFAULT_OPERATORS,
                 ident_continue_dash: bool = False):
        self.operators = sorted(set(operators), key=len, reverse=True)
        self.ident_continue_dash = ident_continue_dash

    def scan(self, text: str) -> list[Token]:
        tokens: list[Token] = []
        line = 1
        column = 1
        i = 0
        n = len(text)

        def advance(count: int) -> None:
            nonlocal i, line, column
            for _ in range(count):
                if i < n and text[i] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                i += 1

        while i < n:
            ch = text[i]
            if ch in " \t\r\n":
                advance(1)
                continue
            if text.startswith("/*", i):
                end = text.find("*/", i + 2)
                if end < 0:
                    raise ParseError("unterminated comment", line, column)
                advance(end + 2 - i)
                continue
            if text.startswith("--", i):
                end = text.find("\n", i)
                advance((end if end >= 0 else n) - i)
                continue
            if ch in ('"', "'"):
                tokens.append(self._scan_string(text, i, line, column))
                advance(len(tokens[-1].text))
                continue
            if ch in _DIGITS or (
                    ch == "." and i + 1 < n and text[i + 1] in _DIGITS):
                token = self._scan_number(text, i, line, column)
                tokens.append(token)
                advance(len(token.text))
                continue
            if ch in _IDENT_START:
                token = self._scan_ident(text, i, line, column)
                tokens.append(token)
                advance(len(token.text))
                continue
            op = next((op for op in self.operators
                       if text.startswith(op, i)), None)
            if op is not None:
                tokens.append(Token(TokenKind.OP, op, op, line, column))
                advance(len(op))
                continue
            raise ParseError(f"unexpected character {ch!r}", line, column)
        tokens.append(Token(TokenKind.EOF, "", None, line, column))
        return tokens

    def _scan_string(self, text: str, start: int, line: int,
                     column: int) -> Token:
        quote = text[start]
        i = start + 1
        out: list[str] = []
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                out.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                raw = text[start:i + 1]
                return Token(TokenKind.STRING, raw, "".join(out),
                             line, column)
            out.append(ch)
            i += 1
        raise ParseError("unterminated string literal", line, column)

    def _scan_number(self, text: str, start: int, line: int,
                     column: int) -> Token:
        i = start
        n = len(text)
        while i < n and text[i] in _DIGITS:
            i += 1
        is_real = False
        # A '..' after digits is a range operator, not a decimal point.
        if i < n and text[i] == "." and not text.startswith("..", i):
            if i + 1 < n and text[i + 1] in _DIGITS:
                is_real = True
                i += 1
                while i < n and text[i] in _DIGITS:
                    i += 1
        if i < n and text[i] in "eE":
            j = i + 1
            if j < n and text[j] in "+-":
                j += 1
            if j < n and text[j] in _DIGITS:
                is_real = True
                i = j
                while i < n and text[i] in _DIGITS:
                    i += 1
        raw = text[start:i]
        value = float(raw) if is_real else int(raw)
        return Token(TokenKind.NUMBER, raw, value, line, column)

    def _scan_ident(self, text: str, start: int, line: int,
                    column: int) -> Token:
        i = start + 1
        n = len(text)
        allowed = _IDENT_CONT if self.ident_continue_dash else (
            _IDENT_CONT - {"-"})
        while i < n and text[i] in allowed:
            i += 1
        # Identifiers never end with '-' (so `Class - 1` lexes sanely).
        while self.ident_continue_dash and text[i - 1] == "-":
            i -= 1
        raw = text[start:i]
        return Token(TokenKind.IDENT, raw, raw, line, column)


class TokenStream:
    """Pull-style cursor over a token list with parser conveniences."""

    def __init__(self, tokens: Iterable[Token]):
        self._tokens = list(tokens)
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        return any(self.current.is_keyword(word) for word in words)

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            self.fail(f"expected keyword {word!r}")
        return self.advance()

    def at_op(self, *ops: str) -> bool:
        return any(self.current.is_op(op) for op in ops)

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            self.fail(f"expected {op!r}")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> Token:
        if self.current.kind is not TokenKind.IDENT:
            self.fail(f"expected {what}")
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind is TokenKind.EOF

    def fail(self, message: str) -> None:
        token = self.current
        shown = token.text or "<eof>"
        raise ParseError(f"{message}, found {shown!r}",
                         token.line, token.column)
