"""Token types shared by the QUEL, SQL and KER-DDL scanners."""

from __future__ import annotations

import enum
from typing import Any


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"        #: identifier (case preserved; keywords match CI)
    NUMBER = "number"      #: integer or real literal (value is int/float)
    STRING = "string"      #: quoted string literal (value is the content)
    OP = "op"              #: operator or punctuation
    EOF = "eof"            #: end of input


class Token:
    """One lexical token with its 1-based source position."""

    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind: TokenKind, text: str, value: Any,
                 line: int, column: int):
        self.kind = kind
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword check against an identifier token."""
        return self.kind is TokenKind.IDENT and self.text.lower() == word

    def is_op(self, op: str) -> bool:
        return self.kind is TokenKind.OP and self.text == op

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r})"
