"""Observability substrate: tracing spans, metrics, slow-query log.

Everything hangs off **one flag**.  Observability is *disabled* by
default and every helper here -- :func:`span`, :func:`counter`,
:func:`observe_query` -- collapses to a constant-time no-op until
:func:`enable` flips the flag, so instrumented hot paths cost nothing
in the default configuration and call sites never branch themselves::

    from repro import obs

    with obs.span("plan.select", tables=len(scope.bindings)) as sp:
        ...                       # no-op span when disabled
        sp.set(notes=len(notes))
    obs.counter("plans_total", "plans produced").inc()

Layers:

* :mod:`repro.obs.trace` -- nested :class:`~repro.obs.trace.Span`
  recording over monotonic clocks, ring-buffer retention, JSONL export.
* :mod:`repro.obs.metrics` -- counters / gauges / histograms with a
  Prometheus text dump.
* :mod:`repro.obs.slowlog` -- over-threshold query capture.

The module-level singletons are process-wide on purpose (one registry
to scrape, one trace buffer to export); :func:`reset` restores a clean
slate for tests.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import NULL_SPAN, Span, Tracer, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "cache_event",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "metrics",
    "observe_query",
    "reset",
    "slow_queries",
    "span",
    "traced",
    "tracer",
]


class _NullCounter:
    """Absorbs ``inc``/``set``/``observe`` when observability is off."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        return None

    def dec(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()

#: The single observability flag (module-private; use enable/disable).
_enabled = False

_tracer = Tracer()
_metrics = MetricsRegistry()
_slowlog = SlowQueryLog()


def enable() -> None:
    """Turn instrumentation on, process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (recorded data is kept)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear every recorded span, metric and slow query (flag kept)."""
    _tracer.clear()
    _metrics.reset()
    _slowlog.clear()


# -- accessors (always live, for dumping even after disable) ---------------


def tracer() -> Tracer:
    return _tracer


def metrics() -> MetricsRegistry:
    return _metrics


def slow_queries() -> SlowQueryLog:
    return _slowlog


# -- guarded instrumentation helpers ---------------------------------------


def span(name: str, **attributes: Any):
    """A tracer span, or the shared no-op span when disabled."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attributes)


def record_span(name: str, start_s: float, end_s: float,
                **attributes: Any) -> None:
    """Record a caller-timed span (no-op when disabled)."""
    if _enabled:
        _tracer.record(name, start_s, end_s, **attributes)


def counter(name: str, help: str = "", **labels: Any):
    if not _enabled:
        return _NULL_COUNTER
    return _metrics.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels: Any):
    if not _enabled:
        return _NULL_COUNTER
    return _metrics.gauge(name, help, **labels)


def histogram(name: str, help: str = "", **labels: Any):
    if not _enabled:
        return _NULL_COUNTER
    return _metrics.histogram(name, help, **labels)


def cache_event(level: str, result: str) -> None:
    """Count one query-cache probe: ``level`` is ``plan`` / ``result``
    / ``ask`` / ``infer``, ``result`` is ``hit`` / ``miss`` /
    ``bypass`` (no-op when disabled).  One call keeps the cache's hot
    path from paying label-handling costs while observability is off.
    """
    if _enabled:
        _metrics.counter(
            "query_cache_requests_total",
            "query-cache probes by level and outcome",
            level=level, result=result).inc()


def observe_query(statement: str, duration_s: float,
                  rows: int | None = None,
                  kind: str = "select") -> None:
    """Feed one finished query into the latency histogram and the
    slow-query log (no-op when disabled)."""
    if not _enabled:
        return
    _metrics.histogram(
        "query_seconds", "end-to-end query latency",
        kind=kind).observe(duration_s)
    if _slowlog.observe(statement, duration_s, rows):
        _metrics.counter(
            "slow_queries_total",
            "queries over the slow-query threshold").inc()
