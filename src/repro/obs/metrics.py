"""A process-wide metrics registry: counters, gauges, histograms.

Metrics are named like Prometheus series -- a base name plus an
optional, sorted label set -- and the registry renders both a flat
``snapshot()`` mapping (``"index_cache_requests_total{result=hit}" ->
3``) for programmatic use and a Prometheus text-format dump
(``render_prometheus()``) for scraping.

Instrumented code does not talk to this module directly; it goes
through the :mod:`repro.obs` facade (``obs.counter(...)``), which
short-circuits to a no-op when observability is disabled.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Default histogram bucket upper bounds, in seconds (query latencies).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str,
                 label_key: tuple[tuple[str, str], ...]) -> str:
    if not label_key:
        return name
    body = ",".join(f'{key}="{value}"' for key, value in label_key)
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def series(self) -> list[tuple[str, float]]:
        return [(_series_name(self.name, self.labels), self.value)]


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def series(self) -> list[tuple[str, float]]:
        return [(_series_name(self.name, self.labels), self.value)]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an observation lands in every bucket
    whose bound is >= the value, plus the implicit ``+Inf`` bucket.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
        self.counts[-1] += 1

    def series(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        for index, bound in enumerate(self.buckets):
            labels = self.labels + (("le", repr(float(bound))),)
            out.append((_series_name(self.name + "_bucket", labels),
                        self.counts[index]))
        out.append((_series_name(
            self.name + "_bucket", self.labels + (("le", "+Inf"),)),
            self.counts[-1]))
        out.append((_series_name(self.name + "_sum", self.labels),
                    self.total))
        out.append((_series_name(self.name + "_count", self.labels),
                    self.count))
        return out


class MetricsRegistry:
    """Get-or-create registry of metric instruments.

    One instrument exists per (name, label set); helps (descriptions)
    are kept per base name for the Prometheus dump.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]],
                            Counter | Gauge | Histogram] = {}
        self._helps: dict[str, str] = {}

    def _get(self, factory, name: str, help: str,
             labels: dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}")
        if help:
            self._helps.setdefault(name, help)
        return metric

    def counter(self, name: str, help: str = "",
                **labels: Any) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- reading -----------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (0 if never touched)."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read its series")
        return metric.value

    def snapshot(self) -> dict[str, float]:
        """Flat ``series name -> value`` mapping of everything."""
        out: dict[str, float] = {}
        for metric in self._metrics.values():
            out.update(metric.series())
        return dict(sorted(out.items()))

    def render(self) -> str:
        """Human-oriented table of every series."""
        rows = self.snapshot()
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name in rows)
        return "\n".join(f"{name.ljust(width)}  {_fmt(value)}"
                         for name, value in rows.items())

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (``# HELP``/``# TYPE``)."""
        by_name: dict[str, list[Counter | Gauge | Histogram]] = {}
        for (name, _labels), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append(metric)
        lines: list[str] = []
        for name, metrics in by_name.items():
            help_text = self._helps.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metrics[0].kind}")
            for metric in metrics:
                for series, value in metric.series():
                    lines.append(f"{series} {_fmt(value)}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._metrics.clear()
        self._helps.clear()


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))
