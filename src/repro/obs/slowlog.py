"""Slow-query log: queries whose total latency crossed a threshold.

Entries are kept in a bounded ring buffer, newest last, each recording
the statement text, the measured duration, the result cardinality and a
monotonic timestamp (ordering, not wall clock).  The threshold is
runtime-configurable (``\\slowlog 250`` in the shell, or
:meth:`SlowQueryLog.set_threshold`); recording is driven by the
:mod:`repro.obs` facade, so a disabled observability layer records
nothing.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import NamedTuple, TextIO

#: Default threshold: 100ms, far above any ship-database query but low
#: enough to catch accidental full scans over synthetic workloads.
DEFAULT_THRESHOLD_S = 0.1

#: Retained entries.
DEFAULT_CAPACITY = 256


class SlowQuery(NamedTuple):
    """One over-threshold query."""

    statement: str
    duration_s: float
    rows: int | None
    recorded_s: float  # monotonic capture time

    def render(self) -> str:
        rows = "?" if self.rows is None else str(self.rows)
        return (f"{self.duration_s * 1000:8.2f}ms  {rows:>6} rows  "
                f"{self.statement}")


class SlowQueryLog:
    """Ring buffer of queries slower than the configured threshold."""

    def __init__(self, threshold_s: float = DEFAULT_THRESHOLD_S,
                 capacity: int = DEFAULT_CAPACITY):
        self.threshold_s = threshold_s
        self.entries: deque[SlowQuery] = deque(maxlen=capacity)

    def set_threshold(self, threshold_s: float) -> None:
        if threshold_s < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold_s = threshold_s

    def observe(self, statement: str, duration_s: float,
                rows: int | None = None) -> bool:
        """Record *statement* if it crossed the threshold; returns
        whether it did."""
        if duration_s < self.threshold_s:
            return False
        self.entries.append(SlowQuery(statement, duration_s, rows,
                                      time.perf_counter()))
        return True

    def render(self) -> str:
        if not self.entries:
            return (f"(no queries over "
                    f"{self.threshold_s * 1000:.0f}ms recorded)")
        lines = [f"slow queries (threshold "
                 f"{self.threshold_s * 1000:.0f}ms):"]
        lines.extend(entry.render() for entry in self.entries)
        return "\n".join(lines)

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- export / reload ----------------------------------------------------

    def export_jsonl(self, destination: "str | TextIO") -> int:
        """Write the retained entries as JSON Lines; returns the count."""
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                return self.export_jsonl(handle)
        count = 0
        for entry in self.entries:
            destination.write(json.dumps(entry._asdict()) + "\n")
            count += 1
        return count

    def load_jsonl(self, source: "str | TextIO") -> tuple[int, bool]:
        """Append entries from a JSONL dump, tolerating a torn final
        line (the file may come from a crashed process).  Returns
        ``(loaded_count, torn_tail)``."""
        from repro.obs.trace import read_jsonl_tolerant
        records, torn = read_jsonl_tolerant(source)
        count = 0
        for record in records:
            try:
                self.entries.append(SlowQuery(
                    str(record["statement"]),
                    float(record["duration_s"]),
                    None if record.get("rows") is None
                    else int(record["rows"]),
                    float(record.get("recorded_s", 0.0))))
            except (KeyError, TypeError, ValueError):
                torn = True  # malformed record: drop, keep loading
                continue
            count += 1
        return count, torn
