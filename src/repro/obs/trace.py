"""Tracing spans over monotonic clocks.

A :class:`Span` is one timed region of work -- planning a query,
executing one plan node, a forward-chaining round -- with free-form
attributes attached.  Spans nest: the :class:`Tracer` keeps an active
stack, so a span opened while another is open records that parent, and
EXPLAIN-style consumers can reconstruct the tree from ``parent_id`` and
``depth``.

Completed spans land in a bounded ring buffer (oldest evicted first), so
a long-running process never grows without bound; :meth:`Tracer.export_jsonl`
dumps the retained window one JSON object per line.

All timestamps come from :func:`time.perf_counter` (monotonic, never
jumps backwards); wall-clock anchoring is deliberately out of scope.

The tracer itself never checks the global observability flag -- callers
go through :func:`repro.obs.span`, which returns the shared no-op span
when observability is disabled, keeping instrumented code on a single
code path.
"""

from __future__ import annotations

import json
import time
from collections import deque
from functools import wraps
from typing import Any, Callable, Iterator, TextIO

#: Default ring-buffer capacity (completed spans retained).
DEFAULT_CAPACITY = 4096


class Span:
    """One timed region with attributes.

    ``end_s`` is ``None`` while the span is open; :attr:`duration_s`
    then measures up to now.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "start_s",
                 "end_s", "attributes")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 depth: int, attributes: dict[str, Any]):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self.attributes = attributes

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
        }

    def render(self) -> str:
        attrs = " ".join(f"{key}={value!r}"
                         for key, value in self.attributes.items())
        text = (f"{'  ' * self.depth}{self.name}  "
                f"{self.duration_s * 1000:.3f}ms")
        return f"{text}  {attrs}" if attrs else text

    def __repr__(self) -> str:
        return (f"<Span {self.name} {self.duration_s * 1000:.3f}ms "
                f"{self.attributes!r}>")


class _NullSpan:
    """Shared do-nothing span: the disabled-observability fast path.

    Supports the same surface as :class:`Span` uses in instrumented
    code (context manager plus :meth:`set`), so call sites never branch
    on whether observability is on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


#: The singleton no-op span.
NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager pairing a :class:`Span` with its tracer."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self.tracer.finish(self.span)


class Tracer:
    """Nested-span recorder with ring-buffer retention."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.spans: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _OpenSpan:
        """Open a nested span::

            with tracer.span("plan.select", tables=2) as span:
                ...
                span.set(notes=len(notes))
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._next_id,
                    parent.span_id if parent is not None else None,
                    parent.depth + 1 if parent is not None else 0,
                    attributes)
        self._next_id += 1
        self._stack.append(span)
        return _OpenSpan(self, span)

    def finish(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: out-of-order exit
            self._stack.remove(span)
        self.spans.append(span)

    def record(self, name: str, start_s: float, end_s: float,
               **attributes: Any) -> Span:
        """Append an already-timed span (measured by the caller, e.g. a
        plan node that timed its own ``execute``)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._next_id,
                    parent.span_id if parent is not None else None,
                    parent.depth + 1 if parent is not None else 0,
                    attributes)
        self._next_id += 1
        span.start_s = start_s
        span.end_s = end_s
        self.spans.append(span)
        return span

    # -- inspection --------------------------------------------------------

    def tail(self, count: int = 20) -> list[Span]:
        """The most recent *count* completed spans, oldest first."""
        if count <= 0:
            return []
        return list(self.spans)[-count:]

    def named(self, prefix: str) -> list[Span]:
        """Completed spans whose name starts with *prefix*."""
        return [span for span in self.spans
                if span.name.startswith(prefix)]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()

    # -- export ------------------------------------------------------------

    def export_jsonl(self, destination: "str | TextIO") -> int:
        """Write retained spans as JSON Lines; returns the span count.

        *destination* is a path or an open text stream.
        """
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                return self.export_jsonl(handle)
        count = 0
        for span in self.spans:
            destination.write(json.dumps(span.as_dict(),
                                         default=repr) + "\n")
            count += 1
        return count


def read_jsonl_tolerant(source: "str | TextIO",
                        ) -> tuple[list[dict], bool]:
    """Parse a JSONL export, tolerating a torn final line.

    A process killed mid-export (or mid-append) leaves a partial last
    line; diagnostics must survive that, so the torn line is dropped and
    flagged rather than raising.  Returns ``(records, torn_tail)`` --
    ``torn_tail`` is True when trailing non-JSON content was discarded.
    Invalid lines *before* valid ones are also counted as torn content
    but never abort the load: observability data is advisory, losing a
    line must not lose the file.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_jsonl_tolerant(handle)
    records: list[dict] = []
    torn = False
    for line in source:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            torn = True
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            torn = True
    return records, torn


def load_jsonl(source: "str | TextIO") -> tuple[list[dict], bool]:
    """Reload a :meth:`Tracer.export_jsonl` dump as span dicts;
    see :func:`read_jsonl_tolerant` for the torn-tail semantics."""
    return read_jsonl_tolerant(source)


def traced(name: str | None = None,
           span_factory: Callable[..., Any] | None = None):
    """Decorator tracing every call of the wrapped function.

    *span_factory* defaults to :func:`repro.obs.span` (resolved lazily so
    enabling/disabling observability after import is honored)::

        @traced("induction.induce_one")
        def induce_one(self, scheme): ...
    """

    def decorate(function: Callable) -> Callable:
        span_name = name or function.__qualname__

        @wraps(function)
        def wrapper(*args: Any, **kwargs: Any):
            factory = span_factory
            if factory is None:
                from repro import obs
                factory = obs.span
            with factory(span_name):
                return function(*args, **kwargs)

        return wrapper

    return decorate
