"""Cost-based query planning with rule-driven semantic optimization.

Layers (bottom up):

* :mod:`repro.plan.stats` -- per-relation statistics snapshots
  (row counts, distinct counts, min/max, equi-width histograms), cached
  and invalidated through ``Catalog.stats_version()``.
* :mod:`repro.plan.plans` -- the plan-node hierarchy (scans, index
  scans, filter, hash join, product, project) with SimpleDB-style cost
  accessors next to execution.
* :mod:`repro.plan.semantic` -- interval reasoning over the induced
  rule base: contradiction proofs and range tightening.
* :mod:`repro.plan.planner` -- puts it together: predicate pushdown,
  access-path selection, greedy join ordering.
* :mod:`repro.plan.explain` -- EXPLAIN / EXPLAIN ANALYZE rendering
  with estimated vs. actual cardinalities and measured per-node wall
  times.

Planning and node execution are traced and counted through the
:mod:`repro.obs` facade (no-ops unless observability is enabled).
"""

from repro.plan.explain import explain_select, render_plan
from repro.plan.planner import PlannedQuery, plan_select
from repro.plan.plans import (
    EmptyPlan, FilterPlan, HashJoinPlan, IndexScanPlan, Plan, ProductPlan,
    ProjectPlan, TableScanPlan,
)
from repro.plan.semantic import SemanticNote, SemanticResult, analyze
from repro.plan.stats import (
    ColumnStats, Histogram, StatisticsCatalog, TableStats, statistics,
)

__all__ = [
    "ColumnStats",
    "EmptyPlan",
    "FilterPlan",
    "HashJoinPlan",
    "Histogram",
    "IndexScanPlan",
    "Plan",
    "PlannedQuery",
    "ProductPlan",
    "ProjectPlan",
    "SemanticNote",
    "SemanticResult",
    "StatisticsCatalog",
    "TableScanPlan",
    "TableStats",
    "analyze",
    "explain_select",
    "plan_select",
    "render_plan",
    "statistics",
]
