"""EXPLAIN rendering: the chosen plan tree with estimated vs. actual
cardinalities, prefixed by any semantic rewrites the planner applied.

``EXPLAIN SELECT ...`` both plans *and* runs the statement, so every
line shows the cost model's estimate next to the true row count --
the fastest way to spot a bad selectivity guess.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.rules.ruleset import RuleSet
from repro.sql import ast
from repro.plan.plans import Plan
from repro.plan.planner import PlannedQuery, plan_select


def _format_rows(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def render_plan(plan: Plan, include_actual: bool = False) -> str:
    """Indented one-line-per-node rendering of a plan tree."""
    lines: list[str] = []

    def walk(node: Plan, depth: int) -> None:
        counts = f"est {_format_rows(node.records_output())} rows"
        if include_actual and node.actual_rows is not None:
            counts += f", actual {node.actual_rows}"
        lines.append(f"{'  ' * depth}{node.label()}  ({counts})")
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def explain_select(database: Database, statement: ast.SelectStmt,
                   rules: RuleSet | None = None,
                   execute: bool = True,
                   result_name: str = "result") -> str:
    """Plan *statement*, optionally execute it, and render the tree."""
    planned: PlannedQuery = plan_select(database, statement, rules=rules,
                                        result_name=result_name)
    if execute:
        planned.execute()
    return planned.render(include_actual=execute)
