"""EXPLAIN rendering: the chosen plan tree with estimated vs. actual
cardinalities, prefixed by any semantic rewrites the planner applied.

``EXPLAIN SELECT ...`` both plans *and* runs the statement, so every
line shows the cost model's estimate next to the true row count --
the fastest way to spot a bad selectivity guess.  ``EXPLAIN ANALYZE``
additionally annotates every node with its measured inclusive wall
time (children's time included, as rendered by every production
EXPLAIN ANALYZE), taken from the per-node monotonic clocks in
:mod:`repro.plan.plans`.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.rules.ruleset import RuleSet
from repro.sql import ast
from repro.plan.plans import Plan


def _format_rows(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _format_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.3f}ms"


def render_plan(plan: Plan, include_actual: bool = False,
                include_timing: bool = False) -> str:
    """Indented one-line-per-node rendering of a plan tree."""
    lines: list[str] = []

    def walk(node: Plan, depth: int) -> None:
        counts = f"est {_format_rows(node.records_output())} rows"
        if include_actual and node.actual_rows is not None:
            counts += f", actual {node.actual_rows}"
        if include_timing and node.actual_time_s is not None:
            counts += f", time {_format_time(node.actual_time_s)}"
        lines.append(f"{'  ' * depth}{node.label()}  ({counts})")
        if include_timing:
            for stats in getattr(node, "worker_actuals", ()):
                lines.append(
                    f"{'  ' * (depth + 1)}worker {stats['worker']}"
                    f" [{stats['label']}]: {stats['morsels']} morsels,"
                    f" {stats['rows']} rows,"
                    f" time {_format_time(stats['time_s'])}")
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def explain_select(database: Database, statement: ast.SelectStmt,
                   rules: RuleSet | None = None,
                   execute: bool = True,
                   analyze: bool = False,
                   result_name: str = "result") -> str:
    """Plan *statement*, optionally execute it, and render the tree.

    *analyze* (EXPLAIN ANALYZE) implies execution and adds the measured
    per-node wall times to the rendering.  The first line reports the
    plan cache's verdict for this statement -- ``cache: hit`` (the
    compiled plan was reused), ``miss`` (planned now, cached for next
    time) or ``bypass`` (caching disabled).
    """
    from repro.cache.core import query_cache
    planned, status = query_cache(database).plan_for(
        statement, rules=rules, result_name=result_name)
    run = execute or analyze
    if run:
        planned.execute()
    rendered = planned.render(include_actual=run, include_timing=analyze)
    return f"cache: {status}\n{rendered}"
