"""Parallel morsel execution: a shared worker pool, order-preserving
merge exchange, and hash scatter partitioning.

The streaming protocol of :mod:`repro.plan.plans` already moves rows
batch-at-a-time; this module lets *several* workers drive one pipeline
at once without changing a single observable semantic:

* a :class:`MorselCursor` hands out morsel sequence numbers -- workers
  claim the next unclaimed morsel, so a slow morsel never stalls the
  others (classic morsel-driven scheduling, not static range
  assignment);
* a :class:`MergeExchange` re-assembles per-morsel results *in
  sequence order* with a bounded reorder buffer, so downstream
  consumers see exactly the serial row order and peak intermediate
  state stays O(dop x morsel);
* a :class:`ScatterExchange` routes build rows to hash partitions so a
  partitioned join builds its buckets partition-parallel;
* :func:`run_ordered` wires the three together over the process-wide
  :class:`WorkerPool` and is the one entry point plan nodes use.

Cancellation is cooperative and prompt: closing the consumer generator
(early termination, server drain) sets the stream's cancel event, and
workers re-check it before claiming each morsel, so a cancelled
pipeline stops at the next morsel boundary.  The per-statement
execution deadline (PR 8) is *thread state* in
:mod:`repro.plan.plans`; callers capture the armed instant on the
session thread and pass it in, and every worker checks it per morsel
-- a timed-out statement cancels its whole worker fan-out, not just
the session thread's half (see ``test_parallel_deadline_*``).

Degree of parallelism is *planner-chosen*: :func:`choose_dop` weighs
the pipeline's estimated rows from the stats catalog against a
calibrated per-worker startup cost, so small pipelines keep today's
serial plan byte-for-byte (DOP=1 inserts no exchange at all).  The
pool itself is sized by the ``REPRO_PARALLEL`` knob: a worker count,
``off`` for strictly serial plans, default = the machine's cores
(capped); unrecognized spellings fall back loudly, one warning per
distinct bad value, mirroring ``REPRO_COLUMNAR``.

Why threads win despite the GIL: the columnar predicate kernels
(:mod:`repro.relational.kernels`) do their row-crunching in numpy,
which releases the GIL for the duration of each array operation, so
disjoint morsel ranges genuinely overlap on separate cores; the
pure-Python kernel path still interleaves usefully on I/O-ish plans
and stays exactly correct, it just does not scale CPU-bound work.
"""

from __future__ import annotations

import os
import threading
from time import monotonic
from typing import Any, Callable, Iterator

from repro import obs
from repro.errors import StatementTimeout

#: Rows one worker should amortize its startup cost over before a
#: second worker pays off (pool handoff + merge bookkeeping, calibrated
#: against the columnar kernels' per-row cost).  The planner grants one
#: degree of parallelism per this many estimated rows.
ROWS_PER_WORKER = 8192

#: Rows per claimed morsel.  Independent of the consumer's batch size:
#: output is re-chunked downstream, so this only balances scheduling
#: granularity (steal-ability) against per-morsel overhead.
MORSEL_ROWS = 4096

#: Hard cap on the default worker count when ``REPRO_PARALLEL`` is
#: unset (a 96-core box should not fan every scan out 96 ways).
MAX_DEFAULT_WORKERS = 8

#: Reorder-buffer bound, in morsels per degree of parallelism: workers
#: stall (cancellation-aware) once they run this far ahead of the
#: consumer, keeping intermediates O(dop x morsel).
PENDING_PER_WORKER = 2

#: Spellings of ``REPRO_PARALLEL`` that force strictly serial plans.
_OFF_VALUES = frozenset({"off", "0", "false", "no", "1"})
#: Spellings that mean "the default worker count".
_ON_VALUES = frozenset({"", "on", "true", "yes"})

#: Session/test override: an int wins over the environment, ``None``
#: defers to ``REPRO_PARALLEL``.  The differential harness pins worker
#: counts per engine configuration through this.
FORCED: int | None = None

#: Bad ``REPRO_PARALLEL`` spellings already warned about (warn once per
#: distinct value, not once per query).
_warned_values: set[str] = set()


def _default_workers() -> int:
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


def workers() -> int:
    """The configured worker count (>= 1; 1 means serial planning).

    :data:`FORCED` when set, otherwise ``REPRO_PARALLEL``: an integer
    worker count, ``off``/``0``/``1`` for serial, unset/``on`` for the
    core-count default.  Unrecognized values warn once per distinct
    spelling and keep the default, like ``REPRO_COLUMNAR``.
    """
    if FORCED is not None:
        return max(1, FORCED)
    raw = os.environ.get("REPRO_PARALLEL", "")
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return 1
    if value in _ON_VALUES:
        return _default_workers()
    try:
        count = int(value)
    except ValueError:
        count = None
    if count is None or count <= 0:
        if raw not in _warned_values:
            import warnings
            _warned_values.add(raw)
            warnings.warn(
                f"REPRO_PARALLEL={raw!r} is not a worker count or "
                f"on/off; keeping the default of "
                f"{_default_workers()} workers", stacklevel=2)
        return _default_workers()
    return count


def set_workers(count: int | None) -> None:
    """Set (or clear, with ``None``) the :data:`FORCED` worker count."""
    global FORCED
    FORCED = count


def enabled() -> bool:
    """Whether parallel planning is on at all (more than one worker)."""
    return workers() > 1


def choose_dop(estimated_rows: float) -> int:
    """Planner-chosen degree of parallelism for a pipeline expected to
    stream *estimated_rows* rows: one degree per
    :data:`ROWS_PER_WORKER` estimated rows, capped by the configured
    worker count.  Anything under two workers' worth of rows plans
    serial -- DOP=1 means the planner inserts no exchange node and the
    plan is today's serial plan, byte for byte."""
    limit = workers()
    if limit <= 1 or estimated_rows < 2 * ROWS_PER_WORKER:
        return 1
    return max(1, min(limit, int(estimated_rows // ROWS_PER_WORKER)))


# -- the shared worker pool --------------------------------------------------


class WorkerPool:
    """A lazily grown pool of daemon threads draining one task queue.

    Tasks are plain callables (worker pipeline loops); they never block
    on each other, only on their own stream's reorder buffer, which its
    consumer is by construction draining -- so the pool needs no
    shutdown protocol and daemon threads cannot wedge interpreter exit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tasks: "list[Callable[[], None]]" = []
        self._available = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._idle = 0

    def ensure(self, count: int) -> None:
        """Grow the pool to at least *count* threads."""
        with self._lock:
            while len(self._threads) < count:
                thread = threading.Thread(
                    target=self._run,
                    name=f"repro-worker-{len(self._threads)}",
                    daemon=True)
                # Workers never re-enter the pool: run_ordered() checks
                # this marker and runs inline instead, so a nested
                # pipeline can never deadlock waiting on its own slot.
                thread._repro_pool_worker = True  # type: ignore[attr-defined]
                self._threads.append(thread)
                thread.start()

    def submit(self, task: Callable[[], None]) -> None:
        with self._available:
            self._tasks.append(task)
            self._available.notify()

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._threads)

    def _run(self) -> None:
        while True:
            with self._available:
                while not self._tasks:
                    self._available.wait()
                task = self._tasks.pop(0)
            try:
                task()
            except BaseException:  # pragma: no cover - tasks catch their own
                pass


_pool: WorkerPool | None = None
_pool_lock = threading.Lock()


def shared_pool() -> WorkerPool:
    """The process-wide worker pool (created on first use)."""
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = WorkerPool()
        return _pool


def on_worker_thread() -> bool:
    """Whether the calling thread is a pool worker (nested parallel
    stages run inline instead of re-entering the pool)."""
    return getattr(threading.current_thread(), "_repro_pool_worker", False)


# -- exchanges ---------------------------------------------------------------


class MorselCursor:
    """Thread-safe claim of the next morsel sequence number."""

    __slots__ = ("_lock", "_next", "total")

    def __init__(self, total: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self.total = total

    def claim(self) -> int | None:
        """The next unclaimed sequence number, or ``None`` when every
        morsel has been handed out."""
        with self._lock:
            if self._next >= self.total:
                return None
            seq = self._next
            self._next += 1
            return seq


class MergeExchange:
    """Order-preserving merge of per-morsel results.

    Workers :meth:`put` results keyed by sequence number; the consumer
    iterates them back in strictly ascending sequence order.  The
    reorder buffer is bounded: a worker that runs too far ahead of the
    consumer waits (waking on consumption *and* on cancellation), so
    intermediates stay O(bound) morsels regardless of skew.
    """

    def __init__(self, total: int, max_pending: int) -> None:
        self.total = total
        self.max_pending = max(2, max_pending)
        self.cancelled = threading.Event()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._results: dict[int, tuple[bool, Any]] = {}
        self._emitted = 0

    def put(self, seq: int, ok: bool, value: Any) -> None:
        """Record morsel *seq*'s outcome (result or exception)."""
        with self._ready:
            while (not self.cancelled.is_set()
                   and seq - self._emitted >= self.max_pending
                   and seq not in self._results):
                self._ready.wait(0.05)
            self._results[seq] = (ok, value)
            self._ready.notify_all()

    def cancel(self) -> None:
        """Stop the stream: wake every waiter, let workers drain."""
        self.cancelled.set()
        with self._ready:
            self._ready.notify_all()

    def __iter__(self) -> Iterator[Any]:
        """Results in sequence order; re-raises a morsel's exception at
        its ordinal position (exactly where the serial stream would
        have raised)."""
        try:
            for seq in range(self.total):
                with self._ready:
                    while seq not in self._results:
                        self._ready.wait()
                    ok, value = self._results.pop(seq)
                    self._emitted = seq + 1
                    self._ready.notify_all()
                if not ok:
                    self.cancel()
                    raise value
                yield value
        finally:
            self.cancel()


class ScatterExchange:
    """Hash (or round-robin) routing of rows to partitions.

    The partitioned hash join scatters build-side rows through this so
    each partition's buckets can be built by its own worker; probes
    route through the same function, so a key always meets the one
    partition that could hold it.
    """

    __slots__ = ("partitions",)

    def __init__(self, partitions: int) -> None:
        self.partitions = max(1, partitions)

    def route(self, key: Any) -> int:
        """Partition owning *key* (hash-partitioned)."""
        return hash(key) % self.partitions

    def route_seq(self, seq: int) -> int:
        """Partition for sequence *seq* (round-robin, for key-less
        scatter such as balancing morsels across workers)."""
        return seq % self.partitions


# -- orchestration -----------------------------------------------------------


def _check_deadline(deadline: float | None) -> None:
    if deadline is not None and monotonic() > deadline:
        raise StatementTimeout(
            "statement cancelled: execution ran past its deadline "
            "(server statement timeout or request deadline)")


def run_ordered(total: int, dop: int, morsel: Callable[[int], Any], *,
                deadline: float | None = None,
                label: str = "pipeline",
                worker_stats: list[dict] | None = None
                ) -> Iterator[Any]:
    """Evaluate ``morsel(seq)`` for every ``seq in range(total)`` on
    *dop* pool workers, yielding results in sequence order.

    The returned generator owns the stream: closing it (early
    termination) cancels the workers at their next morsel boundary, a
    worker exception is re-raised at its morsel's ordinal position, and
    *deadline* (a ``time.monotonic`` instant captured from the session
    thread's statement deadline) is checked by every worker before
    every morsel, so statement timeouts cancel the whole fan-out.

    *worker_stats*, when given, receives one dict per worker --
    ``{"worker": i, "morsels": n, "rows": n, "time_s": t}`` -- where
    ``rows`` counts ``len()`` of list results; EXPLAIN ANALYZE renders
    these as per-worker actuals.
    """
    if total <= 0:
        return iter(())
    dop = max(1, min(dop, total))
    if dop <= 1 or on_worker_thread():
        return _run_serial(total, morsel, deadline)
    return _run_parallel(total, dop, morsel, deadline, label, worker_stats)


def _run_serial(total: int, morsel: Callable[[int], Any],
                deadline: float | None) -> Iterator[Any]:
    for seq in range(total):
        _check_deadline(deadline)
        yield morsel(seq)


def _run_parallel(total: int, dop: int, morsel: Callable[[int], Any],
                  deadline: float | None, label: str,
                  worker_stats: list[dict] | None) -> Iterator[Any]:
    cursor = MorselCursor(total)
    merge = MergeExchange(total, max_pending=PENDING_PER_WORKER * dop)
    pool = shared_pool()
    pool.ensure(dop)

    def worker_loop(index: int) -> None:
        start = monotonic()
        morsels = rows = 0
        try:
            while not merge.cancelled.is_set():
                seq = cursor.claim()
                if seq is None:
                    break
                try:
                    _check_deadline(deadline)
                    result = morsel(seq)
                except BaseException as error:
                    merge.put(seq, False, error)
                    merge.cancelled.set()
                    break
                morsels += 1
                if isinstance(result, list):
                    rows += len(result)
                if obs.enabled():
                    obs.counter(
                        "plan_parallel_morsels",
                        "morsels executed by parallel workers",
                        node=label).inc()
                merge.put(seq, True, result)
        finally:
            end = monotonic()
            if worker_stats is not None:
                worker_stats.append({"worker": index, "label": label,
                                     "morsels": morsels, "rows": rows,
                                     "time_s": end - start})
            obs.record_span("plan.worker", start, end, label=label,
                            worker=index, morsels=morsels, rows=rows)

    for index in range(dop):
        pool.submit(lambda index=index: worker_loop(index))
    return iter(merge)


__all__ = [
    "MAX_DEFAULT_WORKERS",
    "MORSEL_ROWS",
    "MergeExchange",
    "MorselCursor",
    "ROWS_PER_WORKER",
    "ScatterExchange",
    "WorkerPool",
    "choose_dop",
    "enabled",
    "on_worker_thread",
    "run_ordered",
    "set_workers",
    "shared_pool",
    "workers",
]
