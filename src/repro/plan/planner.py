"""Cost-based planning for SELECT statements.

The planner turns a parsed SELECT into a tree of plan nodes
(:mod:`repro.plan.plans`):

1. WHERE conjuncts are classified (shared with the legacy executor)
   into per-binding filters, equi-join edges, and residual predicates.
2. Per binding, single-column comparisons fold into interval
   constraints; :mod:`repro.plan.semantic` proves them unsatisfiable
   against the induced rules (short-circuit to an EmptyPlan) or
   tightens them.
3. The access path per binding is chosen by estimated selectivity: a
   hash-index probe for equality, a sorted-index range scan for
   selective ranges, a table scan otherwise; unconsumed predicates
   stack as a FilterPlan.
4. Joins are ordered greedily by estimated output cardinality (the
   SimpleDB ``records_output``/``distinct_values`` cost shape) instead
   of the legacy fixed connectivity order.
"""

from __future__ import annotations

from repro import obs
from repro.relational.database import Database
from repro.relational.expressions import (
    ColumnRef, Comparison, Expression, Literal,
)
from repro.relational.relation import Relation
from repro.rules.clause import Interval
from repro.rules.ruleset import RuleSet
from repro.sql import ast
from repro.sql.executor import Scope, classify_conjuncts
from repro.plan import parallel, semantic
from repro.plan.plans import (
    EmptyPlan, FilterPlan, HashJoinPlan, IndexScanPlan, MergeExchangePlan,
    ParallelHashJoinPlan, Plan, ProductPlan, ProjectPlan, TableScanPlan,
    INDEX_FRACTION_THRESHOLD, _scan_filter_chain,
)
from repro.plan.stats import DEFAULT_SELECTIVITY, statistics

#: Below this row count an index cannot beat scanning the rows directly.
MIN_INDEX_ROWS = 8


class PlannedQuery:
    """A chosen plan plus the semantic rewrites that shaped it."""

    def __init__(self, scope: Scope, statement: ast.SelectStmt,
                 root: ProjectPlan, notes: list[str]):
        self.scope = scope
        self.statement = statement
        self.root = root
        self.notes = notes

    @property
    def plan(self) -> ProjectPlan:
        return self.root

    def execute(self, batch_size: int | None = None) -> Relation:
        """Run the plan, producing the result relation.

        Execution streams batch-at-a-time through the plan tree;
        *batch_size* overrides the process default morsel size (see
        :func:`repro.plan.plans.default_batch_size`).
        """
        return self.root.execute_relation(batch_size)

    def render(self, include_actual: bool = False,
               include_timing: bool = False) -> str:
        from repro.plan.explain import render_plan
        lines = [f"semantic: {note}" for note in self.notes]
        lines.append(render_plan(self.root, include_actual=include_actual,
                                 include_timing=include_timing))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<PlannedQuery {self.statement.render()!r}>"


def plan_select(database: Database, statement: ast.SelectStmt,
                rules: RuleSet | None = None,
                result_name: str = "result") -> PlannedQuery:
    """Choose a plan for *statement* over *database*.

    *rules* (the induced rule base) enables semantic optimization:
    contradiction short-circuits and range tightening.
    """
    with obs.span("plan.select", tables=len(statement.tables)) as span:
        scope = Scope(database, statement.tables)
        filters, edges, residual = classify_conjuncts(scope,
                                                      statement.where)
        stats_catalog = statistics(database)
        notes: list[str] = []

        base_plans: dict[str, Plan] = {}
        for binding in scope.bindings:
            plan, contradiction = _access_path(
                scope, binding, filters[binding], rules, stats_catalog,
                notes)
            if contradiction is not None:
                empty = EmptyPlan(scope, scope.bindings, contradiction)
                root = ProjectPlan(scope, statement, empty, result_name)
                span.set(outcome="short_circuit")
                return PlannedQuery(scope, statement, root, notes)
            base_plans[binding] = plan

        joined, leftover = _order_joins(scope, base_plans, edges)
        residual = list(residual) + [
            Comparison("=", ColumnRef(col_a, bind_a),
                       ColumnRef(col_b, bind_b))
            for bind_a, col_a, bind_b, col_b in leftover]
        if residual:
            joined = FilterPlan(joined, residual,
                                DEFAULT_SELECTIVITY ** len(residual))
        joined = _parallelize(joined)
        root = ProjectPlan(scope, statement, joined, result_name)
        root.dop = getattr(joined, "dop", 1)
        span.set(notes=len(notes))
        return PlannedQuery(scope, statement, root, notes)


# -- parallelism -----------------------------------------------------------


def _parallelize(plan: Plan) -> Plan:
    """Insert exchange operators where the stats catalog's row estimate
    pays for worker startup (:func:`repro.plan.parallel.choose_dop`).

    A DOP of 1 -- small pipelines, or ``REPRO_PARALLEL`` off/1 --
    returns the serial plan unchanged, node for node: parallelism is
    strictly opt-in per pipeline, never a plan-shape change for cheap
    queries.  Exchange nodes re-clamp their degree against the current
    worker setting at execution time, so a cached parallel plan
    degrades gracefully when the knob is lowered later.
    """
    if not parallel.enabled():
        return plan
    return _parallel_convert(plan, top=True)


def _parallel_convert(plan: Plan, top: bool) -> Plan:
    if isinstance(plan, HashJoinPlan):
        left = _parallel_convert(plan.left, top=False)
        right = _parallel_convert(plan.right, top=False)
        dop = parallel.choose_dop(max(plan.left.records_output(),
                                      plan.right.records_output()))
        if dop > 1:
            return ParallelHashJoinPlan(left, right, plan.edges, dop)
        if left is plan.left and right is plan.right:
            return plan
        return HashJoinPlan(left, right, plan.edges)
    if isinstance(plan, ProductPlan):
        left = _parallel_convert(plan.left, top=False)
        right = _parallel_convert(plan.right, top=False)
        if left is plan.left and right is plan.right:
            return plan
        return ProductPlan(left, right)
    chain = _scan_filter_chain(plan)
    if chain is not None:
        # A scan(+filter) chain parallelizes only at the top of its
        # pipeline: below a join, the join's own fused morsel paths
        # consume the chain columnar-side.
        if not top:
            return plan
        scan, _filters = chain
        dop = parallel.choose_dop(scan.records_output())
        if dop > 1:
            return MergeExchangePlan(plan, dop)
        return plan
    if isinstance(plan, FilterPlan):  # residual filter over a join
        child = _parallel_convert(plan.child, top=False)
        if child is not plan.child:
            return FilterPlan(child, plan.predicates, plan.selectivity)
    return plan


# -- access paths ----------------------------------------------------------


def _interval_of(conjunct: Expression) -> tuple[str, Interval] | None:
    """``(column, interval)`` when *conjunct* is a single-column
    comparison against a non-NULL literal, else ``None``."""
    if not isinstance(conjunct, Comparison):
        return None
    if conjunct.op not in ("=", "<", "<=", ">", ">="):
        return None
    if (isinstance(conjunct.left, Literal)
            and isinstance(conjunct.right, ColumnRef)):
        conjunct = conjunct.flipped()
    if not (isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, Literal)):
        return None
    if conjunct.right.value is None:
        return None
    return (conjunct.left.column.lower(),
            Interval.from_comparison(conjunct.op, conjunct.right.value))


def _access_path(scope: Scope, binding: str, conjunct_list, rules,
                 stats_catalog, notes: list[str]
                 ) -> tuple[Plan, str | None]:
    """Best single-binding plan, or a contradiction explanation."""
    relation = scope.relations[binding]
    stats = stats_catalog.table_stats(relation.name)

    intervals: dict[str, Interval] = {}
    interval_exprs: dict[str, list[Expression]] = {}
    others: list[Expression] = []
    for conjunct in conjunct_list:
        folded = _interval_of(conjunct)
        if folded is None:
            others.append(conjunct)
            continue
        column, interval = folded
        if column in intervals:
            try:
                merged = intervals[column].intersect(interval)
            except TypeError:  # incomparable literal types: leave as filter
                others.append(conjunct)
                continue
            if merged is None:
                reason = (f"contradictory predicates on "
                          f"{relation.name}.{column}: "
                          + " and ".join(e.render()
                                         for e in interval_exprs[column]
                                         + [conjunct]))
                notes.append(reason)
                obs.counter("semantic_rewrites_total",
                            "rule-driven planner rewrites by kind",
                            kind="predicate_contradiction").inc()
                return EmptyPlan(scope, [binding], reason), reason
            intervals[column] = merged
        else:
            intervals[column] = interval
        interval_exprs.setdefault(column, []).append(conjunct)

    if rules is not None and not rules.fresh_for(relation):
        # The rule base was induced on an older state of this relation:
        # its implications may no longer hold, so rewriting the query
        # with them could change the answer (the differential fuzzer
        # caught exactly that: an INSERT violating an induced interval
        # rule, then a contradiction short-circuit dropping the new
        # row).  Plan without semantic optimization until re-induction.
        notes.append(
            f"semantic optimization skipped: rule base is stale for "
            f"{relation.name} (data changed since induction)")
        obs.counter("semantic_rewrites_total",
                    "rule-driven planner rewrites by kind",
                    kind="stale_skipped").inc()
        rules = None
    analysis = semantic.analyze(relation.name, intervals, rules)
    for note in analysis.notes:
        notes.append(note.render())
    if analysis.contradiction is not None:
        return (EmptyPlan(scope, [binding], analysis.contradiction),
                analysis.contradiction)
    intervals = analysis.intervals

    chosen = _choose_index_column(stats, intervals)
    if chosen is not None:
        column_name = relation.schema.column(chosen).name
        leaf: Plan = IndexScanPlan(scope, binding, column_name,
                                   intervals[chosen], stats)
        consumed = {chosen}
    else:
        leaf = TableScanPlan(scope, binding, stats)
        consumed = set()

    predicates = [expr for column, exprs in interval_exprs.items()
                  if column not in consumed for expr in exprs] + others
    if predicates:
        selectivity = 1.0
        for column in interval_exprs:
            if column not in consumed:
                selectivity *= max(
                    stats.selectivity(column, intervals[column]), 1e-6)
        selectivity *= DEFAULT_SELECTIVITY ** len(others)
        return FilterPlan(leaf, predicates, selectivity), None
    return leaf, None


def _choose_index_column(stats, intervals: dict[str, Interval]
                         ) -> str | None:
    """The constrained column whose index promises the fewest rows, or
    ``None`` when scanning is no worse."""
    if stats.row_count < MIN_INDEX_ROWS:
        return None
    best: tuple[float, str] | None = None
    for column, interval in intervals.items():
        fraction = stats.selectivity(column, interval)
        if not interval.is_point() and fraction > INDEX_FRACTION_THRESHOLD:
            continue
        if best is None or fraction < best[0]:
            best = (fraction, column)
    return best[1] if best is not None else None


# -- join ordering ---------------------------------------------------------


def _connects(edge, joined, candidate) -> bool:
    bind_a, _col_a, bind_b, _col_b = edge
    return ((bind_a in joined and bind_b == candidate)
            or (bind_b in joined and bind_a == candidate))


def _normalized(edge, right_binding):
    """Orient *edge* as (left_bind, left_col, right_bind, right_col)."""
    bind_a, col_a, bind_b, col_b = edge
    if bind_b == right_binding:
        return (bind_a, col_a, bind_b, col_b)
    return (bind_b, col_b, bind_a, col_a)


def _order_joins(scope: Scope, base_plans: dict[str, Plan], edges
                 ) -> tuple[Plan, list]:
    """Greedy join ordering by estimated output cardinality.

    Starts from the smallest base plan; at each step joins the connected
    binding that minimizes the estimated join output (hash join over all
    usable edges), falling back to the smallest cartesian product when
    nothing connects.  Returns the joined plan and any edges that could
    not be consumed (defensive; folded back in as residual predicates).
    """
    order = {binding: position
             for position, binding in enumerate(scope.bindings)}
    remaining = dict(base_plans)
    start = min(remaining,
                key=lambda b: (remaining[b].records_output(), order[b]))
    current = remaining.pop(start)
    pending = list(edges)

    while remaining:
        best = None
        for binding, candidate in remaining.items():
            usable = [edge for edge in pending
                      if _connects(edge, current.bindings, binding)]
            if not usable:
                continue
            join = HashJoinPlan(current, candidate,
                                [_normalized(edge, binding)
                                 for edge in usable])
            estimate = join.records_output()
            if best is None or (estimate, order[binding]) < best[:2]:
                best = (estimate, order[binding], binding, join, usable)
        if best is None:
            binding = min(remaining,
                          key=lambda b: (remaining[b].records_output(),
                                         order[b]))
            current = ProductPlan(current, remaining.pop(binding))
            continue
        _estimate, _position, binding, join, usable = best
        current = join
        remaining.pop(binding)
        pending = [edge for edge in pending if edge not in usable]
    return current, pending
