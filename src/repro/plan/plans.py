"""Composable plan nodes for SELECT execution.

In the SimpleDB exemplar's style, each relational-algebra operator has a
Plan class exposing cost-model accessors (``records_output``,
``distinct_values``, ``cost``) next to an ``execute`` that actually
produces rows.  Unlike SimpleDB's scans, execution here is eager (the
engine is in-memory): ``execute()`` returns the node's output as a list
of *aligned per-binding row tuples* -- element ``i`` of an output tuple
is the row contributed by ``bindings[i]`` -- which is exactly the
intermediate shape the legacy executor's join pipeline used, so the
shared projection code consumes either path's output unchanged.

Every node remembers the actual output cardinality of its last
``execute()`` in :attr:`Plan.actual_rows` and its inclusive wall time
in :attr:`Plan.actual_time_s`; EXPLAIN renders estimated vs. actual
side by side and EXPLAIN ANALYZE adds the measured times.  The two
``perf_counter`` reads per node are kept unconditionally (a plan
executes a handful of nodes per query, so the cost is noise); the
per-node tracer spans ride the :mod:`repro.obs` flag.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro import obs
from repro.relational.relation import Relation
from repro.rules.clause import Interval
from repro.sql import ast
from repro.sql.executor import Scope, project_statement

#: Crossing this estimated-fraction threshold makes a range index scan
#: not worth it compared to a straight filter over the table scan.
INDEX_FRACTION_THRESHOLD = 0.75


class Plan:
    """Abstract plan node over a query :class:`Scope`."""

    def __init__(self, scope: Scope, bindings: Sequence[str]):
        self.scope = scope
        self.bindings: tuple[str, ...] = tuple(bindings)
        self.actual_rows: int | None = None
        self.actual_time_s: float | None = None

    # -- cost model --------------------------------------------------------

    def records_output(self) -> float:
        """Estimated output cardinality."""
        raise NotImplementedError

    def cost(self) -> float:
        """Estimated total rows touched computing this subtree."""
        raise NotImplementedError

    def distinct_values(self, binding: str, column: str) -> float:
        """Estimated distinct values of ``binding.column`` in the
        output (join-cardinality denominator)."""
        raise NotImplementedError

    # -- execution ---------------------------------------------------------

    def execute(self) -> list[tuple]:
        start = time.perf_counter()
        rows = self._rows()
        end = time.perf_counter()
        self.actual_rows = len(rows)
        self.actual_time_s = end - start
        obs.record_span(f"plan.node.{type(self).__name__}", start, end,
                        label=self.label(), rows=len(rows))
        return rows

    def _rows(self) -> list[tuple]:
        raise NotImplementedError

    # -- rendering ---------------------------------------------------------

    def children(self) -> tuple["Plan", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label()}>"


class TableScanPlan(Plan):
    """Full scan of one FROM binding."""

    def __init__(self, scope: Scope, binding: str, stats):
        super().__init__(scope, [binding])
        self.binding = binding
        self.relation = scope.relations[binding]
        self.stats = stats

    def records_output(self) -> float:
        return float(self.stats.row_count)

    def cost(self) -> float:
        return float(self.stats.row_count)

    def distinct_values(self, binding: str, column: str) -> float:
        return float(self.stats.distinct_values(column))

    def _rows(self) -> list[tuple]:
        return [(row,) for row in self.relation.rows]

    def label(self) -> str:
        return (f"TableScan {self.relation.name}"
                + (f" {self.binding}" if self.binding
                   != self.relation.name.lower() else ""))


class IndexScanPlan(Plan):
    """Index access path for one binding: equality probes go through a
    :class:`~repro.relational.indexes.HashIndex`, range probes through a
    :class:`~repro.relational.indexes.SortedIndex` (both cached on the
    database and version-checked)."""

    def __init__(self, scope: Scope, binding: str, column: str,
                 interval: Interval, stats):
        super().__init__(scope, [binding])
        self.binding = binding
        self.relation = scope.relations[binding]
        self.column = column
        self.interval = interval
        self.stats = stats
        self.kind = "hash" if interval.is_point() else "sorted"

    def records_output(self) -> float:
        fraction = self.stats.selectivity(self.column, self.interval)
        return self.stats.row_count * fraction

    def cost(self) -> float:
        # An index probe touches only its matches (build cost amortizes
        # across the workload through the cache).
        return self.records_output()

    def distinct_values(self, binding: str, column: str) -> float:
        if column.lower() == self.column.lower():
            return 1.0 if self.interval.is_point() else max(
                1.0, self.stats.distinct_values(column)
                * self.stats.selectivity(self.column, self.interval))
        return min(float(self.stats.distinct_values(column)),
                   max(1.0, self.records_output()))

    def _rows(self) -> list[tuple]:
        cache = self.scope.database.indexes
        if self.kind == "hash":
            index = cache.hash_index(self.relation, self.column)
            matches = index.lookup(self.interval.low)
        else:
            index = cache.sorted_index(self.relation, self.column)
            matches = index.range(
                self.interval.low, self.interval.high,
                low_inclusive=not self.interval.low_open,
                high_inclusive=not self.interval.high_open)
        return [(row,) for row in matches]

    def label(self) -> str:
        return (f"IndexScan {self.relation.name} on {self.column} "
                f"[{self.interval.render(self.column)}] ({self.kind})")


class FilterPlan(Plan):
    """Predicate evaluation over a child plan's output."""

    def __init__(self, child: Plan, predicates: Sequence, selectivity: float):
        super().__init__(child.scope, child.bindings)
        self.child = child
        self.predicates = list(predicates)
        self.selectivity = selectivity

    def records_output(self) -> float:
        return self.child.records_output() * self.selectivity

    def cost(self) -> float:
        return self.child.cost() + self.child.records_output()

    def distinct_values(self, binding: str, column: str) -> float:
        return min(self.child.distinct_values(binding, column),
                   max(1.0, self.records_output()))

    def _rows(self) -> list[tuple]:
        out = []
        for rows in self.child.execute():
            env = self.scope.environment(self.bindings, rows)
            if all(predicate.evaluate(env)
                   for predicate in self.predicates):
                out.append(rows)
        return out

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return ("Filter ["
                + " and ".join(p.render() for p in self.predicates) + "]")


class HashJoinPlan(Plan):
    """Equi-join of two plans: hash the right input, probe from the
    left.  ``edges`` are ``(left_binding, left_col, right_binding,
    right_col)`` with sides already normalized."""

    def __init__(self, left: Plan, right: Plan,
                 edges: Sequence[tuple[str, str, str, str]]):
        super().__init__(left.scope, tuple(left.bindings)
                         + tuple(right.bindings))
        self.left = left
        self.right = right
        self.edges = list(edges)

    def records_output(self) -> float:
        estimate = self.left.records_output() * self.right.records_output()
        for left_bind, left_col, right_bind, right_col in self.edges:
            denominator = max(
                self.left.distinct_values(left_bind, left_col),
                self.right.distinct_values(right_bind, right_col), 1.0)
            estimate /= denominator
        return estimate

    def cost(self) -> float:
        return (self.left.cost() + self.right.cost()
                + self.left.records_output() + self.right.records_output()
                + self.records_output())

    def distinct_values(self, binding: str, column: str) -> float:
        owner = self.left if binding in self.left.bindings else self.right
        return min(owner.distinct_values(binding, column),
                   max(1.0, self.records_output()))

    def _key_positions(self):
        left_keys, right_keys = [], []
        for left_bind, left_col, right_bind, right_col in self.edges:
            left_slot = self.left.bindings.index(left_bind)
            left_pos = self.scope.relations[left_bind].schema.position(
                left_col)
            right_slot = self.right.bindings.index(right_bind)
            right_pos = self.scope.relations[right_bind].schema.position(
                right_col)
            left_keys.append((left_slot, left_pos))
            right_keys.append((right_slot, right_pos))
        return left_keys, right_keys

    def _rows(self) -> list[tuple]:
        left_rows = self.left.execute()
        right_rows = self.right.execute()
        if not left_rows or not right_rows:
            return []
        left_keys, right_keys = self._key_positions()
        buckets: dict[tuple, list[tuple]] = {}
        for rows in right_rows:
            key = tuple(rows[slot][pos] for slot, pos in right_keys)
            if any(value is None for value in key):
                continue
            buckets.setdefault(key, []).append(rows)
        out: list[tuple] = []
        for rows in left_rows:
            key = tuple(rows[slot][pos] for slot, pos in left_keys)
            if any(value is None for value in key):
                continue
            for match in buckets.get(key, ()):
                out.append(rows + match)
        return out

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(f"{lb}.{lc} = {rb}.{rc}"
                         for lb, lc, rb, rc in self.edges)
        return f"HashJoin [{keys}]"


class ProductPlan(Plan):
    """Cartesian product (no usable join edge)."""

    def __init__(self, left: Plan, right: Plan):
        super().__init__(left.scope, tuple(left.bindings)
                         + tuple(right.bindings))
        self.left = left
        self.right = right

    def records_output(self) -> float:
        return self.left.records_output() * self.right.records_output()

    def cost(self) -> float:
        return (self.left.cost() + self.right.cost()
                + self.records_output())

    def distinct_values(self, binding: str, column: str) -> float:
        owner = self.left if binding in self.left.bindings else self.right
        return owner.distinct_values(binding, column)

    def _rows(self) -> list[tuple]:
        left_rows = self.left.execute()
        right_rows = self.right.execute()
        return [rows + other for rows in left_rows for other in right_rows]

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Product"


class EmptyPlan(Plan):
    """Semantic short-circuit: the planner proved no row can satisfy the
    query, so nothing is scanned at all.  ``reason`` carries the
    intensional explanation shown by EXPLAIN."""

    def __init__(self, scope: Scope, bindings: Sequence[str], reason: str):
        super().__init__(scope, bindings)
        self.reason = reason

    def records_output(self) -> float:
        return 0.0

    def cost(self) -> float:
        return 0.0

    def distinct_values(self, binding: str, column: str) -> float:
        return 0.0

    def _rows(self) -> list[tuple]:
        return []

    def label(self) -> str:
        return f"Empty [{self.reason}]"


class ProjectPlan(Plan):
    """Root node: SELECT-list evaluation, grouping, ORDER BY, DISTINCT.

    Delegates to the executor's shared projection so planned and legacy
    execution produce identical relations.
    """

    def __init__(self, scope: Scope, statement: ast.SelectStmt,
                 child: Plan, result_name: str = "result"):
        super().__init__(scope, child.bindings)
        self.statement = statement
        self.child = child
        self.result_name = result_name

    def records_output(self) -> float:
        return self.child.records_output()

    def cost(self) -> float:
        return self.child.cost() + self.child.records_output()

    def distinct_values(self, binding: str, column: str) -> float:
        return self.child.distinct_values(binding, column)

    def execute_relation(self) -> Relation:
        start = time.perf_counter()
        rows = self.child.execute()
        result = project_statement(self.scope, self.statement,
                                   self.child.bindings, rows,
                                   self.result_name)
        end = time.perf_counter()
        self.actual_rows = len(result)
        self.actual_time_s = end - start
        obs.record_span("plan.node.ProjectPlan", start, end,
                        label=self.label(), rows=len(result))
        return result

    def _rows(self) -> list[tuple]:  # pragma: no cover - use execute_relation
        raise NotImplementedError("ProjectPlan executes to a Relation")

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        if self.statement.star:
            items = "*"
        else:
            items = ", ".join(item.render()
                              for item in self.statement.items)
        return f"Project [{items}]"
