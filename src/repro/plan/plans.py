"""Composable plan nodes for SELECT execution -- streaming edition.

In the SimpleDB exemplar's style, each relational-algebra operator has a
Plan class exposing cost-model accessors (``records_output``,
``distinct_values``, ``cost``) next to execution.  Execution is
*batch-at-a-time* (morsel-driven): every node implements
:meth:`Plan._batches`, a generator yielding lists of at most
``batch_size`` aligned per-binding row tuples -- element ``i`` of an
output tuple is the row contributed by ``bindings[i]``, exactly the
intermediate shape the legacy executor's join pipeline uses, so the
shared projection code consumes either path's output unchanged.

Batches stream child to parent: a scan produces its next morsel only
when the consumer asks, a filter evaluates its *compiled* predicates
(:mod:`repro.relational.compiled`) over each morsel, and a hash join
materializes only its build side (inherent to hashing) while the probe
side streams through.  Closing a consumer generator closes the whole
producer chain (early termination), and no node buffers more than one
output batch, so peak intermediate state is O(batch) per node plus the
join build sides.  The top of the tree (:class:`ProjectPlan`) is the
only place a full result materializes -- as the result
:class:`Relation` itself.

Per-node accounting survives the refactor exactly: every node
accumulates the rows it actually streamed in :attr:`Plan.actual_rows`
and its inclusive wall time in :attr:`Plan.actual_time_s`, so EXPLAIN
renders estimated vs. actual side by side and EXPLAIN ANALYZE adds the
measured times.  Observability is *per batch*, never per row: when the
:mod:`repro.obs` flag is on, each node counts its batches and records
one ``plan.node.<Type>`` span as its stream finishes; when it is off
the accounting is two ``perf_counter`` reads and one integer add per
batch, preserving the zero-overhead guarantee bench E20 pins.

The default morsel size is :data:`DEFAULT_BATCH_SIZE`, overridable per
process with the ``REPRO_BATCH_SIZE`` environment variable (CI runs the
whole suite at 1, the worst case) and per call via the ``batch_size``
arguments; :data:`UNBOUNDED` restores the old materialize-everything
behavior (one batch per node), which the equivalence suite and bench
E22 use as the reference pipeline.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from repro import obs
from repro.plan import parallel
from repro.relational import columnar, compiled, kernels
from repro.relational.relation import Relation
from repro.rules.clause import Interval
from repro.sql import ast
from repro.sql.executor import Scope, project_statement

#: Crossing this estimated-fraction threshold makes a range index scan
#: not worth it compared to a straight filter over the table scan.
INDEX_FRACTION_THRESHOLD = 0.75

#: Morsel size when neither the call site nor the environment says
#: otherwise.  Large enough to amortize per-batch accounting, small
#: enough to keep intermediate state cache-resident.
DEFAULT_BATCH_SIZE = 1024

#: Sentinel batch size: one batch spans the whole input, i.e. the old
#: materializing pipeline (used as the reference in tests and benches).
UNBOUNDED = 2 ** 62

#: Optional hook called as ``observer(plan, batch)`` for every streamed
#: batch (bench E22 installs one to assert the O(batch) bound).  Keep it
#: ``None`` in production: the per-batch cost is then one ``is None``.
_batch_observer: Callable[["Plan", list], None] | None = None


def set_batch_observer(
        observer: Callable[["Plan", list], None] | None) -> None:
    """Install (or clear, with ``None``) the per-batch observer hook."""
    global _batch_observer
    _batch_observer = observer


#: Per-thread statement deadline (a ``time.monotonic`` instant, or
#: absent).  The server sets it around statement execution so a
#: runaway streaming plan is cancelled at the next batch boundary
#: instead of holding the engine lock forever; the cost while unset is
#: one attribute lookup per batch.
_statement_deadline = threading.local()


def set_statement_deadline(at: float | None) -> None:
    """Arm (or clear, with ``None``) this thread's statement deadline.

    Cooperative cancellation: every instrumented ``batches()`` stream
    checks the deadline once per batch and raises
    :class:`~repro.errors.StatementTimeout` past it.  Callers must
    clear the deadline in a ``finally`` -- it is thread state, not
    call-scoped.
    """
    _statement_deadline.at = at


def _check_statement_deadline() -> None:
    at = getattr(_statement_deadline, "at", None)
    if at is not None and time.monotonic() > at:
        from repro.errors import StatementTimeout
        raise StatementTimeout(
            "statement cancelled: execution ran past its deadline "
            "(server statement timeout or request deadline)")


class _DeadlineScope:
    """Context manager arming this thread's statement deadline for the
    given *budget* in seconds (``None`` = no deadline), restoring the
    previous value on exit so scopes nest."""

    __slots__ = ("budget", "_previous")

    def __init__(self, budget: float | None):
        self.budget = budget

    def __enter__(self) -> "_DeadlineScope":
        self._previous = getattr(_statement_deadline, "at", None)
        if self.budget is not None:
            _statement_deadline.at = time.monotonic() + self.budget
        return self

    def __exit__(self, *_exc) -> None:
        _statement_deadline.at = self._previous


def statement_deadline_scope(budget: float | None) -> _DeadlineScope:
    """``with statement_deadline_scope(seconds): ...`` -- cooperative
    cancellation for everything streamed inside the block."""
    return _DeadlineScope(budget)


#: Rejected ``REPRO_BATCH_SIZE`` spellings already warned about -- the
#: env var is consulted on every stream start, so each bad value warns
#: exactly once instead of flooding a long session.
_warned_batch_sizes: set[str] = set()


def default_batch_size() -> int:
    """The process-wide morsel size: ``REPRO_BATCH_SIZE`` when it parses
    to a positive integer, :data:`DEFAULT_BATCH_SIZE` otherwise.

    A set-but-unusable value (non-integer or non-positive) falls back
    to the default *loudly*: one :class:`UserWarning` per distinct bad
    value, naming both.  An unset/empty variable stays silent -- that
    is the normal configuration, not a mistake.
    """
    import warnings

    raw = os.environ.get("REPRO_BATCH_SIZE", "")
    try:
        value = int(raw)
    except ValueError:
        if raw.strip() and raw not in _warned_batch_sizes:
            _warned_batch_sizes.add(raw)
            warnings.warn(
                f"REPRO_BATCH_SIZE={raw!r} is not an integer; using the "
                f"default batch size {DEFAULT_BATCH_SIZE}", stacklevel=2)
        return DEFAULT_BATCH_SIZE
    if value <= 0:
        if raw not in _warned_batch_sizes:
            _warned_batch_sizes.add(raw)
            warnings.warn(
                f"REPRO_BATCH_SIZE={raw!r} is not positive; using the "
                f"default batch size {DEFAULT_BATCH_SIZE}", stacklevel=2)
        return DEFAULT_BATCH_SIZE
    return value


def _columnar_ready() -> bool:
    """Whether fused columnar execution may engage: the columnar flag
    is on AND predicate compilation is on (``compiled.ENABLED`` off
    means "give me the interpreted pipeline end to end", which the
    kernels would defeat)."""
    return compiled.ENABLED and columnar.enabled()


def _scan_filter_chain(plan: "Plan"):
    """``(scan, [filter, ...])`` when *plan* is a TableScan optionally
    wrapped in FilterPlans (outermost last) -- the shape the fused
    columnar path can execute -- else ``None``."""
    filters: list[FilterPlan] = []
    node = plan
    while isinstance(node, FilterPlan):
        filters.append(node)
        node = node.child
    if not isinstance(node, TableScanPlan):
        return None
    filters.reverse()
    return node, filters


def _resolve_columnar(scan: "TableScanPlan", filters: Sequence["FilterPlan"],
                      *, account_last: bool):
    """Execute a scan+filter chain as column kernels.

    Returns ``(store, rows, mask)`` where *rows* is the store's aligned
    row snapshot and *mask* selects the survivors (``None`` = all).
    Sets the chain nodes' actuals to exactly what the row path would
    have accumulated on full consumption (*account_last* off leaves the
    last filter to its own ``_instrumented`` accounting).  Raises
    :class:`~repro.relational.kernels.UnsupportedKernel` when any
    predicate falls outside the compilable subset -- callers fall back
    to the row path, which re-resolves everything and surfaces exact
    interpreter semantics.
    """
    start = time.perf_counter()
    store = scan.relation.column_store()
    rows = store.rows
    scan.actual_rows = len(rows)
    scan.actual_time_s = time.perf_counter() - start
    mask = None
    last = filters[-1] if filters else None
    for node in filters:
        node_start = time.perf_counter()
        part = kernels.predicate_mask(store, node.predicates,
                                      [scan.binding])
        mask = kernels.combine_and(mask, part)
        if account_last or node is not last:
            node.actual_rows = kernels.count(mask, len(rows))
            node.actual_time_s = time.perf_counter() - node_start
    return store, rows, mask


def _count_fused(node_type: str, fused: bool) -> None:
    if obs.enabled():
        obs.counter("columnar_fused_total",
                    "plan subtrees executed via column kernels",
                    node=node_type,
                    result="fused" if fused else "fallback").inc()


class Plan:
    """Abstract plan node over a query :class:`Scope`."""

    def __init__(self, scope: Scope, bindings: Sequence[str]):
        self.scope = scope
        self.bindings: tuple[str, ...] = tuple(bindings)
        self.actual_rows: int | None = None
        self.actual_time_s: float | None = None

    # -- cost model --------------------------------------------------------

    def records_output(self) -> float:
        """Estimated output cardinality."""
        raise NotImplementedError

    def cost(self) -> float:
        """Estimated total rows touched computing this subtree."""
        raise NotImplementedError

    def distinct_values(self, binding: str, column: str) -> float:
        """Estimated distinct values of ``binding.column`` in the
        output (join-cardinality denominator)."""
        raise NotImplementedError

    # -- execution ---------------------------------------------------------

    def batches(self, batch_size: int | None = None
                ) -> Iterator[list[tuple]]:
        """Stream this node's output as batches of aligned per-binding
        row tuples, each of at most *batch_size* rows.

        The returned generator is instrumented: it accumulates
        :attr:`actual_rows` and inclusive :attr:`actual_time_s` as the
        consumer pulls, counts batches in the metrics registry when
        observability is on, and records one ``plan.node.<Type>`` span
        when the stream finishes (exhaustion *or* early close).
        """
        size = default_batch_size() if batch_size is None else batch_size
        if size <= 0:
            raise ValueError(f"batch size must be positive, got {size}")
        self.actual_rows = 0
        self.actual_time_s = 0.0
        return self._instrumented(self._batches(size), size)

    def _instrumented(self, source: Iterator[list[tuple]],
                      size: int) -> Iterator[list[tuple]]:
        wall_start = time.perf_counter()
        batch_count = 0
        try:
            while True:
                _check_statement_deadline()
                start = time.perf_counter()
                try:
                    batch = next(source)
                except StopIteration:
                    self.actual_time_s += time.perf_counter() - start
                    break
                self.actual_time_s += time.perf_counter() - start
                self.actual_rows += len(batch)
                batch_count += 1
                if obs.enabled():
                    obs.counter("plan_batches_total",
                                "batches streamed by plan node type",
                                node=type(self).__name__).inc()
                if _batch_observer is not None:
                    _batch_observer(self, batch)
                yield batch
        finally:
            source.close()
            obs.record_span(f"plan.node.{type(self).__name__}",
                            wall_start, time.perf_counter(),
                            label=self.label(), rows=self.actual_rows,
                            batches=batch_count, batch_size=size)

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        raise NotImplementedError

    def execute(self, batch_size: int | None = None) -> list[tuple]:
        """Materialize the node's whole output (streaming underneath)."""
        self.reset_actuals()
        out: list[tuple] = []
        for batch in self.batches(batch_size):
            out.extend(batch)
        return out

    def reset_actuals(self) -> None:
        """Clear measured actuals on this subtree (before re-execution,
        so nodes skipped by early termination render as unmeasured)."""
        self.actual_rows = None
        self.actual_time_s = None
        for child in self.children():
            child.reset_actuals()

    # -- rendering ---------------------------------------------------------

    def children(self) -> tuple["Plan", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label()}>"


class TableScanPlan(Plan):
    """Full scan of one FROM binding.

    The scan snapshots the relation's row list (a pointer copy, not a
    row copy) when its first batch is requested, so a mutation arriving
    *between batches* neither corrupts iteration nor changes the rows
    this stream produces; the next query sees the mutation through the
    usual version checks.
    """

    def __init__(self, scope: Scope, binding: str, stats):
        super().__init__(scope, [binding])
        self.binding = binding
        self.relation = scope.relations[binding]
        self.stats = stats

    def records_output(self) -> float:
        return float(self.stats.row_count)

    def cost(self) -> float:
        return float(self.stats.row_count)

    def distinct_values(self, binding: str, column: str) -> float:
        return float(self.stats.distinct_values(column))

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        rows = list(self.relation.rows)  # stream-start snapshot
        for start in range(0, len(rows), size):
            yield [(row,) for row in rows[start:start + size]]

    def label(self) -> str:
        return (f"TableScan {self.relation.name}"
                + (f" {self.binding}" if self.binding
                   != self.relation.name.lower() else ""))


class IndexScanPlan(Plan):
    """Index access path for one binding: equality probes go through a
    :class:`~repro.relational.indexes.HashIndex`, range probes through a
    :class:`~repro.relational.indexes.SortedIndex` (both cached on the
    database and version-checked).  The index is resolved when the first
    batch is requested -- not at plan time -- so mutations between
    planning and execution are seen through the cache's staleness
    check."""

    def __init__(self, scope: Scope, binding: str, column: str,
                 interval: Interval, stats):
        super().__init__(scope, [binding])
        self.binding = binding
        self.relation = scope.relations[binding]
        self.column = column
        self.interval = interval
        self.stats = stats
        self.kind = "hash" if interval.is_point() else "sorted"

    def records_output(self) -> float:
        fraction = self.stats.selectivity(self.column, self.interval)
        return self.stats.row_count * fraction

    def cost(self) -> float:
        # An index probe touches only its matches (build cost amortizes
        # across the workload through the cache).
        return self.records_output()

    def distinct_values(self, binding: str, column: str) -> float:
        if column.lower() == self.column.lower():
            return 1.0 if self.interval.is_point() else max(
                1.0, self.stats.distinct_values(column)
                * self.stats.selectivity(self.column, self.interval))
        return min(float(self.stats.distinct_values(column)),
                   max(1.0, self.records_output()))

    def _matches(self) -> list[tuple]:
        cache = self.scope.database.indexes
        if self.kind == "hash":
            index = cache.hash_index(self.relation, self.column)
            return index.lookup(self.interval.low)
        index = cache.sorted_index(self.relation, self.column)
        return list(index.range(
            self.interval.low, self.interval.high,
            low_inclusive=not self.interval.low_open,
            high_inclusive=not self.interval.high_open))

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        matches = self._matches()
        for start in range(0, len(matches), size):
            yield [(row,) for row in matches[start:start + size]]

    def label(self) -> str:
        return (f"IndexScan {self.relation.name} on {self.column} "
                f"[{self.interval.render(self.column)}] ({self.kind})")


class FilterPlan(Plan):
    """Predicate evaluation over a child plan's output.

    Predicates are compiled once per stream into positional closures
    over the aligned row tuples; rows that survive accumulate into
    output batches of the configured size (a selective filter emits
    fewer, fuller batches rather than many near-empty ones)."""

    def __init__(self, child: Plan, predicates: Sequence, selectivity: float):
        super().__init__(child.scope, child.bindings)
        self.child = child
        self.predicates = list(predicates)
        self.selectivity = selectivity

    def records_output(self) -> float:
        return self.child.records_output() * self.selectivity

    def cost(self) -> float:
        return self.child.cost() + self.child.records_output()

    def distinct_values(self, binding: str, column: str) -> float:
        return min(self.child.distinct_values(binding, column),
                   max(1.0, self.records_output()))

    def _compiled_predicates(self) -> list:
        resolve = compiled.slot_resolver(
            [(binding, self.scope.relations[binding].schema)
             for binding in self.bindings])

        def interpreted(predicate):
            return lambda rows: predicate.evaluate(
                self.scope.environment(self.bindings, rows))

        return [compiled.compile_predicate(
                    predicate, resolve,
                    fallback=lambda p=predicate: interpreted(p))
                for predicate in self.predicates]

    def _fused_selection(self):
        """``(rows, selection)`` via column kernels when this node tops
        a kernel-capable scan+filter chain, else ``None`` (row path)."""
        if not _columnar_ready():
            return None
        chain = _scan_filter_chain(self)
        if chain is None:
            return None
        scan, filters = chain
        try:
            _store, rows, mask = _resolve_columnar(scan, filters,
                                                   account_last=False)
        except kernels.UnsupportedKernel:
            _count_fused("FilterPlan", False)
            return None
        _count_fused("FilterPlan", True)
        return rows, kernels.to_selection(mask)

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        fused = self._fused_selection()
        if fused is not None:
            rows, selection = fused
            if selection is None:
                for start in range(0, len(rows), size):
                    yield [(row,) for row in rows[start:start + size]]
            else:
                for start in range(0, len(selection), size):
                    yield [(rows[i],)
                           for i in selection[start:start + size]]
            return
        tests = self._compiled_predicates()
        if len(tests) == 1:
            test = tests[0]
        else:
            test = lambda rows: all(t(rows) for t in tests)
        out: list[tuple] = []
        for batch in self.child.batches(size):
            out.extend(rows for rows in batch if test(rows))
            while len(out) >= size:
                yield out[:size]
                out = out[size:]
        if out:
            yield out

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return ("Filter ["
                + " and ".join(p.render() for p in self.predicates) + "]")


class MergeExchangePlan(Plan):
    """Order-preserving parallel execution of a scan(+filter) pipeline.

    Workers claim :data:`~repro.plan.parallel.MORSEL_ROWS`-row ranges
    from a shared cursor and evaluate the fused columnar kernels over
    their disjoint slices (the numpy path releases the GIL, so ranges
    genuinely overlap on cores); a
    :class:`~repro.plan.parallel.MergeExchange` re-assembles morsel
    outputs in sequence order, so consumers observe *exactly* the
    serial row order, early termination (generator close) cancels the
    fan-out at the next morsel boundary, and a worker exception --
    including a statement timeout -- surfaces at the same ordinal
    position the serial stream would have raised it.

    The planner only inserts this node when :func:`parallel.choose_dop`
    grants more than one worker; at execution time the degree is
    re-clamped against the *current* ``REPRO_PARALLEL`` setting (plans
    are cached, knobs are not), and a clamp to one worker -- or a chain
    shape the kernels cannot fuse when columnar is off -- degrades to
    the child's ordinary serial stream.

    Chain-internal actuals differ from serial execution by design: the
    scan reports its full snapshot, intermediate filters stay
    unmeasured (the conjunction is evaluated as one fused mask, never
    per filter), and this node's own actuals carry the survivor count.
    """

    def __init__(self, child: Plan, dop: int):
        super().__init__(child.scope, child.bindings)
        self.child = child
        self.dop = dop
        self.worker_actuals: list[dict] = []

    def records_output(self) -> float:
        return self.child.records_output()

    def cost(self) -> float:
        return self.child.cost()

    def distinct_values(self, binding: str, column: str) -> float:
        return self.child.distinct_values(binding, column)

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        self.worker_actuals = []
        dop = min(self.dop, parallel.workers())
        chain = _scan_filter_chain(self.child)
        if dop <= 1 or chain is None:
            yield from self.child.batches(size)
            return
        scan, filters = chain
        deadline = getattr(_statement_deadline, "at", None)
        stream = None
        if _columnar_ready():
            try:
                stream = self._columnar_morsels(scan, filters, dop,
                                                deadline)
            except kernels.UnsupportedKernel:
                _count_fused("MergeExchangePlan", False)
        if stream is None:
            stream = self._row_morsels(scan, filters, dop, deadline)
        out: list[tuple] = []
        try:
            for part in stream:
                out.extend(part)
                while len(out) >= size:
                    yield out[:size]
                    out = out[size:]
            if out:
                yield out
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()

    def _columnar_morsels(self, scan: "TableScanPlan",
                          filters: Sequence["FilterPlan"], dop: int,
                          deadline: float | None) -> Iterator[list[tuple]]:
        start = time.perf_counter()
        store = scan.relation.column_store()
        rows = store.rows
        total_rows = len(rows)
        predicates = [predicate for node in filters
                      for predicate in node.predicates]
        binding = [scan.binding]
        # Pre-flight over an empty range: kernel support is decided by
        # predicate *shape*, so an unsupported predicate surfaces here,
        # on the consumer thread, before any worker fans out.
        kernels.predicate_mask(store, predicates, binding, 0, 0)
        scan.actual_rows = total_rows
        scan.actual_time_s = time.perf_counter() - start
        _count_fused("MergeExchangePlan", True)
        morsel_rows = parallel.MORSEL_ROWS
        total = (total_rows + morsel_rows - 1) // morsel_rows

        def morsel(seq: int) -> list[tuple]:
            lo = seq * morsel_rows
            hi = min(total_rows, lo + morsel_rows)
            selection = None
            if predicates:
                mask = kernels.predicate_mask(store, predicates, binding,
                                              lo, hi)
                selection = kernels.to_selection(mask)
            if selection is None:
                return [(row,) for row in rows[lo:hi]]
            return [(rows[lo + i],) for i in selection]

        return parallel.run_ordered(total, dop, morsel, deadline=deadline,
                                    label="MergeExchange",
                                    worker_stats=self.worker_actuals)

    def _row_morsels(self, scan: "TableScanPlan",
                     filters: Sequence["FilterPlan"], dop: int,
                     deadline: float | None) -> Iterator[list[tuple]]:
        """Morsel stream over the row path (columnar off or predicates
        outside the kernel subset): workers run the chain's compiled
        predicates per row, innermost filter first with short-circuit,
        exactly the serial FilterPlan order."""
        rows = list(scan.relation.rows)  # stream-start snapshot
        total_rows = len(rows)
        scan.actual_rows = total_rows
        scan.actual_time_s = 0.0
        tests = [test for node in filters
                 for test in node._compiled_predicates()]
        morsel_rows = parallel.MORSEL_ROWS
        total = (total_rows + morsel_rows - 1) // morsel_rows

        def morsel(seq: int) -> list[tuple]:
            lo = seq * morsel_rows
            hi = min(total_rows, lo + morsel_rows)
            if not tests:
                return [(row,) for row in rows[lo:hi]]
            return [(row,) for row in rows[lo:hi]
                    if all(test((row,)) for test in tests)]

        return parallel.run_ordered(total, dop, morsel, deadline=deadline,
                                    label="MergeExchange",
                                    worker_stats=self.worker_actuals)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"MergeExchange [dop={self.dop}]"


class HashJoinPlan(Plan):
    """Equi-join of two plans: hash the right input, probe from the
    left.  ``edges`` are ``(left_binding, left_col, right_binding,
    right_col)`` with sides already normalized.

    The build side (right) is the one intermediate this pipeline must
    materialize -- that is hashing, not batching.  The probe side
    streams: each left batch is probed as it arrives, matches accumulate
    into output batches of at most the configured size, and an empty
    build side terminates the join without pulling a single left batch.
    """

    def __init__(self, left: Plan, right: Plan,
                 edges: Sequence[tuple[str, str, str, str]]):
        super().__init__(left.scope, tuple(left.bindings)
                         + tuple(right.bindings))
        self.left = left
        self.right = right
        self.edges = list(edges)

    def records_output(self) -> float:
        estimate = self.left.records_output() * self.right.records_output()
        for left_bind, left_col, right_bind, right_col in self.edges:
            denominator = max(
                self.left.distinct_values(left_bind, left_col),
                self.right.distinct_values(right_bind, right_col), 1.0)
            estimate /= denominator
        return estimate

    def cost(self) -> float:
        return (self.left.cost() + self.right.cost()
                + self.left.records_output() + self.right.records_output()
                + self.records_output())

    def distinct_values(self, binding: str, column: str) -> float:
        owner = self.left if binding in self.left.bindings else self.right
        return min(owner.distinct_values(binding, column),
                   max(1.0, self.records_output()))

    def _key_positions(self):
        left_keys, right_keys = [], []
        for left_bind, left_col, right_bind, right_col in self.edges:
            left_slot = self.left.bindings.index(left_bind)
            left_pos = self.scope.relations[left_bind].schema.position(
                left_col)
            right_slot = self.right.bindings.index(right_bind)
            right_pos = self.scope.relations[right_bind].schema.position(
                right_col)
            left_keys.append((left_slot, left_pos))
            right_keys.append((right_slot, right_pos))
        return left_keys, right_keys

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        left_keys, right_keys = self._key_positions()
        fused_build = self._fused_build(right_keys)
        if fused_build is not None:
            yield from self._join_fused_build(fused_build, left_keys,
                                              right_keys, size)
            return
        buckets: dict[tuple, list[tuple]] = {}
        for batch in self.right.batches(size):
            for rows in batch:
                key = tuple(rows[slot][pos] for slot, pos in right_keys)
                if any(value is None for value in key):
                    continue
                buckets.setdefault(key, []).append(rows)
        if not buckets:
            return  # early termination: the left side is never pulled
        fused = self._fused_probe(left_keys)
        if fused is not None:
            yield from self._probe_columnar(fused, buckets, left_keys, size)
            return
        out: list[tuple] = []
        for batch in self.left.batches(size):
            for rows in batch:
                key = tuple(rows[slot][pos] for slot, pos in left_keys)
                if any(value is None for value in key):
                    continue
                for match in buckets.get(key, ()):
                    out.append(rows + match)
                    if len(out) >= size:
                        yield out
                        out = []
        if out:
            yield out

    def _fused_build(self, right_keys):
        """Resolve the build (right) side through column kernels when it
        is a kernel-capable scan+filter chain over a single join key;
        ``None`` = build buckets from streamed right batches."""
        if not _columnar_ready() or len(self.edges) != 1:
            return None
        chain = _scan_filter_chain(self.right)
        if chain is None:
            return None
        scan, filters = chain
        try:
            store, rows, mask = _resolve_columnar(scan, filters,
                                                  account_last=True)
            notnull = kernels.notnull_mask(store, right_keys[0][1])
        except kernels.UnsupportedKernel:
            _count_fused("HashJoinPlan", False)
            return None
        _count_fused("HashJoinPlan", True)
        # NULL join keys never enter buckets, so fold their exclusion
        # into the build mask up front.
        return store, rows, kernels.combine_and(mask, notnull)

    def _join_fused_build(self, fused, left_keys, right_keys,
                          size: int) -> Iterator[list[tuple]]:
        """Join with a columnar build side: the probe keys are collected
        first and pushed into the build side as a vectorized membership
        prefilter (a semi-join), so only build rows that can match at
        all pay the per-row bucket insert.  Output order matches the row
        path exactly (left row order, build ascending order per bucket).
        """
        store, rows, mask = fused
        if kernels.count(mask, len(rows)) == 0:
            return  # early termination: the left side is never pulled
        slot, left_position = left_keys[0]
        left_rows = [joined for batch in self.left.batches(size)
                     for joined in batch]
        probe_keys = {joined[slot][left_position] for joined in left_rows}
        probe_keys.discard(None)
        position = right_keys[0][1]
        buckets: dict[Any, list[tuple]] = {}
        if probe_keys:
            member = kernels.membership_mask(store, position,
                                             list(probe_keys))
            selection = kernels.to_selection(
                kernels.combine_and(mask, member))
            column = store.values(position)
            if selection is None:
                selection = range(len(rows))
            for i in selection:
                buckets.setdefault(column[i], []).append((rows[i],))
        out: list[tuple] = []
        for joined in left_rows:
            key = joined[slot][left_position]
            if key is None:
                continue
            for match in buckets.get(key, ()):
                out.append(joined + match)
                if len(out) >= size:
                    yield out
                    out = []
        if out:
            yield out

    def _fused_probe(self, left_keys):
        """Resolve the probe (left) side through column kernels when it
        is a kernel-capable scan+filter chain; ``None`` = stream it."""
        if not _columnar_ready():
            return None
        chain = _scan_filter_chain(self.left)
        if chain is None:
            return None
        scan, filters = chain
        try:
            store, rows, mask = _resolve_columnar(scan, filters,
                                                  account_last=True)
        except kernels.UnsupportedKernel:
            _count_fused("HashJoinPlan", False)
            return None
        _count_fused("HashJoinPlan", True)
        return store, rows, mask

    def _probe_columnar(self, fused, buckets, left_keys,
                        size: int) -> Iterator[list[tuple]]:
        """Probe *buckets* with the fused left side: a vectorized
        membership prefilter shrinks the selection to rows whose key
        occurs on the build side at all, then only those few rows pay
        the per-row bucket lookup.  Output order matches the row path
        exactly (left row order, build insertion order per bucket)."""
        store, rows, mask = fused
        positions = [position for _slot, position in left_keys]
        out: list[tuple] = []
        if len(positions) == 1:
            position = positions[0]
            scalar_buckets = {key[0]: matches
                              for key, matches in buckets.items()}
            member = kernels.membership_mask(store, position,
                                             list(scalar_buckets))
            selection = kernels.to_selection(
                kernels.combine_and(mask, member))
            column = store.values(position)
            for i in selection:
                matches = scalar_buckets.get(column[i])
                if not matches:
                    continue
                base = (rows[i],)
                for match in matches:
                    out.append(base + match)
                    if len(out) >= size:
                        yield out
                        out = []
        else:
            columns = [store.values(position) for position in positions]
            selection = kernels.to_selection(mask)
            indexes = (range(len(rows)) if selection is None
                       else selection)
            for i in indexes:
                key = tuple(column[i] for column in columns)
                matches = buckets.get(key)
                if not matches:
                    continue
                base = (rows[i],)
                for match in matches:
                    out.append(base + match)
                    if len(out) >= size:
                        yield out
                        out = []
        if out:
            yield out

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(f"{lb}.{lc} = {rb}.{rc}"
                         for lb, lc, rb, rc in self.edges)
        return f"HashJoin [{keys}]"


class ParallelHashJoinPlan(HashJoinPlan):
    """Hash join with a partitioned parallel build and an ordered
    parallel probe.

    Build phase: workers claim morsel ranges of the build (right) side,
    evaluate the fused filter + NOT NULL key mask over their slice, and
    scatter surviving row indices to hash partitions
    (:class:`~repro.plan.parallel.ScatterExchange`); fragments merge in
    morsel-sequence order per partition, so each partition's index list
    is globally ascending, and a second fan-out builds each partition's
    buckets independently -- bucket contents end up in ascending build
    row order, byte-for-byte what the serial build inserts.

    Probe phase: the probe (left) side runs as ordered morsels when it
    is itself a kernel-capable chain (each worker masks its range, then
    probes only the one partition a key can live in), otherwise it
    streams serially through the partitioned lookup.  Either way output
    order is exactly the serial join's: probe row order, ascending
    build order per bucket.

    Falls back to :class:`HashJoinPlan`'s serial execution whenever the
    effective worker count clamps to one, the join has multiple edges,
    columnar is off, or a side's predicates fall outside the kernel
    subset.
    """

    def __init__(self, left: Plan, right: Plan,
                 edges: Sequence[tuple[str, str, str, str]], dop: int):
        super().__init__(left, right, edges)
        self.dop = dop
        self.worker_actuals: list[dict] = []

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        self.worker_actuals = []
        dop = min(self.dop, parallel.workers())
        if dop <= 1 or len(self.edges) != 1 or not _columnar_ready():
            yield from super()._batches(size)
            return
        left_keys, right_keys = self._key_positions()
        build = self._partitioned_build(right_keys, dop)
        if build is None:
            yield from super()._batches(size)
            return
        scatter, partitions = build
        if not any(partitions):
            return  # early termination: the left side is never pulled
        yield from self._partitioned_probe(scatter, partitions, left_keys,
                                           size, dop)

    def _partitioned_build(self, right_keys, dop: int):
        """``(scatter, [buckets per partition])`` built partition-
        parallel, or ``None`` when the build side is not a
        kernel-capable chain (callers fall back to the serial join)."""
        chain = _scan_filter_chain(self.right)
        if chain is None:
            return None
        scan, filters = chain
        deadline = getattr(_statement_deadline, "at", None)
        start = time.perf_counter()
        store = scan.relation.column_store()
        rows = store.rows
        total_rows = len(rows)
        predicates = [predicate for node in filters
                      for predicate in node.predicates]
        binding = [scan.binding]
        position = right_keys[0][1]
        try:
            kernels.predicate_mask(store, predicates, binding, 0, 0)
        except kernels.UnsupportedKernel:
            _count_fused("ParallelHashJoinPlan", False)
            return None
        scan.actual_rows = total_rows
        scan.actual_time_s = time.perf_counter() - start
        _count_fused("ParallelHashJoinPlan", True)
        column = store.values(position)
        scatter = parallel.ScatterExchange(dop)
        parts = scatter.partitions
        morsel_rows = parallel.MORSEL_ROWS
        total = (total_rows + morsel_rows - 1) // morsel_rows

        def scatter_morsel(seq: int) -> list[list[int]]:
            lo = seq * morsel_rows
            hi = min(total_rows, lo + morsel_rows)
            mask = (kernels.predicate_mask(store, predicates, binding,
                                           lo, hi)
                    if predicates else None)
            notnull = kernels.notnull_mask(store, position, lo, hi)
            selection = kernels.to_selection(
                kernels.combine_and(mask, notnull))
            indices = (range(lo, hi) if selection is None
                       else [lo + i for i in selection])
            frags: list[list[int]] = [[] for _ in range(parts)]
            for i in indices:
                frags[scatter.route(column[i])].append(i)
            return frags

        fragments: list[list[int]] = [[] for _ in range(parts)]
        for frags in parallel.run_ordered(
                total, dop, scatter_morsel, deadline=deadline,
                label="ScatterExchange",
                worker_stats=self.worker_actuals):
            for part, frag in enumerate(frags):
                if frag:
                    fragments[part].extend(frag)

        def build_partition(part: int) -> dict:
            buckets: dict[Any, list[tuple]] = {}
            for i in fragments[part]:
                buckets.setdefault(column[i], []).append((rows[i],))
            return buckets

        partitions = list(parallel.run_ordered(
            parts, dop, build_partition, deadline=deadline,
            label="HashJoinBuild", worker_stats=self.worker_actuals))
        return scatter, partitions

    def _partitioned_probe(self, scatter, partitions, left_keys,
                           size: int, dop: int) -> Iterator[list[tuple]]:
        slot, position = left_keys[0]

        def lookup(key):
            if key is None:
                return None
            return partitions[scatter.route(key)].get(key)

        deadline = getattr(_statement_deadline, "at", None)
        chain = _scan_filter_chain(self.left)
        stream = None
        if chain is not None:
            stream = self._probe_morsels(chain, position, lookup, dop,
                                         deadline)
        if stream is not None:
            out: list[tuple] = []
            try:
                for part in stream:
                    out.extend(part)
                    while len(out) >= size:
                        yield out[:size]
                        out = out[size:]
                if out:
                    yield out
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
            return
        out = []
        for batch in self.left.batches(size):
            for joined in batch:
                matches = lookup(joined[slot][position])
                if not matches:
                    continue
                for match in matches:
                    out.append(joined + match)
                    if len(out) >= size:
                        yield out
                        out = []
        if out:
            yield out

    def _probe_morsels(self, chain, position: int, lookup, dop: int,
                       deadline: float | None):
        """Ordered morsel stream probing the partitioned build, or
        ``None`` when the probe chain's predicates fall outside the
        kernel subset (callers stream the probe side serially)."""
        scan, filters = chain
        start = time.perf_counter()
        store = scan.relation.column_store()
        rows = store.rows
        total_rows = len(rows)
        predicates = [predicate for node in filters
                      for predicate in node.predicates]
        binding = [scan.binding]
        try:
            kernels.predicate_mask(store, predicates, binding, 0, 0)
        except kernels.UnsupportedKernel:
            _count_fused("ParallelHashJoinPlan", False)
            return None
        scan.actual_rows = total_rows
        scan.actual_time_s = time.perf_counter() - start
        column = store.values(position)
        morsel_rows = parallel.MORSEL_ROWS
        total = (total_rows + morsel_rows - 1) // morsel_rows

        def morsel(seq: int) -> list[tuple]:
            lo = seq * morsel_rows
            hi = min(total_rows, lo + morsel_rows)
            selection = None
            if predicates:
                mask = kernels.predicate_mask(store, predicates, binding,
                                              lo, hi)
                selection = kernels.to_selection(mask)
            indices = (range(lo, hi) if selection is None
                       else [lo + i for i in selection])
            out: list[tuple] = []
            for i in indices:
                matches = lookup(column[i])
                if not matches:
                    continue
                base = (rows[i],)
                out.extend(base + match for match in matches)
            return out

        return parallel.run_ordered(total, dop, morsel, deadline=deadline,
                                    label="MergeExchange",
                                    worker_stats=self.worker_actuals)

    def label(self) -> str:
        return super().label() + f" (parallel dop={self.dop})"


class ProductPlan(Plan):
    """Cartesian product (no usable join edge).  The right side is
    materialized (it is re-scanned once per left row); the left side
    streams."""

    def __init__(self, left: Plan, right: Plan):
        super().__init__(left.scope, tuple(left.bindings)
                         + tuple(right.bindings))
        self.left = left
        self.right = right

    def records_output(self) -> float:
        return self.left.records_output() * self.right.records_output()

    def cost(self) -> float:
        return (self.left.cost() + self.right.cost()
                + self.records_output())

    def distinct_values(self, binding: str, column: str) -> float:
        owner = self.left if binding in self.left.bindings else self.right
        return owner.distinct_values(binding, column)

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        right_rows = [rows for batch in self.right.batches(size)
                      for rows in batch]
        if not right_rows:
            return
        out: list[tuple] = []
        for batch in self.left.batches(size):
            for rows in batch:
                for other in right_rows:
                    out.append(rows + other)
                    if len(out) >= size:
                        yield out
                        out = []
        if out:
            yield out

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Product"


class EmptyPlan(Plan):
    """Semantic short-circuit: the planner proved no row can satisfy the
    query, so nothing is scanned at all.  ``reason`` carries the
    intensional explanation shown by EXPLAIN."""

    def __init__(self, scope: Scope, bindings: Sequence[str], reason: str):
        super().__init__(scope, bindings)
        self.reason = reason

    def records_output(self) -> float:
        return 0.0

    def cost(self) -> float:
        return 0.0

    def distinct_values(self, binding: str, column: str) -> float:
        return 0.0

    def _batches(self, size: int) -> Iterator[list[tuple]]:
        yield from ()

    def label(self) -> str:
        return f"Empty [{self.reason}]"


class ProjectPlan(Plan):
    """Root node: SELECT-list evaluation, grouping, ORDER BY, DISTINCT.

    Delegates to the executor's shared projection so planned and legacy
    execution produce identical relations.  The child's batches are fed
    to the projection as a lazy row stream, so the joined intermediate
    is never materialized -- only the projected output rows (the result
    itself) accumulate here, which is the one permitted top-of-tree
    materialization.
    """

    def __init__(self, scope: Scope, statement: ast.SelectStmt,
                 child: Plan, result_name: str = "result"):
        super().__init__(scope, child.bindings)
        self.statement = statement
        self.child = child
        self.result_name = result_name
        #: Degree of parallelism granted by the planner for partial->
        #: final aggregation (1 = serial; only aggregate fast paths in
        #: :mod:`repro.plan.vectorized` consult it).
        self.dop = 1

    def records_output(self) -> float:
        return self.child.records_output()

    def cost(self) -> float:
        return self.child.cost() + self.child.records_output()

    def distinct_values(self, binding: str, column: str) -> float:
        return self.child.distinct_values(binding, column)

    def execute_relation(self, batch_size: int | None = None) -> Relation:
        self.reset_actuals()
        self.worker_actuals: list[dict] = []
        start = time.perf_counter()
        result = None
        if _columnar_ready():
            from repro.plan import vectorized
            result = vectorized.fast_result(self)
        if result is None:
            stream = (rows for batch in self.child.batches(batch_size)
                      for rows in batch)
            result = project_statement(self.scope, self.statement,
                                       self.child.bindings, stream,
                                       self.result_name)
        end = time.perf_counter()
        self.actual_rows = len(result)
        self.actual_time_s = end - start
        obs.record_span("plan.node.ProjectPlan", start, end,
                        label=self.label(), rows=len(result))
        return result

    def _batches(self, size: int):  # pragma: no cover - use execute_relation
        raise NotImplementedError("ProjectPlan executes to a Relation")

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        if self.statement.star:
            items = "*"
        else:
            items = ", ".join(item.render()
                              for item in self.statement.items)
        return f"Project [{items}]"
