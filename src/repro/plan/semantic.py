"""Semantic query optimization driven by the induced rule base.

The paper's induced rules are interval implications ("if 8000 <=
Displacement <= 30000 then Type = SSBN").  Before any tuple is scanned,
the planner runs the query's per-relation interval constraints through
the rule base:

* **Contradiction**: when a rule's premises are all implied by the
  query's constraints but its consequence is disjoint from them, no
  tuple can satisfy the query -- execution short-circuits to an empty
  result carrying an intensional explanation ("no CLASS row can have
  Type = SSBN and Displacement < 8000").
* **Tightening**: otherwise the consequence interval intersects the
  query's constraint on the same attribute, narrowing the range an
  index scan has to touch.

This is the same rewrite-before-evaluate idea used for query answering
over conceptual schemas (Calvanese et al.), applied to the induced
interval rules.  Soundness matches the rules': an induced rule holds on
the database it was induced from (and is maintained under updates by the
rule-maintenance subsystem), so rewrites never change the answer.
"""

from __future__ import annotations

from typing import NamedTuple

from repro import obs
from repro.rules.clause import Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

#: Fixpoint guard: interval intersection converges fast; this only
#: protects against pathological rule chains.
MAX_PASSES = 10


class SemanticNote(NamedTuple):
    """One applied rewrite, for EXPLAIN output."""

    kind: str  # "tighten" | "contradiction"
    rule: Rule
    message: str

    def render(self) -> str:
        return self.message


class SemanticResult(NamedTuple):
    """Outcome of semantic analysis for one relation's constraints."""

    intervals: dict[str, Interval]  # column key -> (tightened) interval
    contradiction: str | None  # intensional explanation, when proven empty
    notes: list[SemanticNote]


def _rule_applies(rule: Rule, relation_name: str,
                  intervals: dict[str, Interval]) -> bool:
    """Whether every premise of *rule* is implied by the query's
    constraints on *relation_name* (premise interval contains the
    query's interval for that attribute)."""
    key = relation_name.lower()
    if rule.rhs.attribute.relation.lower() != key:
        return False
    for clause in rule.lhs:
        if clause.attribute.relation.lower() != key:
            return False
        constraint = intervals.get(clause.attribute.attribute.lower())
        if constraint is None:
            return False
        if not clause.interval.contains(constraint):
            return False
    return True


def analyze(relation_name: str, intervals: dict[str, Interval],
            rules: RuleSet | None) -> SemanticResult:
    """Tighten *intervals* (column key -> interval) for one relation
    against *rules*, or prove them unsatisfiable.

    Only columns the query already constrains are tightened; attributes
    the rules mention but the query does not are left free, so the
    rewrite never invents restrictions the projection could observe.
    """
    current = dict(intervals)
    notes: list[SemanticNote] = []
    if rules is None or not len(rules) or not current:
        return SemanticResult(current, None, notes)

    with obs.span("plan.semantic", relation=relation_name,
                  constraints=len(current)) as span:
        for _pass in range(MAX_PASSES):
            changed = False
            for rule in rules:
                if not _rule_applies(rule, relation_name, current):
                    continue
                column = rule.rhs.attribute.attribute.lower()
                constraint = current.get(column)
                if constraint is None:
                    continue  # unconstrained column: nothing to tighten
                tightened = constraint.intersect(rule.rhs.interval)
                if tightened is None:
                    premise = " and ".join(c.render() for c in rule.lhs)
                    message = (
                        f"no {relation_name} row can satisfy the query: "
                        f"every row with {premise} has "
                        f"{rule.rhs.render()}, but the query requires "
                        f"{constraint.render(rule.rhs.attribute.render())} "
                        f"(R{rule.number})")
                    notes.append(SemanticNote("contradiction", rule,
                                              message))
                    obs.counter("semantic_rewrites_total",
                                "rule-driven planner rewrites by kind",
                                kind="short_circuit").inc()
                    span.set(outcome="short_circuit",
                             rule=f"R{rule.number}")
                    return SemanticResult(current, message, notes)
                if tightened != constraint:
                    current[column] = tightened
                    notes.append(SemanticNote(
                        "tighten", rule,
                        f"R{rule.number} tightens "
                        f"{rule.rhs.attribute.render()} to "
                        f"{tightened.render(rule.rhs.attribute.render())}"))
                    obs.counter("semantic_rewrites_total",
                                "rule-driven planner rewrites by kind",
                                kind="tighten").inc()
                    changed = True
            if not changed:
                break
        span.set(notes=len(notes))
    return SemanticResult(current, None, notes)
