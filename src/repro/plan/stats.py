"""Per-relation statistics for cost-based planning.

The planner needs three things the executor never kept: row counts,
per-column distinct-value counts (the classic join-cardinality
denominator), and value distributions (min/max plus a small equi-width
histogram for numeric columns) for range-selectivity estimates.

Statistics are snapshots cached in a :class:`StatisticsCatalog`, one per
:class:`~repro.relational.database.Database`.  Invalidation rides the
catalog's single signal: while ``Catalog.stats_version()`` is unchanged,
nothing in the database mutated and every cached snapshot is served
as-is; once it moves, each snapshot is re-validated against its
relation's identity and mutation version and recomputed only if that
relation actually changed.
"""

from __future__ import annotations

import math
from typing import Any

from repro import obs
from repro.relational import columnar
from repro.relational.columnar import DictionaryColumn, PlainColumn
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.rules.clause import Interval

#: Bucket count for equi-width histograms (small on purpose: statistics
#: must stay cheap to rebuild after mutations).
HISTOGRAM_BUCKETS = 16

#: Fallback fraction for predicates statistics cannot estimate
#: (SimpleDB uses a constant reduction factor in the same role).
DEFAULT_SELECTIVITY = 1 / 3


def _array_exact(np, array) -> bool:
    """Whether array reductions over *array* match the scalar path
    bit-for-bit.

    NaNs diverge (``set()`` distinguishes NaN objects by identity while
    ``np.unique`` collapses them) and integers at or past 2**53 round
    differently under int->float64 conversion than Python's
    correctly-rounded big-int division, so both fall back.
    """
    if array.dtype.kind == "f":
        return not bool(np.isnan(array).any())
    if array.dtype.kind == "i":
        if not len(array):
            return True
        bound = max(abs(int(array.min())), abs(int(array.max())))
        return bound < 2 ** 53
    return False


class Histogram:
    """Equi-width histogram over a numeric column.

    ``edges`` holds ``buckets + 1`` boundaries; ``counts[i]`` is the
    number of values in ``[edges[i], edges[i+1])`` (last bucket closed).
    """

    __slots__ = ("edges", "counts", "total")

    def __init__(self, edges: list[float], counts: list[int]):
        self.edges = edges
        self.counts = counts
        self.total = sum(counts)

    @classmethod
    def build(cls, values: list[Any],
              buckets: int = HISTOGRAM_BUCKETS) -> "Histogram | None":
        numeric = [v for v in values if isinstance(v, (int, float))
                   and not isinstance(v, bool)]
        if len(numeric) != len(values) or not numeric:
            return None
        low, high = min(numeric), max(numeric)
        if low == high:
            return cls([float(low), float(high)], [len(numeric)])
        width = (high - low) / buckets
        # Degenerate spans break equi-width bucketing: a span below
        # ~16 ulp underflows width to 0 (ZeroDivisionError), a span
        # beyond the float range overflows it to inf (NaN bucket
        # index).  One bucket keeps every invariant (counts sum to the
        # value count) at the cost of estimate resolution.
        if not (width > 0 and math.isfinite(width)):
            return cls([float(low), float(high)], [len(numeric)])
        counts = [0] * buckets
        for value in numeric:
            index = min(int((value - low) / width), buckets - 1)
            counts[index] += 1
        edges = [low + width * i for i in range(buckets)] + [float(high)]
        return cls(edges, counts)

    @classmethod
    def _from_array(cls, np, array,
                    buckets: int = HISTOGRAM_BUCKETS) -> "Histogram":
        """:meth:`build` as one vectorized bucketing pass.

        Bucket boundaries and indexes replicate the scalar formula
        bit-for-bit (same float64 operations in the same order), so the
        planner sees identical histograms on either path.
        """
        low = array.min().item()
        high = array.max().item()
        if low == high:
            return cls([float(low), float(high)], [len(array)])
        width = (high - low) / buckets
        if not (width > 0 and math.isfinite(width)):
            return cls([float(low), float(high)], [len(array)])
        indexes = ((array - low) / width).astype(np.int64)
        np.clip(indexes, 0, buckets - 1, out=indexes)
        counts = np.bincount(indexes, minlength=buckets)
        edges = [low + width * i for i in range(buckets)] + [float(high)]
        return cls(edges, [int(count) for count in counts])

    def fraction(self, interval: Interval) -> float:
        """Estimated fraction of values falling inside *interval*,
        by linear interpolation within buckets."""
        if not self.total:
            return 0.0
        lo = self.edges[0] if interval.low is None else interval.low
        hi = self.edges[-1] if interval.high is None else interval.high
        if lo > self.edges[-1] or hi < self.edges[0]:
            return 0.0
        covered = 0.0
        for i, count in enumerate(self.counts):
            left, right = self.edges[i], self.edges[i + 1]
            if right < lo or left > hi:
                continue
            if left >= lo and right <= hi:
                covered += count
                continue
            span = right - left
            if span <= 0:
                covered += count
                continue
            overlap = min(right, hi) - max(left, lo)
            if overlap <= 0:
                continue
            if overlap >= span:  # also catches inf/inf (NaN otherwise)
                covered += count
            else:
                covered += count * overlap / span
        return min(1.0, covered / self.total)


class ColumnStats:
    """Statistics for one column of one relation snapshot."""

    __slots__ = ("name", "non_null", "nulls", "distinct", "min", "max",
                 "histogram")

    def __init__(self, name: str, values: list[Any]):
        self.name = name
        present = [v for v in values if v is not None]
        self.non_null = len(present)
        self.nulls = len(values) - len(present)
        self.distinct = len(set(present))
        try:
            self.min = min(present) if present else None
            self.max = max(present) if present else None
        except TypeError:  # mixed, incomparable values
            self.min = self.max = None
        self.histogram = Histogram.build(present)

    @classmethod
    def from_column(cls, name: str, column) -> "ColumnStats":
        """Build from a column-store column without materializing rows.

        Dictionary columns read null/distinct counts straight off the
        code space; numeric plain columns reduce over their array.  Any
        column the fast paths cannot describe *exactly* (NULLs in a
        numeric column, NaN floats, integers past float53 precision,
        non-numeric plain values) falls back to the scalar constructor,
        so the numbers never depend on the storage layout.
        """
        np = columnar.numpy_module()
        if isinstance(column, DictionaryColumn):
            self = cls.__new__(cls)
            self.name = name
            size = len(column.codes)
            if np is not None:
                nulls = int((column.np_codes() < 0).sum())
            else:
                nulls = sum(1 for code in column.codes if code < 0)
            self.nulls = nulls
            self.non_null = size - nulls
            # Incremental appends only ever add values and every other
            # mutation rebuilds the store, so each dictionary entry is
            # backed by at least one live row: cardinality IS distinct.
            self.distinct = column.cardinality
            values = column.values
            try:
                self.min = min(values) if values else None
                self.max = max(values) if values else None
            except TypeError:
                self.min = self.max = None
            self.histogram = None  # dictionary columns are non-numeric
            return self
        if np is not None and isinstance(column, PlainColumn):
            array = column.array()  # built => numeric and NULL-free
            if array is not None and _array_exact(np, array):
                self = cls.__new__(cls)
                self.name = name
                self.non_null = len(array)
                self.nulls = 0
                self.distinct = int(np.unique(array).size)
                if len(array):
                    self.min = array.min().item()
                    self.max = array.max().item()
                    self.histogram = Histogram._from_array(np, array)
                else:
                    self.min = self.max = None
                    self.histogram = None
                return self
        return cls(name, list(column.values))

    def selectivity(self, interval: Interval, row_count: int) -> float:
        """Estimated fraction of the relation's rows whose column value
        lies in *interval* (NULLs never match).

        Range estimates are floored by the point-probe estimate
        (``1/distinct`` of the present mass) whenever the interval can
        reach the observed [min, max] band: a range that contains a
        point can never be estimated below that point, keeping
        ``estimate_range`` monotone in interval width (the property the
        planner's index-vs-scan choice relies on).
        """
        if row_count <= 0 or self.non_null == 0:
            return 0.0
        present = self.non_null / row_count
        if interval.is_point():
            if self.min is not None:
                try:
                    if (interval.low < self.min
                            or interval.low > self.max):
                        return 0.0
                except TypeError:
                    pass
            return present / max(1, self.distinct)
        if self.histogram is not None:
            fraction = self.histogram.fraction(interval)
        elif self.min is not None and self.max is not None:
            try:
                if ((interval.low is not None and interval.low > self.max)
                        or (interval.high is not None
                            and interval.high < self.min)):
                    return 0.0
            except TypeError:
                pass
            fraction = DEFAULT_SELECTIVITY
        else:
            fraction = DEFAULT_SELECTIVITY
        if self._reaches_data(interval):
            fraction = max(fraction, 1.0 / max(1, self.distinct))
        return min(1.0, present * fraction)

    def _reaches_data(self, interval: Interval) -> bool:
        """Whether *interval* overlaps the observed [min, max] band
        (assumed true when the band is unknown)."""
        if self.min is None or self.max is None:
            return True
        try:
            return interval.overlaps(Interval.closed(self.min, self.max))
        except TypeError:
            return True

    def __repr__(self) -> str:
        return (f"<ColumnStats {self.name}: {self.distinct} distinct, "
                f"{self.nulls} null, range [{self.min!r}, {self.max!r}]>")


class TableStats:
    """Statistics snapshot for one relation."""

    __slots__ = ("name", "row_count", "columns")

    def __init__(self, relation: Relation):
        self.name = relation.name
        self.row_count = len(relation)
        self.columns: dict[str, ColumnStats] = {}
        if columnar.enabled():
            # Reduce over the relation's column store (shared with the
            # execution kernels, so the transpose is paid once for
            # both); numbers match the scalar path exactly.
            store = relation.column_store()
            for column, store_column in zip(relation.schema.columns,
                                            store.columns):
                self.columns[column.key] = ColumnStats.from_column(
                    column.name, store_column)
            return
        # One transpose of the row list instead of one per-row position
        # lookup pass per column.
        for column, values in zip(relation.schema.columns,
                                  relation.column_arrays()):
            self.columns[column.key] = ColumnStats(column.name,
                                                   list(values))

    def column(self, name: str) -> ColumnStats:
        return self.columns[name.lower()]

    def distinct_values(self, column: str) -> int:
        return max(1, self.column(column).distinct)

    def selectivity(self, column: str, interval: Interval) -> float:
        return self.column(column).selectivity(interval, self.row_count)

    def __repr__(self) -> str:
        return f"<TableStats {self.name}: {self.row_count} rows>"


class _Entry:
    __slots__ = ("relation", "relation_version", "catalog_version", "stats")

    def __init__(self, relation: Relation, catalog_version: int,
                 stats: TableStats):
        self.relation = relation
        self.relation_version = relation.version
        self.catalog_version = catalog_version
        self.stats = stats


class StatisticsCatalog:
    """Cached :class:`TableStats` per relation of one database."""

    def __init__(self, database: Database):
        self.database = database
        self._entries: dict[str, _Entry] = {}
        self.recomputes = 0  #: observability: snapshot (re)computations

    def table_stats(self, name: str) -> TableStats:
        relation = self.database.relation(name)
        key = relation.name.lower()
        catalog_version = self.database.catalog.stats_version()
        entry = self._entries.get(key)
        if entry is not None:
            if entry.catalog_version == catalog_version:
                obs.counter("stats_cache_requests_total",
                            "statistics-cache probes by outcome",
                            result="hit").inc()
                return entry.stats  # nothing anywhere changed
            if (entry.relation is relation
                    and entry.relation_version == relation.version):
                entry.catalog_version = catalog_version
                obs.counter("stats_cache_requests_total",
                            "statistics-cache probes by outcome",
                            result="revalidated").inc()
                return entry.stats  # something else changed, not this
            obs.counter("stats_cache_invalidations_total",
                        "statistics snapshots invalidated by "
                        "relation mutations").inc()
        stats = TableStats(relation)
        self._entries[key] = _Entry(relation, catalog_version, stats)
        self.recomputes += 1
        obs.counter("stats_cache_requests_total",
                    "statistics-cache probes by outcome",
                    result="recompute").inc()
        return stats

    def invalidate(self) -> None:
        self._entries.clear()


def statistics(database: Database) -> StatisticsCatalog:
    """The database's statistics catalog, created on first use.

    Kept on the Database instance so every planner invocation over the
    same database shares one cache (and one invalidation signal).
    """
    catalog = getattr(database, "_statistics_catalog", None)
    if catalog is None or catalog.database is not database:
        catalog = StatisticsCatalog(database)
        database._statistics_catalog = catalog
    return catalog
