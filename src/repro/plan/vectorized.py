"""Vectorized output materialization and COUNT/GROUP BY fast paths.

The fused columnar kernels made predicate evaluation cheap; profiling
(ROADMAP) then showed ~64% of a fused scan's time going to the
per-output-row compiled projection closures.  This module removes that
tail for the common shapes:

* :func:`fast_project` -- when every SELECT item (and every ORDER BY
  key) is a plain column reference over a single scan(+filter) chain,
  survivors are gathered *column-at-a-time* from the
  :class:`~repro.relational.columnar.ColumnStore` and transposed with
  one ``zip`` instead of calling one closure per item per row.
* :func:`fast_aggregate` -- COUNT(*) / COUNT(col) and GROUP BY over a
  dictionary-encoded column reduce directly over dictionary codes:
  ``numpy.bincount`` over the code array on the numpy path, an array
  tally on the pure-Python path, never a per-group member list.

Both paths parallelize as partial -> final aggregation when the
planner granted the pipeline a degree of parallelism (the child is a
:class:`~repro.plan.plans.MergeExchangePlan`): workers produce
per-morsel partials (selections, code tallies) through
:func:`repro.plan.parallel.run_ordered`, and the consumer merges them
in morsel order -- counts add, group order is first appearance in
sequence order -- so results are byte-identical to serial execution.

Exact-semantics gating mirrors the kernels: a fast path engages only
when it provably reproduces the row path -- validation runs through
the *same* executor helpers (:func:`~repro.sql.executor.
_projection_items`, ``_validate_grouped``), predicates pre-flight
through :func:`~repro.relational.kernels.predicate_mask`, and any
unsupported shape returns ``None`` so the caller falls back to the
row-path projection, which reproduces interpreter behavior exactly.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro import obs
from repro.plan import parallel, plans
from repro.relational import columnar, kernels
from repro.relational.expressions import ColumnRef
from repro.sql import executor as _executor
from repro.sql.ast import AggregateCall


def fast_result(project):
    """Vectorized result :class:`~repro.relational.relation.Relation`
    for *project* (a :class:`~repro.plan.plans.ProjectPlan`), or
    ``None`` when only the row path reproduces exact semantics."""
    plans._check_statement_deadline()
    if plans._batch_observer is not None:
        # The observer contract promises every streamed (plan, batch)
        # pair; gathering columns would silently skip it.
        return None
    statement = project.statement
    if statement.has_aggregates() or statement.group_by:
        result = fast_aggregate(project)
        kind = "aggregate"
    else:
        result = fast_project(project)
        kind = "project"
    if obs.enabled():
        obs.counter("plan_vectorized_total",
                    "projections taken by the vectorized fast paths",
                    kind=kind,
                    result="fast" if result is not None else "fallback"
                    ).inc()
    return result


def _chain_of(project):
    """``(scan, filters, dop)`` when the plan under *project* is a
    scan(+filter) chain, optionally behind a merge exchange whose
    degree carries over; ``None`` otherwise."""
    child = project.child
    dop = 1
    if isinstance(child, plans.MergeExchangePlan):
        dop = min(child.dop, parallel.workers())
        chain = plans._scan_filter_chain(child.child)
    else:
        chain = plans._scan_filter_chain(child)
    if chain is None:
        return None
    scan, filters = chain
    return scan, filters, dop


def _prepare_chain(scan, filters):
    """``(store, predicates, binding)`` with the kernel pre-flight done
    (raises :class:`~repro.relational.kernels.UnsupportedKernel` on the
    consumer thread for shapes the kernels cannot fuse) and the scan's
    actuals set to its full snapshot."""
    start = time.perf_counter()
    store = scan.relation.column_store()
    predicates = [predicate for node in filters
                  for predicate in node.predicates]
    binding = [scan.binding]
    kernels.predicate_mask(store, predicates, binding, 0, 0)
    scan.actual_rows = len(store.rows)
    scan.actual_time_s = time.perf_counter() - start
    return store, predicates, binding


def _deadline():
    return getattr(plans._statement_deadline, "at", None)


# -- vectorized projection ---------------------------------------------------


def fast_project(project):
    statement = project.statement
    if statement.order_by and not all(
            isinstance(key, ColumnRef) for key in statement.order_by):
        return None
    resolved = _chain_of(project)
    if resolved is None:
        return None
    scan, filters, dop = resolved
    scope = project.scope
    # Same expansion + validation as the row path, so unknown columns
    # and ambiguities raise the identical SqlError at the same point.
    items = _executor._projection_items(scope, statement)
    if not all(isinstance(item.expression, ColumnRef) for item in items):
        return None
    try:
        store, predicates, binding = _prepare_chain(scan, filters)
    except kernels.UnsupportedKernel:
        return None
    selection = _chain_selection(store, predicates, binding, dop, project)
    schema = scan.relation.schema
    positions = [schema.position(item.expression.column) for item in items]
    columns = [_gathered(store, position, selection)
               for position in positions]
    rows = list(zip(*columns)) if columns else []
    survivors = len(rows)
    project.child.actual_rows = survivors
    if statement.order_by:
        sort_columns = [
            _gathered(store, schema.position(key.column), selection)
            for key in statement.order_by]
        order = sorted(range(survivors),
                       key=lambda i: tuple(
                           (column[i] is None,
                            column[i] if column[i] is not None else 0)
                           for column in sort_columns))
        rows = [rows[i] for i in order]
    names = _executor._output_names(items)
    return _executor._plain_result(scope, statement, items, names, rows,
                                   project.result_name)


def _gathered(store, position: int, selection) -> list:
    values = store.values(position)
    if selection is None:
        return list(values)
    return [values[i] for i in selection]


def _chain_selection(store, predicates, binding, dop: int, project):
    """Global selection vector of surviving row indices (``None`` =
    every row), with the mask evaluated morsel-parallel when *dop*
    grants workers (partial selections merge back in morsel order, so
    the vector is ascending exactly like the serial one)."""
    if not predicates:
        return None
    total_rows = len(store.rows)
    morsel_rows = parallel.MORSEL_ROWS
    if dop <= 1 or total_rows < 2 * morsel_rows:
        mask = kernels.predicate_mask(store, predicates, binding)
        return kernels.to_selection(mask)
    total = (total_rows + morsel_rows - 1) // morsel_rows

    def morsel(seq: int):
        lo = seq * morsel_rows
        hi = min(total_rows, lo + morsel_rows)
        mask = kernels.predicate_mask(store, predicates, binding, lo, hi)
        return lo, hi, kernels.to_selection(mask)

    selection: list[int] = []
    for lo, hi, part in parallel.run_ordered(
            total, dop, morsel, deadline=_deadline(),
            label="MergeExchange", worker_stats=project.worker_actuals):
        if part is None:
            selection.extend(range(lo, hi))
        else:
            selection.extend(lo + i for i in part)
    if len(selection) == total_rows:
        return None
    return selection


# -- COUNT / GROUP BY over dictionary codes ----------------------------------


def fast_aggregate(project):
    statement = project.statement
    if statement.order_by:
        return None
    resolved = _chain_of(project)
    if resolved is None:
        return None
    scan, filters, dop = resolved
    scope = project.scope
    # Same up-front validation as the row path (star/aggregate mixing,
    # GROUP BY membership, reference resolution).
    group_exprs = _executor._validate_grouped(scope, statement)
    if len(group_exprs) > 1:
        return None
    schema = scan.relation.schema
    specs: list[tuple[str, int | None]] = []
    for item in statement.items:
        expression = item.expression
        if item.is_aggregate():
            call: AggregateCall = expression
            if call.op != "count" or call.distinct:
                return None
            if call.operand is None:
                specs.append(("count_star", None))
            elif isinstance(call.operand, ColumnRef):
                specs.append(("count", schema.position(call.operand.column)))
            else:
                return None
        else:
            if not isinstance(expression, ColumnRef):
                return None
            specs.append(("key", None))
    try:
        store, predicates, binding = _prepare_chain(scan, filters)
    except kernels.UnsupportedKernel:
        return None
    agg_positions = sorted({position for kind, position in specs
                            if kind == "count"})
    if group_exprs:
        group = group_exprs[0]
        if not isinstance(group, ColumnRef):
            return None
        group_position = schema.position(group.column)
        column = store.columns[group_position]
        if not isinstance(column, columnar.DictionaryColumn):
            return None
        rows = _grouped_counts(store, predicates, binding, column,
                               agg_positions, specs, dop, project)
    else:
        rows = _global_counts(store, predicates, binding, agg_positions,
                              specs, dop, project)
    project.child.actual_rows = len(rows)
    names = _executor._output_names(statement.items)
    return _executor._grouped_result(scope, statement, names, rows,
                                     project.result_name)


def _morsel_layout(total_rows: int):
    morsel_rows = parallel.MORSEL_ROWS
    return morsel_rows, (total_rows + morsel_rows - 1) // morsel_rows


def _global_counts(store, predicates, binding, agg_positions, specs,
                   dop: int, project) -> list[tuple]:
    """One output row of global COUNTs, reduced as partial -> final
    sums over morsel ranges."""
    total_rows = len(store.rows)
    morsel_rows, total = _morsel_layout(total_rows)

    def morsel(seq: int):
        lo = seq * morsel_rows
        hi = min(total_rows, lo + morsel_rows)
        mask = (kernels.predicate_mask(store, predicates, binding, lo, hi)
                if predicates else None)
        size = kernels.count(mask, hi - lo)
        notnull = {}
        for position in agg_positions:
            part = kernels.notnull_mask(store, position, lo, hi)
            notnull[position] = kernels.count(
                kernels.combine_and(mask, part), hi - lo)
        return size, notnull

    total_count = 0
    notnull_totals = {position: 0 for position in agg_positions}
    for size, notnull in parallel.run_ordered(
            total, dop, morsel, deadline=_deadline(),
            label="PartialAggregate", worker_stats=project.worker_actuals):
        total_count += size
        for position in agg_positions:
            notnull_totals[position] += notnull[position]
    row = tuple(total_count if kind == "count_star"
                else notnull_totals[position]
                for kind, position in specs)
    return [row]


def _grouped_counts(store, predicates, binding, column, agg_positions,
                    specs, dop: int, project) -> list[tuple]:
    """GROUP BY over a dictionary column, reduced over codes: each
    morsel produces ``(codes in first-appearance order, count per code,
    non-null count per code per COUNT column)``; the final merge adds
    tallies and keeps first-appearance order across morsels, exactly
    the serial group order.  Tallies are indexed by ``code + 1`` so the
    NULL code (-1) lands in slot 0."""
    total_rows = len(store.rows)
    morsel_rows, total = _morsel_layout(total_rows)
    cardinality = len(column.values)
    np = columnar.numpy_module()
    np_codes = column.np_codes() if np is not None else None
    codes = column.codes
    plain_values = {position: store.values(position)
                    for position in agg_positions}

    def morsel(seq: int):
        lo = seq * morsel_rows
        hi = min(total_rows, lo + morsel_rows)
        mask = (kernels.predicate_mask(store, predicates, binding, lo, hi)
                if predicates else None)
        if np is not None:
            span_codes = np_codes[lo:hi]
            sel_codes = span_codes if mask is None else span_codes[mask]
            counts = np.bincount(sel_codes + 1,
                                 minlength=cardinality + 1)
            uniq, first = np.unique(sel_codes, return_index=True)
            code_order = [int(code) for code in uniq[np.argsort(first)]]
            notnull = {}
            for position in agg_positions:
                part = kernels.notnull_mask(store, position, lo, hi)
                if part is None:
                    notnull[position] = None  # == counts for this morsel
                else:
                    sel_part = part if mask is None else part[mask]
                    notnull[position] = np.bincount(
                        sel_codes + 1, weights=sel_part,
                        minlength=cardinality + 1)
            return code_order, counts, notnull
        selection = kernels.to_selection(mask)
        indices = (range(lo, hi) if selection is None
                   else [lo + i for i in selection])
        counts = [0] * (cardinality + 1)
        code_order: list[int] = []
        seen: set[int] = set()
        notnull = {position: [0] * (cardinality + 1)
                   for position in agg_positions}
        for i in indices:
            code = codes[i]
            slot = code + 1
            if code not in seen:
                seen.add(code)
                code_order.append(code)
            counts[slot] += 1
            for position in agg_positions:
                if plain_values[position][i] is not None:
                    notnull[position][slot] += 1
        return code_order, counts, notnull

    order_codes: list[int] = []
    seen: set[int] = set()
    if np is not None:
        count_totals = np.zeros(cardinality + 1, dtype=np.int64)
        notnull_totals = {position: np.zeros(cardinality + 1)
                          for position in agg_positions}
    else:
        count_totals = [0] * (cardinality + 1)
        notnull_totals = {position: [0] * (cardinality + 1)
                          for position in agg_positions}
    for code_order, counts, notnull in parallel.run_ordered(
            total, dop, morsel, deadline=_deadline(),
            label="PartialAggregate", worker_stats=project.worker_actuals):
        for code in code_order:
            if code not in seen:
                seen.add(code)
                order_codes.append(code)
        if np is not None:
            count_totals += counts
            for position in agg_positions:
                notnull_totals[position] += (
                    counts if notnull[position] is None
                    else notnull[position])
        else:
            for slot, value in enumerate(counts):
                count_totals[slot] += value
            for position in agg_positions:
                tally = notnull[position]
                for slot, value in enumerate(tally):
                    notnull_totals[position][slot] += value

    values_table = column.values
    rows: list[tuple] = []
    for code in order_codes:
        key = None if code < 0 else values_table[code]
        slot = code + 1
        out = []
        for kind, position in specs:
            if kind == "key":
                out.append(key)
            elif kind == "count_star":
                out.append(int(count_totals[slot]))
            else:
                out.append(int(notnull_totals[position][slot]))
        rows.append(tuple(out))
    return rows


__all__ = ["fast_aggregate", "fast_project", "fast_result"]
