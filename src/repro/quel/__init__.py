"""QUEL subset interpreter.

The paper's prototype was written in EQUEL (embedded QUEL) on INGRES and
Section 5.2.1 states the rule-induction algorithm as QUEL statements.
This package executes that dialect directly against a
:class:`~repro.relational.database.Database`::

    from repro.quel import QuelSession

    session = QuelSession(db)
    session.execute("range of r is SUBMARINE")
    result = session.execute(
        "retrieve into S unique (r.Class, r.Id) sort by r.Class")

Supported statements: ``range of``, ``retrieve [into] [unique] (...)
[where ...] [sort by ...]``, ``delete <var> [where ...]``, and
``append to <relation> (...) [where ...]``.
"""

from repro.quel.parser import parse_quel
from repro.quel.interpreter import QuelSession
from repro.quel import ast

__all__ = ["QuelSession", "parse_quel", "ast"]
