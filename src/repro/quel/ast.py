"""AST nodes for the QUEL subset.

Scalar and predicate expressions reuse the engine-level AST from
:mod:`repro.relational.expressions`; only statements are defined here.
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.expressions import Expression


class Statement:
    """Abstract QUEL statement."""

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.render()!r}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__


class RangeStmt(Statement):
    """``range of <variable> is <relation>``"""

    def __init__(self, variable: str, relation: str):
        self.variable = variable
        self.relation = relation

    def render(self) -> str:
        return f"range of {self.variable} is {self.relation}"


class Aggregate:
    """A whole-relation aggregate target: ``count(r.X)``, ``min(r.X)``,
    ``max(r.X)``, ``sum(r.X)``, ``avg(r.X)``, ``countu(r.X)`` (distinct
    count).  Aggregates appear only in retrieve target lists; the
    interpreter evaluates the operand per qualifying assignment and
    folds."""

    OPS = ("count", "countu", "min", "max", "sum", "avg")

    def __init__(self, op: str, operand: Expression):
        if op not in self.OPS:
            raise ValueError(f"unknown aggregate {op!r}")
        self.op = op
        self.operand = operand

    def render(self) -> str:
        return f"{self.op}({self.operand.render()})"

    def references(self):
        yield from self.operand.references()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Aggregate)
                and self.op == other.op and self.operand == other.operand)

    def __repr__(self) -> str:
        return f"<Aggregate {self.render()}>"


class Target:
    """One element of a retrieve target list: ``[alias =] expression``
    where the expression may also be an :class:`Aggregate`."""

    def __init__(self, expression: "Expression | Aggregate",
                 alias: str | None = None):
        self.expression = expression
        self.alias = alias

    def render(self) -> str:
        if self.alias:
            return f"{self.alias} = {self.expression.render()}"
        return self.expression.render()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Target)
                and self.alias == other.alias
                and self.expression == other.expression)

    def __repr__(self) -> str:
        return f"<Target {self.render()}>"


class RetrieveStmt(Statement):
    """``retrieve [into R] [unique] (targets) [where q] [sort by keys]``"""

    def __init__(self, targets: Sequence[Target],
                 into: str | None = None,
                 unique: bool = False,
                 where: Expression | None = None,
                 sort_by: Sequence[Expression] = ()):
        self.targets = tuple(targets)
        self.into = into
        self.unique = unique
        self.where = where
        self.sort_by = tuple(sort_by)

    def render(self) -> str:
        parts = ["retrieve"]
        if self.into:
            parts.append(f"into {self.into}")
        if self.unique:
            parts.append("unique")
        parts.append("(" + ", ".join(t.render() for t in self.targets) + ")")
        if self.where is not None:
            parts.append(f"where {self.where.render()}")
        if self.sort_by:
            parts.append(
                "sort by " + ", ".join(k.render() for k in self.sort_by))
        return " ".join(parts)


class DeleteStmt(Statement):
    """``delete <variable> [where q]``"""

    def __init__(self, variable: str, where: Expression | None = None):
        self.variable = variable
        self.where = where

    def render(self) -> str:
        text = f"delete {self.variable}"
        if self.where is not None:
            text += f" where {self.where.render()}"
        return text


class ReplaceStmt(Statement):
    """``replace <variable> (attr = expr, ...) [where q]`` -- INGRES
    QUEL's update statement."""

    def __init__(self, variable: str, assignments: Sequence[Target],
                 where: Expression | None = None):
        self.variable = variable
        self.assignments = tuple(assignments)
        self.where = where

    def render(self) -> str:
        body = ", ".join(a.render() for a in self.assignments)
        text = f"replace {self.variable} ({body})"
        if self.where is not None:
            text += f" where {self.where.render()}"
        return text


class AppendStmt(Statement):
    """``append to <relation> (attr = expr, ...) [where q]``"""

    def __init__(self, relation: str, assignments: Sequence[Target],
                 where: Expression | None = None):
        self.relation = relation
        self.assignments = tuple(assignments)
        self.where = where

    def render(self) -> str:
        body = ", ".join(a.render() for a in self.assignments)
        text = f"append to {self.relation} ({body})"
        if self.where is not None:
            text += f" where {self.where.render()}"
        return text
