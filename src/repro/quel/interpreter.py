"""Executor for the QUEL subset against the in-memory engine.

A :class:`QuelSession` owns a database connection and the set of declared
range variables.  Retrieval follows QUEL's tuple-calculus semantics: all
range variables mentioned in the target list or qualification are
iterated; variables appearing only in the qualification act as
existential witnesses (their multiplicity still shows in non-``unique``
retrieves, exactly as INGRES would produce before duplicate removal).
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro.errors import QuelError
from repro.quel import ast
from repro.quel.parser import parse_quel
from repro.relational.database import Database
from repro.relational.datatypes import infer_type, REAL
from repro.relational.expressions import (
    ColumnRef, Environment, Expression,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


class QuelSession:
    """A QUEL session: a database plus live range-variable declarations."""

    def __init__(self, database: Database):
        self.database = database
        #: range variable name (lowered) -> relation name
        self.ranges: dict[str, str] = {}

    # -- public API -----------------------------------------------------

    def execute(self, text: str) -> Relation | int | None:
        """Parse and run one or more statements; return the last result.

        ``retrieve`` returns a :class:`Relation`; ``delete``/``append``
        return the affected row count; ``range`` returns ``None``.
        """
        result: Relation | int | None = None
        for statement in parse_quel(text):
            result = self.run(statement)
        return result

    def run(self, statement: ast.Statement) -> Relation | int | None:
        if isinstance(statement, ast.RangeStmt):
            return self._run_range(statement)
        if isinstance(statement, ast.RetrieveStmt):
            return self._run_retrieve(statement)
        if isinstance(statement, ast.DeleteStmt):
            return self._run_delete(statement)
        if isinstance(statement, ast.AppendStmt):
            return self._run_append(statement)
        if isinstance(statement, ast.ReplaceStmt):
            return self._run_replace(statement)
        raise QuelError(f"unsupported statement {statement!r}")

    # -- statements ---------------------------------------------------------

    def _run_range(self, statement: ast.RangeStmt) -> None:
        if statement.relation not in self.database:
            raise QuelError(
                f"range declaration references unknown relation "
                f"{statement.relation!r}")
        self.ranges[statement.variable.lower()] = statement.relation
        return None

    def _run_retrieve(self, statement: ast.RetrieveStmt) -> Relation:
        if any(isinstance(t.expression, ast.Aggregate)
               for t in statement.targets):
            return self._run_aggregate_retrieve(statement)
        variables = self._variables_of(
            [t.expression for t in statement.targets]
            + ([statement.where] if statement.where else [])
            + list(statement.sort_by))
        names = self._result_names(statement.targets)

        rows: list[tuple] = []
        sort_values: list[tuple] = []
        for env in self._assignments(variables):
            if statement.where is not None and not statement.where.evaluate(
                    env):
                continue
            rows.append(tuple(
                target.expression.evaluate(env)
                for target in statement.targets))
            if statement.sort_by:
                sort_values.append(tuple(
                    key.evaluate(env) for key in statement.sort_by))

        schema = self._result_schema(
            statement.into or "result", names, statement.targets, rows)
        if statement.sort_by:
            order = sorted(range(len(rows)),
                           key=lambda i: _null_safe(sort_values[i]))
            rows = [rows[i] for i in order]
        result = Relation(schema, rows, validated=True)
        if statement.unique:
            result = result.distinct()
        if statement.into:
            self.database.catalog.register(result, replace=True)
        return result

    def _run_aggregate_retrieve(self, statement: ast.RetrieveStmt
                                ) -> Relation:
        """Whole-relation aggregates: every target must be one (this
        subset has no by-list grouping)."""
        if not all(isinstance(t.expression, ast.Aggregate)
                   for t in statement.targets):
            raise QuelError(
                "aggregate and plain targets cannot be mixed "
                "(no by-list grouping in this QUEL subset)")
        if statement.sort_by:
            raise QuelError("sort by is meaningless on aggregates")
        variables = self._variables_of(
            [t.expression.operand for t in statement.targets]
            + ([statement.where] if statement.where else []))
        columns_of_values: list[list[Any]] = [
            [] for _target in statement.targets]
        for env in self._assignments(variables):
            if statement.where is not None and not statement.where.evaluate(
                    env):
                continue
            for position, target in enumerate(statement.targets):
                columns_of_values[position].append(
                    target.expression.operand.evaluate(env))
        row = tuple(
            _fold_aggregate(target.expression.op, values)
            for target, values in zip(statement.targets,
                                      columns_of_values))
        names = self._result_names(statement.targets)
        columns = []
        for name, target, value in zip(names, statement.targets, row):
            op = target.expression.op
            if op in ("count", "countu"):
                datatype = infer_type(0)
            elif op in ("sum", "avg"):
                datatype = REAL
            else:
                datatype = (infer_type(value) if value is not None
                            else REAL)
            columns.append(Column(name, datatype))
        schema = RelationSchema(statement.into or "result", columns)
        result = Relation(schema, [row], validated=True)
        if statement.into:
            self.database.catalog.register(result, replace=True)
        return result

    def _run_delete(self, statement: ast.DeleteStmt) -> int:
        variable = statement.variable.lower()
        if variable not in self.ranges:
            raise QuelError(
                f"delete references undeclared range variable "
                f"{statement.variable!r}")
        relation = self.database.relation(self.ranges[variable])
        if statement.where is None:
            count = len(relation)
            relation.clear()
            return count

        other_variables = [
            v for v in self._variables_of([statement.where]) if v != variable]
        doomed: set[tuple] = set()
        for row in relation:
            env = Environment()
            env.bind(variable, relation.schema, row)
            if self._exists(other_variables, statement.where, env):
                doomed.add(row)
        return relation.delete_where(lambda row: row in doomed)

    def _run_append(self, statement: ast.AppendStmt) -> int:
        relation = self.database.relation(statement.relation)
        for target in statement.assignments:
            if target.alias is None:
                raise QuelError(
                    "append targets must be of the form attr = expression")
        variables = self._variables_of(
            [t.expression for t in statement.assignments]
            + ([statement.where] if statement.where else []))
        appended = 0
        batch: list[list[Any]] = []
        for env in self._assignments(variables):
            if statement.where is not None and not statement.where.evaluate(
                    env):
                continue
            record = {t.alias.lower(): t.expression.evaluate(env)
                      for t in statement.assignments}
            unknown = set(record) - {c.key for c in relation.schema.columns}
            if unknown:
                raise QuelError(
                    f"append to {relation.name}: unknown attributes "
                    f"{sorted(unknown)}")
            batch.append([record.get(c.key) for c in relation.schema.columns])
            appended += 1
        relation.insert_many(batch)
        return appended

    def _run_replace(self, statement: ast.ReplaceStmt) -> int:
        """``replace r (attr = expr, ...) where q`` -- update in place.

        Assignment expressions may reference the replaced variable and
        any qualification witnesses (the first satisfying witness
        binding is used, INGRES-style)."""
        variable = statement.variable.lower()
        if variable not in self.ranges:
            raise QuelError(
                f"replace references undeclared range variable "
                f"{statement.variable!r}")
        relation = self.database.relation(self.ranges[variable])
        for target in statement.assignments:
            if target.alias is None:
                raise QuelError(
                    "replace targets must be of the form attr = "
                    "expression")
            if not relation.schema.has_column(target.alias):
                raise QuelError(
                    f"replace: {relation.name} has no attribute "
                    f"{target.alias!r}")

        referenced = self._variables_of(
            [t.expression for t in statement.assignments]
            + ([statement.where] if statement.where else []))
        other_variables = [v for v in referenced if v != variable]

        from repro.relational.expressions import TRUE
        qualification = (statement.where if statement.where is not None
                         else TRUE)
        updates: dict[int, tuple] = {}
        for index, row in enumerate(relation.rows):
            env = Environment()
            env.bind(variable, relation.schema, row)
            # _exists leaves the first satisfying witness bound in env.
            if not self._exists(other_variables, qualification, env):
                continue
            record = {target.alias.lower():
                      target.expression.evaluate(env)
                      for target in statement.assignments}
            new_row = [
                record.get(column.key, row[position])
                for position, column in enumerate(relation.schema.columns)]
            updates[index] = relation.schema.check_row(new_row)
        for index, new_row in updates.items():
            relation.rows[index] = new_row
        return len(updates)

    # -- helpers ------------------------------------------------------------

    def _variables_of(self, expressions: Sequence[Expression]) -> list[str]:
        """Range variables referenced by *expressions*, in declaration
        order.  Unqualified references are rejected (QUEL requires a
        range variable)."""
        seen: set[str] = set()
        for expression in expressions:
            for ref in expression.references():
                if ref.qualifier is None:
                    raise QuelError(
                        f"unqualified column {ref.column!r}: QUEL "
                        "references must use a range variable")
                name = ref.qualifier.lower()
                if name not in self.ranges:
                    raise QuelError(
                        f"undeclared range variable {ref.qualifier!r}")
                seen.add(name)
        return [name for name in self.ranges if name in seen]

    def _assignments(self, variables: Sequence[str]):
        """Yield environments for the cross product of variable ranges."""
        relations = [self.database.relation(self.ranges[v])
                     for v in variables]
        if not variables:
            yield Environment()
            return
        for combination in itertools.product(*(r.rows for r in relations)):
            env = Environment()
            for variable, relation, row in zip(variables, relations,
                                               combination):
                env.bind(variable, relation.schema, row)
            yield env

    def _exists(self, variables: Sequence[str], where: Expression,
                base: Environment) -> bool:
        relations = [self.database.relation(self.ranges[v])
                     for v in variables]
        if not variables:
            return bool(where.evaluate(base))
        for combination in itertools.product(*(r.rows for r in relations)):
            for variable, relation, row in zip(variables, relations,
                                               combination):
                base.bind(variable, relation.schema, row)
            if where.evaluate(base):
                return True
        return False

    def _result_names(self, targets: Sequence[ast.Target]) -> list[str]:
        names: list[str] = []
        used: set[str] = set()
        for index, target in enumerate(targets):
            if target.alias:
                name = target.alias
            elif isinstance(target.expression, ColumnRef):
                name = target.expression.column
            elif isinstance(target.expression, ast.Aggregate):
                name = target.expression.op
            else:
                name = f"col{index + 1}"
            base = name
            suffix = 2
            while name.lower() in used:
                name = f"{base}_{suffix}"
                suffix += 1
            used.add(name.lower())
            names.append(name)
        return names

    def _result_schema(self, name: str, column_names: Sequence[str],
                       targets: Sequence[ast.Target],
                       rows: Sequence[tuple]) -> RelationSchema:
        columns = []
        for position, (column_name, target) in enumerate(
                zip(column_names, targets)):
            datatype = None
            expression = target.expression
            if isinstance(expression, ColumnRef) and expression.qualifier:
                source = self.database.relation(
                    self.ranges[expression.qualifier.lower()])
                datatype = source.schema.column(expression.column).datatype
            if datatype is None:
                sample = next(
                    (row[position] for row in rows
                     if row[position] is not None), None)
                datatype = infer_type(sample) if sample is not None else REAL
            columns.append(Column(column_name, datatype))
        return RelationSchema(name, columns)


def _fold_aggregate(op: str, values: list) -> Any:
    """Fold one aggregate over its collected values (NULLs ignored,
    matching the engine's comparison semantics)."""
    present = [value for value in values if value is not None]
    if op == "count":
        return len(present)
    if op == "countu":
        return len(set(present))
    if not present:
        return None
    if op == "min":
        return min(present)
    if op == "max":
        return max(present)
    if op == "sum":
        return float(sum(present))
    if op == "avg":
        return float(sum(present)) / len(present)
    raise QuelError(f"unknown aggregate {op!r}")


class _NullLowKey:
    """Sort key wrapper ordering None below everything."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_NullLowKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullLowKey) and self.value == other.value


def _null_safe(values: tuple) -> tuple:
    return tuple(_NullLowKey(v) for v in values)
