"""Recursive-descent parser for the QUEL subset.

Grammar (keywords case-insensitive)::

    program    := statement*
    statement  := range | retrieve | delete | append
    range      := "range" "of" IDENT "is" IDENT
    retrieve   := "retrieve" ["into" IDENT] ["unique"]
                  "(" target ("," target)* ")"
                  ["where" qual] ["sort" "by" sortkey ("," sortkey)*]
    target     := [IDENT "="] expr
    delete     := "delete" IDENT ["where" qual]
    append     := "append" "to" IDENT "(" target ("," target)* ")"
                  ["where" qual]
    qual       := andterm ("or" andterm)*
    andterm    := notterm ("and" notterm)*
    notterm    := "not" notterm | "(" qual ")" | comparison
    comparison := expr CMP expr
    expr       := term (("+"|"-") term)*
    term       := factor (("*"|"/") factor)*
    factor     := "-" factor | NUMBER | STRING | IDENT ["." IDENT]
                  | "(" expr ")"

Statements may be separated by newlines or ``;``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.langutil import Scanner, TokenStream, TokenKind
from repro.quel import ast
from repro.relational.expressions import (
    And, Arithmetic, ColumnRef, Comparison, Expression, Literal, Not, Or,
)

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".",
              "+", "-", "*", "/", ";")
_SCANNER = Scanner(operators=_OPERATORS)

#: Words that terminate an expression at statement level.
_KEYWORDS = {
    "range", "of", "is", "retrieve", "into", "unique", "where", "sort",
    "by", "delete", "append", "to", "and", "or", "not", "replace",
}

_COMPARISON_TOKENS = {"=": "=", "!=": "!=", "<>": "!=", "<": "<",
                      "<=": "<=", ">": ">", ">=": ">="}


def parse_quel(text: str) -> list[ast.Statement]:
    """Parse QUEL *text* into a list of statements."""
    stream = TokenStream(_SCANNER.scan(text))
    statements: list[ast.Statement] = []
    while not stream.at_end():
        while stream.accept_op(";"):
            pass
        if stream.at_end():
            break
        statements.append(_statement(stream))
    return statements


def _statement(stream: TokenStream) -> ast.Statement:
    if stream.at_keyword("range"):
        return _range(stream)
    if stream.at_keyword("retrieve"):
        return _retrieve(stream)
    if stream.at_keyword("delete"):
        return _delete(stream)
    if stream.at_keyword("append"):
        return _append(stream)
    if stream.at_keyword("replace"):
        return _replace(stream)
    stream.fail("expected a QUEL statement "
                "(range / retrieve / delete / append / replace)")
    raise AssertionError("unreachable")


def _range(stream: TokenStream) -> ast.RangeStmt:
    stream.expect_keyword("range")
    stream.expect_keyword("of")
    variable = stream.expect_ident("range variable").text
    stream.expect_keyword("is")
    relation = stream.expect_ident("relation name").text
    return ast.RangeStmt(variable, relation)


def _retrieve(stream: TokenStream) -> ast.RetrieveStmt:
    stream.expect_keyword("retrieve")
    into = None
    if stream.accept_keyword("into"):
        into = stream.expect_ident("result relation name").text
    unique = stream.accept_keyword("unique")
    targets = _target_list(stream)
    where = _optional_where(stream)
    sort_by: list[Expression] = []
    if stream.accept_keyword("sort"):
        stream.expect_keyword("by")
        sort_by.append(_expression(stream))
        while stream.accept_op(","):
            sort_by.append(_expression(stream))
    return ast.RetrieveStmt(targets, into=into, unique=unique,
                            where=where, sort_by=sort_by)


def _delete(stream: TokenStream) -> ast.DeleteStmt:
    stream.expect_keyword("delete")
    variable = stream.expect_ident("range variable").text
    where = _optional_where(stream)
    return ast.DeleteStmt(variable, where)


def _append(stream: TokenStream) -> ast.AppendStmt:
    stream.expect_keyword("append")
    stream.expect_keyword("to")
    relation = stream.expect_ident("relation name").text
    assignments = _target_list(stream)
    where = _optional_where(stream)
    return ast.AppendStmt(relation, assignments, where)


def _replace(stream: TokenStream) -> ast.ReplaceStmt:
    stream.expect_keyword("replace")
    variable = stream.expect_ident("range variable").text
    assignments = _target_list(stream)
    where = _optional_where(stream)
    return ast.ReplaceStmt(variable, assignments, where)


def _target_list(stream: TokenStream) -> list[ast.Target]:
    stream.expect_op("(")
    targets = [_target(stream)]
    while stream.accept_op(","):
        targets.append(_target(stream))
    stream.expect_op(")")
    return targets


def _target(stream: TokenStream) -> ast.Target:
    # Lookahead for `alias = expr`: IDENT '=' not followed by comparison use.
    if (stream.current.kind is TokenKind.IDENT
            and stream.current.text.lower() not in _KEYWORDS
            and stream.peek().is_op("=")):
        alias = stream.advance().text
        stream.expect_op("=")
        return ast.Target(_target_expression(stream), alias=alias)
    return ast.Target(_target_expression(stream))


def _target_expression(stream: TokenStream):
    """An aggregate call or a plain scalar expression."""
    token = stream.current
    if (token.kind is TokenKind.IDENT
            and token.text.lower() in ast.Aggregate.OPS
            and stream.peek().is_op("(")):
        op = stream.advance().text.lower()
        stream.expect_op("(")
        operand = _expression(stream)
        stream.expect_op(")")
        return ast.Aggregate(op, operand)
    return _expression(stream)


def _optional_where(stream: TokenStream) -> Expression | None:
    if stream.accept_keyword("where"):
        return _qualification(stream)
    return None


def _qualification(stream: TokenStream) -> Expression:
    parts = [_and_term(stream)]
    while stream.accept_keyword("or"):
        parts.append(_and_term(stream))
    return parts[0] if len(parts) == 1 else Or(parts)


def _and_term(stream: TokenStream) -> Expression:
    parts = [_not_term(stream)]
    while stream.accept_keyword("and"):
        parts.append(_not_term(stream))
    return parts[0] if len(parts) == 1 else And(parts)


def _not_term(stream: TokenStream) -> Expression:
    if stream.accept_keyword("not"):
        return Not(_not_term(stream))
    if stream.at_op("("):
        # Could be a parenthesized qualification or the left side of a
        # comparison; try a qualification and backtrack if it fails or a
        # comparison operator follows (parenthesized scalar expression).
        saved = stream._index
        try:
            stream.expect_op("(")
            inner = _qualification(stream)
            stream.expect_op(")")
        except ParseError:
            stream._index = saved
        else:
            follows_comparison = (
                stream.current.kind is TokenKind.OP
                and stream.current.text in _COMPARISON_TOKENS)
            if follows_comparison:
                stream._index = saved
            else:
                return inner
    return _comparison(stream)


def _comparison(stream: TokenStream) -> Expression:
    left = _expression(stream)
    token = stream.current
    if token.kind is not TokenKind.OP or (
            token.text not in _COMPARISON_TOKENS):
        stream.fail("expected a comparison operator")
    stream.advance()
    op = _COMPARISON_TOKENS[token.text]
    right = _expression(stream)
    return Comparison(op, left, right)


def _expression(stream: TokenStream) -> Expression:
    left = _term(stream)
    while stream.at_op("+", "-"):
        op = stream.advance().text
        left = Arithmetic(op, left, _term(stream))
    return left


def _term(stream: TokenStream) -> Expression:
    left = _factor(stream)
    while stream.at_op("*", "/"):
        op = stream.advance().text
        left = Arithmetic(op, left, _factor(stream))
    return left


def _factor(stream: TokenStream) -> Expression:
    token = stream.current
    if stream.accept_op("-"):
        operand = _factor(stream)
        if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)):
            return Literal(-operand.value)
        return Arithmetic("-", Literal(0), operand)
    if token.kind is TokenKind.NUMBER:
        stream.advance()
        return Literal(token.value)
    if token.kind is TokenKind.STRING:
        stream.advance()
        return Literal(token.value)
    if stream.accept_op("("):
        inner = _expression(stream)
        stream.expect_op(")")
        return inner
    if token.kind is TokenKind.IDENT:
        if token.text.lower() in _KEYWORDS:
            stream.fail(f"unexpected keyword {token.text!r} in expression")
        stream.advance()
        if stream.accept_op("."):
            column = stream.expect_ident("attribute name").text
            return ColumnRef(column, qualifier=token.text)
        return ColumnRef(token.text)
    stream.fail("expected an expression")
    raise AssertionError("unreachable")
