"""The intensional query processing system (Figure 6).

One object ties the architecture together: the traditional query
processor (our SQL executor) produces the extensional answer, the
intelligent data dictionary supplies schema knowledge and induced rules,
and the inference processor derives the intensional answers::

    from repro.query import IntensionalQueryProcessor
    from repro.testbed import ship_database, ship_ker_schema

    system = IntensionalQueryProcessor.from_database(
        ship_database(), ker_schema=ship_ker_schema())
    result = system.ask("SELECT ... FROM ... WHERE ...")
    result.extensional          # Relation
    result.inference.summary()  # intensional answers
"""

from repro.query.conditions import QueryConditions, extract_conditions
from repro.query.system import IntensionalQueryProcessor, QueryResult

__all__ = [
    "QueryConditions",
    "extract_conditions",
    "IntensionalQueryProcessor",
    "QueryResult",
]
