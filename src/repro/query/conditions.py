"""Extracting inference facts from a parsed SQL query.

The inference processor consumes the query's *conditions* (attribute-vs-
constant comparisons become interval clauses) and its *join structure*
(attribute-vs-attribute equalities become attribute equivalences, which
extend the canonicalizer).  Disjunctions, negations and other forms the
interval fact model cannot represent are reported as ``unused`` -- the
extensional answer still honours them; the intensional answer simply
does not exploit them.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import SqlError
from repro.relational.database import Database
from repro.relational.expressions import (
    ColumnRef, Comparison, Expression, Literal, conjuncts,
)
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.sql.ast import SelectStmt


class QueryConditions(NamedTuple):
    """What inference can use from a query."""

    clauses: list[Clause]
    equivalences: list[tuple[AttributeRef, AttributeRef]]
    unused: list[Expression]
    output_refs: list[AttributeRef]


def extract_conditions(database: Database,
                       statement: SelectStmt) -> QueryConditions:
    """Extract inference facts from *statement*.

    Table aliases are resolved to relation names so that clause
    attributes match the rule base's references.
    """
    alias_map: dict[str, str] = {}
    for table in statement.tables:
        relation = database.relation(table.name)
        alias_map[table.binding.lower()] = relation.name
        alias_map[relation.name.lower()] = relation.name

    def resolve(ref: ColumnRef) -> AttributeRef:
        if ref.qualifier is not None:
            relation_name = alias_map.get(ref.qualifier.lower())
            if relation_name is None:
                raise SqlError(f"unknown table or alias {ref.qualifier!r}")
            return AttributeRef(relation_name, ref.column)
        hits = [name for name in dict.fromkeys(alias_map.values())
                if database.relation(name).schema.has_column(ref.column)]
        if len(hits) != 1:
            raise SqlError(
                f"column {ref.column!r} is "
                + ("unknown" if not hits else "ambiguous"))
        return AttributeRef(hits[0], ref.column)

    clauses: list[Clause] = []
    equivalences: list[tuple[AttributeRef, AttributeRef]] = []
    unused: list[Expression] = []
    for conjunct in conjuncts(statement.where):
        if not isinstance(conjunct, Comparison):
            unused.append(conjunct)
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if conjunct.op == "=":
                equivalences.append((resolve(left), resolve(right)))
            else:
                unused.append(conjunct)
            continue
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            conjunct = conjunct.flipped()
            left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if conjunct.op == "!=":
                unused.append(conjunct)  # not an interval
                continue
            clauses.append(Clause(
                resolve(left),
                Interval.from_comparison(conjunct.op, right.value)))
            continue
        unused.append(conjunct)

    output_refs: list[AttributeRef] = []
    for item in statement.items:
        if isinstance(item.expression, ColumnRef):
            output_refs.append(resolve(item.expression))
    return QueryConditions(clauses, equivalences, unused, output_refs)
