"""The end-to-end intensional query processing system.

Architecture (Figure 6): query -> traditional query processor (the SQL
executor, producing the extensional answer) + inference processor over
the intelligent data dictionary (schema + induced rules), producing the
intensional answers.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro import obs
from repro.induction.config import InductionConfig
from repro.induction.ils import InductiveLearningSubsystem
from repro.inference.answers import InferenceResult, IntensionalAnswer
from repro.inference.engine import TypeInferenceEngine
from repro.ker.binding import SchemaBinding
from repro.ker.model import KerSchema
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.rules.ruleset import RuleSet
from repro.errors import SqlError
from repro.query.conditions import extract_conditions
from repro.sql.ast import ExplainStmt, SelectStmt
from repro.sql.executor import execute_select
from repro.sql.parser import parse_select


def _induce_all_comparisons(binding: SchemaBinding) -> list:
    """Comparison constraints over every relationship type (a backed
    type with two or more object-typed attributes)."""
    from repro.induction.candidates import foreign_key_map
    from repro.induction.interobject import induce_comparison_constraints
    from repro.rules.clause import AttributeRef

    fk = foreign_key_map(binding)
    constraints: list = []
    for object_type in binding.schema.object_types.values():
        if not binding.is_backed(object_type.name):
            continue
        relation = binding.database.relation(object_type.name)
        fk_count = sum(
            1 for attribute in object_type.attributes
            if AttributeRef(relation.name, attribute.name) in fk)
        if fk_count >= 2:
            constraints.extend(
                induce_comparison_constraints(binding, relation.name))
    return constraints


class QueryResult:
    """Extensional answer plus intensional characterizations.

    ``warnings`` carries degradation notices -- today, that the rule
    base is stale after recovery and intensional answering was
    suppressed rather than risk answers induced from different data.
    """

    def __init__(self, statement: SelectStmt, extensional: Relation,
                 inference: InferenceResult, unused: Sequence,
                 warnings: Sequence[str] = ()):
        self.statement = statement
        self.extensional = extensional
        self.inference = inference
        self.unused = tuple(unused)
        self.warnings = tuple(warnings)

    @property
    def intensional(self) -> list[IntensionalAnswer]:
        return self.inference.answers()

    def combined_answer(self) -> str | None:
        return self.inference.combined_answer()

    def render(self, max_rows: int | None = 20) -> str:
        lines = [self.statement.render(), "",
                 "Extensional answer:",
                 self.extensional.render(max_rows=max_rows), "",
                 self.inference.summary()]
        for warning in self.warnings:
            lines.append(f"WARNING: {warning}")
        if self.unused:
            lines.append(
                "(conditions unused by inference: "
                + "; ".join(e.render() for e in self.unused) + ")")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<QueryResult {len(self.extensional)} tuples, "
                f"{len(self.intensional)} intensional answers>")


class IntensionalQueryProcessor:
    """SQL in; extensional tuples and intensional answers out."""

    def __init__(self, database: Database, rules: RuleSet,
                 binding: SchemaBinding | None = None,
                 constraints: list | None = None):
        self.database = database
        self.rules = rules
        self.binding = binding
        self.constraints = constraints or []
        self.engine = TypeInferenceEngine(rules, binding=binding,
                                          constraints=self.constraints)

    @classmethod
    def from_database(cls, database: Database,
                      ker_schema: KerSchema | None = None,
                      config: InductionConfig | None = None,
                      relation_order: list[str] | None = None,
                      include_schema_rules: bool = False,
                      induce_comparisons: bool = False,
                      ) -> "IntensionalQueryProcessor":
        """Build the full pipeline: bind the schema, induce the rules.

        With ``include_schema_rules`` the declared with-constraint rules
        are merged into the knowledge base alongside the induced ones.
        With ``induce_comparisons`` inter-attribute comparison
        constraints (Section 3.1's "draft < depth" form) are induced
        over every relationship type and used for bound propagation.
        """
        binding = None
        rules = RuleSet()
        constraints: list = []
        if ker_schema is not None:
            binding = SchemaBinding(ker_schema, database)
            ils = InductiveLearningSubsystem(
                binding, config, relation_order=relation_order)
            rules = ils.induce()
            if include_schema_rules:
                rules = rules.merged_with(binding.schema_rules())
            if induce_comparisons:
                constraints = _induce_all_comparisons(binding)
        return cls(database, rules, binding=binding,
                   constraints=constraints)

    # -- durability ---------------------------------------------------------

    @property
    def storage(self):
        """The attached :class:`~repro.storage.StorageEngine`, if any."""
        return self.database.storage

    def _require_storage(self, action: str = "do this"):
        if self.database.storage is None:
            from repro.errors import StorageError
            raise StorageError(
                f"cannot {action}: no durable storage attached",
                hint="attach one with attach_storage(data_dir), or "
                     "start the CLI or repro-server with --data-dir")
        return self.database.storage

    def attach_storage(self, data_dir: str, fsync: str = "commit"):
        """Attach a durable storage engine: from here on every mutation
        is journaled and ``checkpoint()``/``recover()`` work."""
        from repro.storage import StorageEngine
        return StorageEngine(self.database, data_dir, fsync=fsync)

    def begin(self) -> None:
        """Open an explicit transaction on the attached storage."""
        self._require_storage("begin a transaction").begin()

    def commit(self) -> None:
        self._require_storage("commit a transaction").commit()

    def rollback(self) -> None:
        self._require_storage("roll back a transaction").rollback()

    def checkpoint(self) -> int:
        return self._require_storage("checkpoint the database").checkpoint()

    @classmethod
    def recover(cls, data_dir: str, fsync: str = "commit",
                ker_schema: KerSchema | None = None,
                ) -> tuple["IntensionalQueryProcessor", "RecoveryReport"]:
        """Restart from *data_dir*: snapshot + WAL tail, rule relations
        decoded back into the knowledge base.

        A stale rule base (data committed after the last induction) is
        *kept* but flagged: :meth:`ask` then answers extensionally only,
        with a warning, until :meth:`refresh_rules` re-induces.
        """
        from repro.rules.rule_relations import (
            RULE_RELATION_NAME, RuleRelationBundle, decode_rule_relations,
        )
        from repro.storage import StorageEngine
        engine, report = StorageEngine.recover(data_dir, fsync=fsync)
        database = engine.database
        rules = RuleSet()
        if RULE_RELATION_NAME in database.catalog:
            rules = decode_rule_relations(
                RuleRelationBundle.from_database(database))
        binding = (SchemaBinding(ker_schema, database)
                   if ker_schema is not None else None)
        processor = cls(database, rules, binding=binding)
        return processor, report

    def refresh_rules(self, ker_schema: KerSchema | None = None,
                      config: InductionConfig | None = None,
                      relation_order: list[str] | None = None) -> RuleSet:
        """Re-induce the rule base from the current data and store it
        atomically (rules + induction metadata in one transaction),
        clearing any staleness flag."""
        from repro.errors import StorageError
        if ker_schema is not None:
            self.binding = SchemaBinding(ker_schema, self.database)
        if self.binding is None:
            raise StorageError(
                "cannot refresh rules without a KER schema",
                hint="pass ker_schema= (the binding was not recovered "
                     "from storage)")
        ils = InductiveLearningSubsystem(self.binding, config,
                                         relation_order=relation_order)
        self.rules = ils.induce_and_store()
        self.engine = TypeInferenceEngine(self.rules, binding=self.binding,
                                          constraints=self.constraints)
        return self.rules

    def ask(self, sql: str, forward: bool = True,
            backward: bool = True) -> QueryResult:
        """Answer *sql* extensionally and intensionally.

        When the database was recovered with a stale rule base, the
        intensional half is suppressed (never silently wrong): the
        result carries only the extensional answer plus a warning until
        :meth:`refresh_rules` runs.

        Repeated asks are served from the intensional-answer cache: the
        whole :class:`QueryResult` is memoized on the normalized SQL
        fingerprint, pinned to the rule-base version, the staleness
        flag, and a version vector over the touched relations, so any
        DML, rollback, re-induction or recovery replay drops it before
        it could go stale.
        """
        from repro.cache.core import query_cache
        from repro.sql.fingerprint import normalize_sql
        start = time.perf_counter()
        storage = self.database.storage
        degraded = (storage is not None and storage.has_rules
                    and storage.rules_stale)
        cache = query_cache(self.database)
        ask_key = (normalize_sql(sql), bool(forward), bool(backward))
        warnings: list[str] = []
        with obs.span("query.ask", sql=sql) as span:
            cached = cache.lookup_ask(ask_key, self.rules.version,
                                      degraded)
            if cached is not None:
                span.set(rows=len(cached.extensional),
                         intensional=len(cached.inference.answers()),
                         cached=True)
                if obs.enabled():
                    obs.observe_query(cached.statement.render(),
                                      time.perf_counter() - start,
                                      rows=len(cached.extensional),
                                      kind="ask")
                return cached
            statement = parse_select(sql)
            extensional = execute_select(
                self.database, statement,
                rules=None if degraded else self.rules)
            conditions = extract_conditions(self.database, statement)
            if degraded:
                from repro.inference.facts import FactBase
                inference = InferenceResult(conditions.clauses,
                                            FactBase(), (), ())
                warnings.append(
                    "rule base is stale (data changed after the last "
                    "induction); intensional answers suppressed -- "
                    "run refresh_rules() to restore them")
                obs.counter("stale_rule_base_degraded_total",
                            "queries answered extensionally only "
                            "because the rule base was stale").inc()
            else:
                inference = self.engine.infer(
                    conditions.clauses,
                    equivalences=conditions.equivalences,
                    forward=forward, backward=backward)
            span.set(rows=len(extensional),
                     intensional=len(inference.answers()),
                     degraded=degraded)
        result = QueryResult(statement, extensional, inference,
                             conditions.unused, warnings=warnings)
        elapsed = time.perf_counter() - start
        cache.admit_ask(
            ask_key, self.rules.version, degraded,
            [self.database.relation(table.name)
             for table in statement.tables],
            result, elapsed)
        if obs.enabled():
            obs.observe_query(statement.render(), elapsed,
                              rows=len(extensional), kind="ask")
        return result

    def explain(self, sql: str, analyze: bool = False) -> str:
        """Plan, execute, and render the plan tree for a SELECT.

        The induced rules feed the planner's semantic optimizer, so the
        rendering shows rule-driven tightening and contradiction
        short-circuits next to estimated vs. actual cardinalities.
        *sql* may be a bare SELECT or carry its own ``EXPLAIN
        [ANALYZE]`` prefix; ``analyze=True`` (or the ANALYZE keyword)
        adds measured per-node wall times.
        """
        from repro.plan.explain import explain_select
        from repro.sql.parser import parse_statement
        statement = parse_statement(sql)
        if isinstance(statement, ExplainStmt):
            analyze = analyze or statement.analyze
            statement = statement.select
        if not isinstance(statement, SelectStmt):
            raise SqlError("explain() takes a SELECT statement")
        return explain_select(self.database, statement, rules=self.rules,
                              analyze=analyze)

    def explain_analyze(self, sql: str) -> str:
        """``EXPLAIN ANALYZE``: the plan tree annotated with measured
        per-node wall time and actual vs. estimated rows."""
        return self.explain(sql, analyze=True)

    # -- observability ------------------------------------------------------

    def metrics(self) -> dict[str, float]:
        """Snapshot of every recorded metric series (flat mapping)."""
        return obs.metrics().snapshot()

    def metrics_text(self, prometheus: bool = False) -> str:
        """Rendered metrics: a human table, or the Prometheus text
        exposition format with ``prometheus=True``."""
        registry = obs.metrics()
        return (registry.render_prometheus() if prometheus
                else registry.render())
