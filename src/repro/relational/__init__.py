"""In-memory relational engine.

This package is the substrate the rest of the reproduction runs on.  The
original prototype was built in EQUEL/C on top of INGRES; here an
equivalent relational engine is provided: typed columns, relation values,
a relational-algebra layer, and a catalog/database facade.

Public surface::

    from repro.relational import (
        Database, Catalog, Relation, RelationSchema, Column,
        INTEGER, REAL, DATE, char,
    )

    db = Database()
    db.create_relation(RelationSchema(
        "EMP",
        [Column("Name", char(20)), Column("Age", INTEGER)],
        key=["Name"],
    ))
    db.insert("EMP", [("alice", 41), ("bob", 38)])
"""

from repro.relational.datatypes import (
    CharType,
    DataType,
    DateType,
    IntegerType,
    RealType,
    INTEGER,
    REAL,
    DATE,
    char,
    infer_type,
)
from repro.relational.schema import Column, RelationSchema
from repro.relational.relation import Relation, RowView
from repro.relational.catalog import Catalog
from repro.relational.database import Database
from repro.relational.indexes import HashIndex, IndexCache, SortedIndex

__all__ = [
    "CharType",
    "DataType",
    "DateType",
    "IntegerType",
    "RealType",
    "INTEGER",
    "REAL",
    "DATE",
    "char",
    "infer_type",
    "Column",
    "RelationSchema",
    "Relation",
    "RowView",
    "Catalog",
    "Database",
    "HashIndex",
    "IndexCache",
    "SortedIndex",
]
