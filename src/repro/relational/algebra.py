"""Relational-algebra operators over :class:`~repro.relational.relation.Relation`.

These are the operations the paper's rule-induction algorithm needs
("Rule induction ... uses the relational operations to generate semantic
rules"): selection, projection (with and without duplicate elimination),
natural/equi-join, cross product, sorting, union, difference,
intersection, renaming and simple grouping.

All operators are pure: they return new relations and never mutate their
inputs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import SchemaError
from repro.relational import compiled
from repro.relational.expressions import Environment, Expression
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


def select(relation: Relation, predicate: Expression,
           qualifier: str | None = None) -> Relation:
    """sigma: rows of *relation* satisfying *predicate*.

    The predicate tree is compiled once into a positional closure (see
    :mod:`repro.relational.compiled`); no per-row environment or dict is
    allocated.
    """
    qualifiers = [relation.schema.name]
    if qualifier:
        qualifiers.append(qualifier)
    test = compiled.compile_predicate(
        predicate,
        compiled.schema_resolver(relation.schema, qualifiers),
        fallback=lambda: lambda row: predicate.evaluate(
            Environment.for_row(relation.schema, row, qualifier)))
    rows = [row for row in relation.rows if test(row)]
    return Relation(relation.schema, rows, validated=True)


def select_where(relation: Relation,
                 predicate: Callable[[dict[str, Any]], bool]) -> Relation:
    """Selection by a Python callable over the row-as-mapping.

    The callable receives a reusable :class:`~repro.relational.relation.
    RowView` (mapping interface, positional access underneath) instead
    of a freshly built dict per row; copy with ``dict(r)`` to retain a
    row beyond the callback.
    """
    view = relation.row_view()
    rows = [row for row in relation.rows if predicate(view.bind(row))]
    return Relation(relation.schema, rows, validated=True)


def project(relation: Relation, columns: Sequence[str],
            distinct: bool = False, new_name: str | None = None) -> Relation:
    """pi: keep only *columns* (bag semantics unless *distinct*)."""
    schema = relation.schema.project(columns, new_name)
    positions = [relation.schema.position(c) for c in columns]
    rows: Iterable[tuple] = (tuple(row[p] for p in positions)
                             for row in relation)
    out = Relation(schema, rows, validated=True)
    return out.distinct() if distinct else out


def rename(relation: Relation, new_name: str,
           column_mapping: dict[str, str] | None = None) -> Relation:
    """rho: rename the relation and optionally its columns."""
    schema = relation.schema.rename(new_name)
    if column_mapping:
        schema = schema.renamed_columns(column_mapping).rename(new_name)
    return Relation(schema, list(relation.rows), validated=True)


def cross(left: Relation, right: Relation,
          new_name: str | None = None) -> Relation:
    """Cartesian product."""
    schema = left.schema.concat(
        right.schema, new_name or f"{left.name}_x_{right.name}")
    rows = [l_row + r_row for l_row in left for r_row in right]
    return Relation(schema, rows, validated=True)


def equijoin(left: Relation, right: Relation,
             pairs: Sequence[tuple[str, str]],
             new_name: str | None = None) -> Relation:
    """Equi-join on (left_column, right_column) *pairs*, hash-based.

    NULL join keys never match (consistent with comparison semantics).
    """
    if not pairs:
        raise SchemaError("equijoin needs at least one column pair")
    left_positions = [left.schema.position(a) for a, _ in pairs]
    right_positions = [right.schema.position(b) for _, b in pairs]
    buckets: dict[tuple, list[tuple]] = {}
    for r_row in right:
        key = tuple(r_row[p] for p in right_positions)
        if any(value is None for value in key):
            continue
        buckets.setdefault(key, []).append(r_row)
    schema = left.schema.concat(
        right.schema, new_name or f"{left.name}_{right.name}")
    rows = []
    for l_row in left:
        key = tuple(l_row[p] for p in left_positions)
        if any(value is None for value in key):
            continue
        for r_row in buckets.get(key, ()):
            rows.append(l_row + r_row)
    return Relation(schema, rows, validated=True)


def natural_join(left: Relation, right: Relation,
                 new_name: str | None = None) -> Relation:
    """Join on all same-named columns (at least one required)."""
    shared = [c.name for c in left.schema.columns
              if right.schema.has_column(c.name)]
    if not shared:
        raise SchemaError(
            f"{left.name} and {right.name} share no columns to join on")
    return equijoin(left, right, [(c, c) for c in shared], new_name)


def union(left: Relation, right: Relation) -> Relation:
    """Bag union (schemas must be position-compatible)."""
    _check_compatible(left, right)
    return Relation(left.schema, list(left.rows) + list(right.rows),
                    validated=True)


def difference(left: Relation, right: Relation) -> Relation:
    """Bag difference: each right row cancels one matching left row."""
    _check_compatible(left, right)
    from collections import Counter
    budget = Counter(right.rows)
    rows = []
    for row in left:
        if budget[row] > 0:
            budget[row] -= 1
        else:
            rows.append(row)
    return Relation(left.schema, rows, validated=True)


def intersection(left: Relation, right: Relation) -> Relation:
    """Bag intersection (minimum multiplicity)."""
    _check_compatible(left, right)
    from collections import Counter
    budget = Counter(right.rows)
    rows = []
    for row in left:
        if budget[row] > 0:
            budget[row] -= 1
            rows.append(row)
    return Relation(left.schema, rows, validated=True)


def sort(relation: Relation, columns: Sequence[str],
         descending: bool = False) -> Relation:
    """Stable sort by *columns* (NULLs first)."""
    return relation.sorted_by(*columns, descending=descending)


def distinct(relation: Relation) -> Relation:
    return relation.distinct()


def group_by(relation: Relation, keys: Sequence[str],
             aggregates: dict[str, tuple[str, str]],
             new_name: str | None = None) -> Relation:
    """Grouping with aggregates.

    *aggregates* maps output-column name to ``(function, input_column)``
    where function is one of ``count``, ``min``, ``max``, ``sum``,
    ``avg``.  ``count`` ignores its input column and counts rows.
    """
    from repro.relational.datatypes import INTEGER, REAL

    key_positions = [relation.schema.position(k) for k in keys]
    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for row in relation:
        key = tuple(row[p] for p in key_positions)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    columns = [relation.schema.column(k) for k in keys]
    for out_name, (function, _input) in aggregates.items():
        datatype = INTEGER if function == "count" else REAL
        if function in ("min", "max"):
            datatype = relation.schema.column(_input).datatype
        columns.append(Column(out_name, datatype))
    schema = RelationSchema(new_name or f"{relation.name}_grouped", columns)

    rows = []
    for key in order:
        members = groups[key]
        out = list(key)
        for _out_name, (function, input_column) in aggregates.items():
            if function == "count":
                out.append(len(members))
                continue
            position = relation.schema.position(input_column)
            values = [m[position] for m in members if m[position] is not None]
            if not values:
                out.append(None)
            elif function == "min":
                out.append(min(values))
            elif function == "max":
                out.append(max(values))
            elif function == "sum":
                out.append(float(sum(values)))
            elif function == "avg":
                out.append(float(sum(values)) / len(values))
            else:
                raise SchemaError(f"unknown aggregate {function!r}")
        rows.append(tuple(out))
    return Relation(schema, rows, validated=True)


def _check_compatible(left: Relation, right: Relation) -> None:
    if left.schema.arity != right.schema.arity:
        raise SchemaError(
            f"{left.name} and {right.name} have different arities")
    for l_col, r_col in zip(left.schema.columns, right.schema.columns):
        if type(l_col.datatype) is not type(r_col.datatype):
            raise SchemaError(
                f"column {l_col.name} of {left.name} and column "
                f"{r_col.name} of {right.name} have incompatible types")


__all__ = [
    "select", "select_where", "project", "rename", "cross", "equijoin",
    "natural_join", "union", "difference", "intersection", "sort",
    "distinct", "group_by",
]
