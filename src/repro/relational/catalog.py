"""The catalog: a case-insensitive namespace of relations.

INGRES kept system tables describing user relations; the reproduction
keeps the same idea small: the catalog knows every relation by name and
can enumerate them in creation order (rule relations are registered here
alongside base data so knowledge "relocates with the database").
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.relational.relation import Relation


class Catalog:
    """A named collection of relations."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._order: list[str] = []

    def register(self, relation: Relation, replace: bool = False) -> Relation:
        key = relation.name.lower()
        if key in self._relations and not replace:
            raise CatalogError(f"relation {relation.name!r} already exists")
        if key not in self._relations:
            self._order.append(key)
        self._relations[key] = relation
        return relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no relation named {name!r}; catalog has "
                f"{', '.join(self.names()) or 'no relations'}") from None

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        del self._relations[key]
        self._order.remove(key)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._relations

    def __iter__(self) -> Iterator[Relation]:
        for key in self._order:
            yield self._relations[key]

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """Declared relation names in creation order."""
        return [self._relations[key].name for key in self._order]
