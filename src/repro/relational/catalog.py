"""The catalog: a case-insensitive namespace of relations.

INGRES kept system tables describing user relations; the reproduction
keeps the same idea small: the catalog knows every relation by name and
can enumerate them in creation order (rule relations are registered here
alongside base data so knowledge "relocates with the database").

The catalog is also the single invalidation signal for derived caches
(statistics, secondary indexes): :meth:`Catalog.stats_version` is a
monotonic counter bumped by ``register``/``drop`` *and* by mutations of
any registered relation (wired through the relation mutation hooks), so
a cache needs to remember one integer to know whether anything anywhere
changed.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.relational.relation import Relation


class Catalog:
    """A named collection of relations."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._order: list[str] = []
        self._stats_version = 0
        #: key -> (relation, mutation-hook token), for detaching on drop.
        self._hooks: dict[str, tuple[Relation, int]] = {}
        #: catalog-wide change listeners: called with the affected
        #: relation (or ``None`` for changes with no single relation)
        #: after every bump.  Unlike :meth:`stats_version` polling this
        #: names the relation, so a listener can invalidate exactly the
        #: entries depending on it.
        self._listeners: list = []
        #: durable-storage journal (set by an attached StorageEngine);
        #: register/drop report DDL to it and propagate it to relations.
        self.journal = None

    # -- invalidation signal ----------------------------------------------

    def stats_version(self) -> int:
        """Monotonic counter covering DDL and DML on every registered
        relation.  Equal values mean "nothing changed"; caches key their
        snapshots on it."""
        return self._stats_version

    def add_listener(self, listener) -> None:
        """Subscribe ``listener(relation | None)`` to every catalog
        change (DML on any registered relation, register, drop).  Fires
        on rollback undo and WAL replay too -- those mutate through the
        same hooks -- which is what makes listener-driven caches
        recovery-correct for free."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _bump(self, _relation: Relation | None = None) -> None:
        self._stats_version += 1
        for listener in self._listeners:
            listener(_relation)

    def _attach(self, key: str, relation: Relation) -> None:
        token = relation.add_mutation_hook(self._bump)
        self._hooks[key] = (relation, token)

    def _detach(self, key: str) -> None:
        entry = self._hooks.pop(key, None)
        if entry is not None:
            relation, token = entry
            relation.remove_mutation_hook(token)

    # -- namespace ---------------------------------------------------------

    def register(self, relation: Relation, replace: bool = False) -> Relation:
        key = relation.name.lower()
        displaced = self._relations.get(key)
        if displaced is not None and not replace:
            raise CatalogError(f"relation {relation.name!r} already exists")
        if self.journal is not None:
            self.journal.log_register(relation, replace=replace,
                                      displaced=displaced)
        if displaced is not None:
            self._detach(key)
            displaced.journal = None
        else:
            self._order.append(key)
        self._relations[key] = relation
        relation.journal = self.journal
        self._attach(key, relation)
        self._bump(relation)
        return relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no relation named {name!r}; catalog has "
                f"{', '.join(self.names()) or 'no relations'}") from None

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        relation = self._relations[key]
        if self.journal is not None:
            self.journal.log_drop(relation)
        self._detach(key)
        relation.journal = None
        del self._relations[key]
        self._order.remove(key)
        self._bump(relation)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._relations

    def __iter__(self) -> Iterator[Relation]:
        for key in self._order:
            yield self._relations[key]

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """Declared relation names in creation order."""
        return [self._relations[key].name for key in self._order]
