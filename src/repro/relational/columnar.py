"""Columnar relation storage: typed per-column arrays with dictionary
encoding for low-cardinality strings.

Rows stay the *canonical* representation -- every mutation path in
:class:`~repro.relational.relation.Relation` still goes through the row
list, so journaling, transaction rollback and every row-oriented
consumer keep exact semantics.  A :class:`ColumnStore` is a
version-validated cache over that row list: one ``zip(*rows)``
transpose builds per-column value sequences, string columns whose
cardinality stays low are dictionary-encoded (``int32`` code arrays +
a value table), and numeric columns lazily materialize a numpy array
when numpy is importable and the column is null-free.  Insert-only DML
appends into a live store in place (row indices never move, so paused
streams over a store snapshot stay correct); deletes, updates and
wholesale restores drop the store and the next consumer rebuilds.

numpy is strictly optional: every kernel in
:mod:`repro.relational.kernels` has a pure-Python path over the same
store, so the tier-1 suite runs dependency-free.  The whole columnar
path is gated on ``REPRO_COLUMNAR`` (on by default); an unrecognized
spelling falls back *loudly* -- one :class:`UserWarning` per distinct
bad value, mirroring ``REPRO_BATCH_SIZE``.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Iterable, Sequence

from repro.relational.datatypes import CharType, DataType
from repro.relational.schema import RelationSchema

try:  # optional fast path; the pure-Python kernels are always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the FORCE knob
    _np = None

#: ``None`` when numpy is unavailable (or disabled for tests via
#: :func:`set_numpy_enabled`); the kernels branch on this once per call.
HAS_NUMPY = _np is not None

#: Spellings of ``REPRO_COLUMNAR`` that disable the columnar path
#: process-wide (same set the cache knob accepts).
_OFF_VALUES = frozenset({"off", "0", "false", "no"})
_ON_VALUES = frozenset({"", "on", "1", "true", "yes"})

#: Session/test override: ``True``/``False`` wins over the environment,
#: ``None`` defers to ``REPRO_COLUMNAR``.  The differential harness uses
#: this to pin columnar on/off per engine configuration.
FORCED: bool | None = None

#: Bad ``REPRO_COLUMNAR`` spellings already warned about (warn once per
#: distinct value, not once per query).
_warned_values: set[str] = set()

#: A dictionary column bails out to plain storage once it would hold
#: more distinct values than this (high-cardinality strings gain nothing
#: from encoding and the value table would just burn memory).
DICT_MAX_CARDINALITY = 4096

#: Code stored for NULL in a dictionary column's code array.
NULL_CODE = -1


def enabled() -> bool:
    """Whether the columnar path is on: :data:`FORCED` when set,
    otherwise ``REPRO_COLUMNAR`` (default on; unrecognized values warn
    once and keep the default, like ``REPRO_BATCH_SIZE``)."""
    if FORCED is not None:
        return FORCED
    raw = os.environ.get("REPRO_COLUMNAR", "")
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return False
    if value in _ON_VALUES:
        return True
    if raw not in _warned_values:
        import warnings
        _warned_values.add(raw)
        warnings.warn(
            f"REPRO_COLUMNAR={raw!r} is not a recognized switch "
            f"(on/off); keeping the columnar path enabled", stacklevel=2)
    return True


def set_enabled(value: bool | None) -> None:
    """Set (or clear, with ``None``) the :data:`FORCED` override."""
    global FORCED
    FORCED = value


def set_numpy_enabled(value: bool) -> None:
    """Force the pure-Python kernels even when numpy is importable
    (tests cross-check both paths on one interpreter).  Passing ``True``
    restores numpy only if it was actually imported."""
    global HAS_NUMPY
    HAS_NUMPY = bool(value) and _np is not None


def numpy_module():
    """The numpy module when the fast path is active, else ``None``."""
    return _np if HAS_NUMPY else None


class DictionaryColumn:
    """Dictionary-encoded string column: an ``int32`` code per row
    (:data:`NULL_CODE` for NULL) plus the table of distinct values in
    first-appearance order.

    ``codes``/``values`` grow append-only, so codes handed out earlier
    stay valid across DML appends -- the code space only ever grows.
    """

    __slots__ = ("codes", "values", "_code_of", "_np_codes", "_decoded")

    def __init__(self) -> None:
        self.codes = array("i")
        self.values: list[str] = []
        self._code_of: dict[str, int] = {}
        self._np_codes = None
        self._decoded = None

    def append(self, value: Any) -> None:
        if value is None:
            self.codes.append(NULL_CODE)
        else:
            code = self._code_of.get(value)
            if code is None:
                code = len(self.values)
                self._code_of[value] = code
                self.values.append(value)
            self.codes.append(code)
        self._np_codes = None
        self._decoded = None

    @property
    def cardinality(self) -> int:
        """Distinct non-NULL values seen so far."""
        return len(self.values)

    def code_for(self, value: Any) -> int | None:
        """The code of *value*, or ``None`` when it never occurred."""
        return self._code_of.get(value)

    def decode(self) -> list:
        """The raw values back, in row order (round-trip inverse of the
        encoding).  Cached until the next append -- repeated gathers
        (parallel morsel workers, column-at-a-time projection) must not
        pay one full decode each.  Treat the returned list as
        read-only."""
        if self._decoded is None:
            values = self.values
            self._decoded = [None if code < 0 else values[code]
                             for code in self.codes]
        return self._decoded

    def np_codes(self):
        """The code array as an int32 numpy array (cached), or ``None``
        without numpy."""
        if not HAS_NUMPY:
            return None
        if self._np_codes is None:
            # A copy, not a buffer view: a view would pin the array's
            # buffer and break append-time resizing.
            self._np_codes = _np.array(self.codes, dtype=_np.int32)
        return self._np_codes


class PlainColumn:
    """A column stored as a plain value list, with a lazily built numpy
    array when the values are null-free and numerically representable
    (the array is the kernels' vector fast path; ``None`` means use the
    list)."""

    __slots__ = ("values", "datatype", "_array", "_array_stale")

    def __init__(self, values: Iterable[Any], datatype: DataType):
        self.values = list(values)
        self.datatype = datatype
        self._array = None
        self._array_stale = True

    def append(self, value: Any) -> None:
        self.values.append(value)
        self._array_stale = True

    def array(self):
        """numpy array of the values, or ``None`` when numpy is off,
        the column holds NULLs, or a value does not fit the dtype
        (arbitrary-precision ints)."""
        if not HAS_NUMPY or not self.datatype.is_numeric():
            return None
        if self._array_stale:
            self._array_stale = False
            if any(value is None for value in self.values):
                # Checked explicitly: float64 conversion would silently
                # turn None into NaN, breaking the "a built array proves
                # no NULLs" contract the kernels rely on.
                self._array = None
            else:
                try:
                    self._array = _np.asarray(
                        self.values,
                        dtype=_np.float64 if self.datatype.name == "real"
                        else _np.int64)
                except (TypeError, ValueError, OverflowError):
                    self._array = None
        return self._array


class ColumnStore:
    """Columnar snapshot of a relation's rows.

    ``rows`` is the aligned row-tuple snapshot the store was built from
    (a pointer copy); selection vectors produced by the kernels index
    into it, so gathering survivors back into row form is one list
    comprehension.  ``version`` is stamped by
    :meth:`Relation.column_store` for staleness checks.
    """

    __slots__ = ("schema", "rows", "columns", "version")

    def __init__(self, schema: RelationSchema,
                 rows: Sequence[tuple]) -> None:
        self.schema = schema
        self.rows: list[tuple] = list(rows)
        self.version = -1
        if self.rows:
            raw_columns = list(zip(*self.rows))
        else:
            raw_columns = [() for _ in schema.columns]
        self.columns: list[DictionaryColumn | PlainColumn] = []
        for column, values in zip(schema.columns, raw_columns):
            self.columns.append(_build_column(column.datatype, values))

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> DictionaryColumn | PlainColumn:
        """The column named *name* (case-insensitive;
        :class:`~repro.errors.SchemaError` names the attribute when
        unknown)."""
        return self.columns[self.schema.position(name)]

    def values(self, position: int) -> list:
        """Raw values of the column at *position* (decoded for
        dictionary columns), in row order."""
        column = self.columns[position]
        if isinstance(column, DictionaryColumn):
            return column.decode()
        return column.values

    def gather(self, position: int, selection) -> list:
        """Values of the column at *position* for the selected row
        indices (``None`` selection = every row)."""
        values = self.values(position)
        if selection is None:
            return list(values)
        return [values[i] for i in selection]

    def append_rows(self, rows: Iterable[tuple]) -> None:
        """Fold freshly inserted rows into the store in place.  Only
        appends are incremental -- indices of existing rows never move,
        so selection vectors and paused streams over :attr:`rows` stay
        valid."""
        for row in rows:
            self.rows.append(row)
            for column, value in zip(self.columns, row):
                column.append(value)


def _build_column(datatype: DataType,
                  values: Sequence[Any]) -> DictionaryColumn | PlainColumn:
    if isinstance(datatype, CharType):
        dictionary = DictionaryColumn()
        for value in values:
            dictionary.append(value)
            if dictionary.cardinality > DICT_MAX_CARDINALITY:
                return PlainColumn(values, datatype)
        return dictionary
    return PlainColumn(values, datatype)


__all__ = [
    "ColumnStore",
    "DICT_MAX_CARDINALITY",
    "DictionaryColumn",
    "FORCED",
    "HAS_NUMPY",
    "NULL_CODE",
    "PlainColumn",
    "enabled",
    "numpy_module",
    "set_enabled",
    "set_numpy_enabled",
]
