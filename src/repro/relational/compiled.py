"""Predicate/expression compilation to positional closures.

The interpreter in :mod:`repro.relational.expressions` evaluates a tree
against an :class:`Environment`, which costs one environment object (and
one dict binding per qualifier) per row.  On the execution hot path --
pushed-down filters, residual join predicates, SELECT-list evaluation --
the schema is fixed for the whole query, so every column reference can
be resolved to a tuple position *once* and the tree collapsed into a
closure over positional row access.  That is what this module does::

    test = compile_predicate(expr, schema_resolver(schema, {"emp"}),
                             fallback=...)
    rows = [row for row in relation.rows if test(row)]

Compiled closures reproduce the interpreter's semantics exactly:
comparisons with a NULL operand are false, arithmetic over NULL is NULL,
type errors raise :class:`~repro.errors.ExpressionError` with the same
message, ``and``/``or`` short-circuit left to right.  The one visible
difference is *when* resolution errors surface: the interpreter raises
on the first row evaluated, the compiler at compile time (so even over
an empty relation a predicate naming an unknown column is rejected).

Compilation is structural over the known node types; an unknown
:class:`Expression` subclass raises :class:`UnsupportedExpression` and
callers fall back to interpretation, so extensions degrade gracefully
instead of breaking.  The module flag :data:`ENABLED` forces the
fallback everywhere -- benchmarks flip it to measure the pre-compilation
pipeline, and tests use it to cross-check compiled against interpreted
results.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExpressionError
from repro.relational.expressions import (
    _COMPARISONS, And, Arithmetic, Comparison, ColumnRef, Expression,
    IsNull, Literal, Not, Or,
)
from repro.relational.schema import RelationSchema

#: Master switch.  ``False`` makes :func:`compile_predicate` and
#: :func:`compile_expressions` return their interpreted fallbacks, which
#: restores the pre-compilation execution pipeline end to end.
ENABLED = True

#: A resolver maps a ColumnRef to a getter closure ``row_like -> value``.
Resolver = Callable[[ColumnRef], Callable[[Any], Any]]


class UnsupportedExpression(Exception):
    """Raised (internally) for expression nodes the compiler does not
    know; callers catch it and fall back to interpretation."""


def schema_resolver(schema: RelationSchema,
                    qualifiers: Iterable[str] = ()) -> Resolver:
    """Resolver for single-relation rows (plain row tuples).

    *qualifiers* are the accepted qualifier spellings besides
    unqualified references (the relation name, a range variable, a FROM
    alias -- whatever the matching :class:`Environment` would bind).
    Resolution failures raise :class:`ExpressionError` with the
    interpreter's messages.
    """
    accepted = {q.lower() for q in qualifiers}

    def resolve(ref: ColumnRef) -> Callable[[Any], Any]:
        if ref.qualifier is not None:
            if ref.qualifier.lower() not in accepted:
                raise ExpressionError(
                    f"unknown range variable or relation {ref.qualifier!r}")
            if not schema.has_column(ref.column):
                raise ExpressionError(
                    f"{ref.qualifier} has no column {ref.column!r}")
        elif not schema.has_column(ref.column):
            raise ExpressionError(f"unknown column {ref.column!r}")
        position = schema.position(ref.column)
        return lambda row: row[position]

    return resolve


def slot_resolver(schemas: Sequence[tuple[str, RelationSchema]]) -> Resolver:
    """Resolver for aligned per-binding row tuples (the join pipeline's
    intermediate shape): element ``i`` of the row-like object is the row
    of ``schemas[i]``.  Mirrors :meth:`Environment.lookup`: qualified
    references name their binding, unqualified ones must be unambiguous
    across all bindings."""
    by_name = {binding.lower(): (slot, schema)
               for slot, (binding, schema) in enumerate(schemas)}

    def resolve(ref: ColumnRef) -> Callable[[Any], Any]:
        if ref.qualifier is not None:
            entry = by_name.get(ref.qualifier.lower())
            if entry is None:
                raise ExpressionError(
                    f"unknown range variable or relation {ref.qualifier!r}")
            slot, schema = entry
            if not schema.has_column(ref.column):
                raise ExpressionError(
                    f"{ref.qualifier} has no column {ref.column!r}")
            position = schema.position(ref.column)
            return lambda rows: rows[slot][position]
        hits = [(slot, schema) for slot, (_binding, schema)
                in enumerate(schemas) if schema.has_column(ref.column)]
        if not hits:
            raise ExpressionError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise ExpressionError(f"ambiguous column {ref.column!r}")
        slot, schema = hits[0]
        position = schema.position(ref.column)
        return lambda rows: rows[slot][position]

    return resolve


def compile_expression(expression: Expression,
                       resolve: Resolver) -> Callable[[Any], Any]:
    """Compile *expression* into a closure over positional row access.

    Raises :class:`UnsupportedExpression` for unknown node types and
    whatever the resolver raises for unresolvable column references.
    """
    if isinstance(expression, Literal):
        value = expression.value
        return lambda _row: value
    if isinstance(expression, ColumnRef):
        return resolve(expression)
    if isinstance(expression, Comparison):
        left = compile_expression(expression.left, resolve)
        right = compile_expression(expression.right, resolve)
        compare = _COMPARISONS[expression.op]

        def compiled_comparison(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False
            try:
                return compare(a, b)
            except TypeError as exc:
                raise ExpressionError(
                    f"type error in {expression.render()}: {exc}") from exc

        return compiled_comparison
    if isinstance(expression, Arithmetic):
        left = compile_expression(expression.left, resolve)
        right = compile_expression(expression.right, resolve)
        operate = Arithmetic.OPS[expression.op]

        def compiled_arithmetic(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return operate(a, b)
            except (TypeError, ZeroDivisionError) as exc:
                raise ExpressionError(
                    f"cannot evaluate {expression.render()}: {exc}") from exc

        return compiled_arithmetic
    if isinstance(expression, IsNull):
        operand = compile_expression(expression.operand, resolve)
        if expression.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expression, And):
        parts = [compile_expression(part, resolve)
                 for part in expression.parts]
        return lambda row: all(part(row) for part in parts)
    if isinstance(expression, Or):
        parts = [compile_expression(part, resolve)
                 for part in expression.parts]
        return lambda row: any(part(row) for part in parts)
    if isinstance(expression, Not):
        operand = compile_expression(expression.operand, resolve)
        return lambda row: not operand(row)
    raise UnsupportedExpression(type(expression).__name__)


def compile_predicate(expression: Expression, resolve: Resolver,
                      fallback: Callable[[], Callable[[Any], Any]]
                      ) -> Callable[[Any], Any]:
    """Compiled predicate over *expression*, or ``fallback()`` when the
    tree contains unsupported nodes or :data:`ENABLED` is off.

    *fallback* is a zero-argument factory (not the closure itself) so
    the interpreted path's setup cost is only paid when actually taken.
    """
    if not ENABLED:
        return fallback()
    try:
        return compile_expression(expression, resolve)
    except UnsupportedExpression:
        return fallback()


def compile_expressions(expressions: Sequence[Expression],
                        resolve: Resolver
                        ) -> list[Callable[[Any], Any]] | None:
    """Compile all of *expressions* or none: ``None`` signals the caller
    to take its interpreted path wholesale (used by the shared
    projection, where mixing compiled and interpreted items would build
    the per-row environment anyway)."""
    if not ENABLED:
        return None
    try:
        return [compile_expression(expression, resolve)
                for expression in expressions]
    except UnsupportedExpression:
        return None


__all__ = [
    "ENABLED",
    "Resolver",
    "UnsupportedExpression",
    "compile_expression",
    "compile_expressions",
    "compile_predicate",
    "schema_resolver",
    "slot_resolver",
]
