"""The database facade: a catalog plus DDL/DML convenience methods.

This is the object the rest of the system passes around -- the "EDB"
(extension database) of the paper.  The intension (rules, schema
knowledge) lives in the data dictionary; see :mod:`repro.dictionary`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.relational import algebra
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expression
from repro.relational.indexes import IndexCache
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.relational.datatypes import DataType


class Database:
    """An in-memory relational database."""

    def __init__(self, name: str = "db"):
        self.name = name
        self.catalog = Catalog()
        #: version-checked secondary-index cache shared by the query
        #: planner and the executor's equality fast path.
        self.indexes = IndexCache()
        #: the attached durable StorageEngine, if any (set by the engine
        #: itself on attach; None means purely in-memory operation).
        self.storage = None

    # -- DDL ----------------------------------------------------------------

    def create_relation(self, schema: RelationSchema,
                        rows: Iterable[Sequence[Any]] = (),
                        replace: bool = False) -> Relation:
        relation = Relation(schema, rows)
        return self.catalog.register(relation, replace=replace)

    def create(self, name: str,
               columns: Sequence[tuple[str, DataType]],
               rows: Iterable[Sequence[Any]] = (),
               key: Sequence[str] | None = None,
               replace: bool = False) -> Relation:
        """Shorthand DDL: ``db.create("T", [("A", INTEGER)], rows)``."""
        schema = RelationSchema(
            name, [Column(cname, ctype) for cname, ctype in columns], key=key)
        return self.create_relation(schema, rows, replace=replace)

    def drop(self, name: str) -> None:
        self.catalog.drop(name)

    # -- access ----------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        return self.catalog.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.catalog

    def relations(self) -> list[Relation]:
        return list(self.catalog)

    def total_rows(self) -> int:
        return sum(len(relation) for relation in self.catalog)

    # -- DML -----------------------------------------------------------------

    def insert(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.relation(name).insert_many(rows)

    def delete(self, name: str,
               predicate: Callable[[dict[str, Any]], bool]) -> int:
        relation = self.relation(name)
        view = relation.row_view()
        return relation.delete_where(
            lambda row: predicate(view.bind(row)))

    # -- queries ----------------------------------------------------------------

    def select(self, name: str, predicate: Expression) -> Relation:
        return algebra.select(self.relation(name), predicate)

    def project(self, name: str, columns: Sequence[str],
                distinct: bool = False) -> Relation:
        return algebra.project(self.relation(name), columns,
                               distinct=distinct)

    def join(self, left: str, right: str,
             pairs: Sequence[tuple[str, str]]) -> Relation:
        return algebra.equijoin(self.relation(left), self.relation(right),
                                pairs)

    # -- maintenance ----------------------------------------------------------

    def copy(self, name: str | None = None) -> "Database":
        """Deep copy (independent rows; shared immutable schemas)."""
        clone = Database(name or self.name)
        for relation in self.catalog:
            clone.catalog.register(relation.copy())
        return clone

    def render(self) -> str:
        """Multi-relation dump in the style of the paper's Appendix C."""
        blocks = []
        for relation in self.catalog:
            header = f"Relation {relation.name}"
            blocks.append(f"{header}\n{relation.render()}")
        return "\n\n".join(blocks)

    def __repr__(self) -> str:
        return (f"Database<{self.name}: {len(self.catalog)} relations, "
                f"{self.total_rows()} rows>")
