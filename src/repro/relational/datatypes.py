"""Column data types.

The KER model (Appendix A of the paper) provides four standard domains --
``string``, ``integer``, ``real`` and ``date`` -- from which richer
domains are derived.  This module provides the corresponding column
types for the relational engine, with validation, coercion, and a total
order per type (needed by the rule-induction algorithm, whose "value
ranges" are defined over sorted attribute values).

Values are plain Python objects: ``int``, ``float``, ``str``,
:class:`datetime.date`, and ``None`` for NULL.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import TypeMismatchError


class DataType:
    """Abstract column data type.

    Concrete subclasses implement :meth:`validate` and :meth:`coerce`.
    Instances are immutable and compare by structural equality so that two
    independently built schemas with the same types are equal.
    """

    #: short name used in schema rendering, e.g. ``"integer"``.
    name: str = "abstract"

    def validate(self, value: Any) -> bool:
        """Return True when *value* is a legal value of this type.

        ``None`` (NULL) is always legal; nullability is enforced at the
        column level, not here.
        """
        raise NotImplementedError

    def coerce(self, value: Any) -> Any:
        """Convert *value* into this type's canonical representation.

        Raises
        ------
        TypeMismatchError
            If the value cannot be represented in this type.
        """
        raise NotImplementedError

    def render(self) -> str:
        """Human-readable rendering, e.g. ``char[20]``."""
        return self.name

    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic."""
        return False

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.render()}>"


class IntegerType(DataType):
    """Whole numbers.  ``bool`` is rejected to avoid silent surprises."""

    name = "integer"

    def validate(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, int) and not isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        if value is None or self.validate(value):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            text = value.strip()
            try:
                return int(text)
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to integer")

    def is_numeric(self) -> bool:
        return True


class RealType(DataType):
    """Floating-point numbers.  Integers are accepted and widened."""

    name = "real"

    def validate(self, value: Any) -> bool:
        if value is None:
            return True
        if isinstance(value, bool):
            return False
        return isinstance(value, (int, float))

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeMismatchError("cannot coerce bool to real")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to real")

    def is_numeric(self) -> bool:
        return True


class CharType(DataType):
    """Fixed-maximum-width character strings, ``char[n]`` in KER.

    *width* of ``None`` means unbounded (plain ``string``).  Values longer
    than the declared width are rejected by :meth:`validate` but
    truncated, INGRES-style, by :meth:`coerce`.
    """

    name = "char"

    def __init__(self, width: int | None = None):
        if width is not None and width <= 0:
            raise ValueError("char width must be positive")
        self.width = width

    def validate(self, value: Any) -> bool:
        if value is None:
            return True
        if not isinstance(value, str):
            return False
        return self.width is None or len(value) <= self.width

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if not isinstance(value, str):
            value = str(value)
        if self.width is not None and len(value) > self.width:
            value = value[: self.width]
        return value

    def render(self) -> str:
        if self.width is None:
            return "string"
        return f"char[{self.width}]"


class DateType(DataType):
    """Calendar dates.  ISO-format strings are coerced."""

    name = "date"

    def validate(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, datetime.date) and not isinstance(
            value, datetime.datetime)

    def coerce(self, value: Any) -> Any:
        if value is None or self.validate(value):
            return value
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value.strip())
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to date")


#: Shared singleton instances for the standard domains.
INTEGER = IntegerType()
REAL = RealType()
DATE = DateType()
STRING = CharType(None)


def char(width: int | None = None) -> CharType:
    """Convenience constructor: ``char(20)`` -> ``char[20]``."""
    return CharType(width)


def infer_type(value: Any) -> DataType:
    """Infer a column type from a sample Python value.

    Used by relation loaders when no schema is given.  ``None`` infers an
    unbounded string (the weakest assumption).
    """
    if isinstance(value, bool):
        raise TypeMismatchError("boolean columns are not supported")
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, str) or value is None:
        return STRING
    raise TypeMismatchError(f"no column type for value {value!r}")


def comparable(a: DataType, b: DataType) -> bool:
    """Whether values of types *a* and *b* may be compared with <, =, ...

    Numeric types are mutually comparable; otherwise the types must be of
    the same kind (char widths are ignored for comparability).
    """
    if a.is_numeric() and b.is_numeric():
        return True
    return type(a) is type(b)
