"""Scalar and predicate expressions over relation rows.

One expression AST is shared by the relational algebra layer, the QUEL
interpreter, and the SQL executor.  Expressions evaluate against an
:class:`Environment` that binds *qualifiers* (range-variable or relation
names) to (schema, row) pairs, so the same tree works for single-relation
selections and multi-variable join predicates.

The comparison semantics follow the paper's usage: strings compare
lexicographically (``"BQQ-2" <= Sonar <= "BQQ-8"`` is a legitimate rule
premise), numbers numerically, and NULL makes any comparison false.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ExpressionError
from repro.relational.schema import RelationSchema

#: Comparison operator names accepted throughout the package.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: op -> op with operands swapped (used to normalize `literal op column`).
FLIPPED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: op -> logical negation (used by backward inference and deletion).
NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Environment:
    """Bindings from qualifier names to (schema, row) pairs.

    A binding under the empty qualifier ``""`` acts as the default scope
    for unqualified column references; otherwise an unqualified reference
    is resolved against every binding and must be unambiguous.
    """

    def __init__(self) -> None:
        self._bindings: dict[str, tuple[RelationSchema, Sequence[Any]]] = {}

    def bind(self, qualifier: str, schema: RelationSchema,
             row: Sequence[Any]) -> "Environment":
        self._bindings[qualifier.lower()] = (schema, row)
        return self

    @classmethod
    def for_row(cls, schema: RelationSchema, row: Sequence[Any],
                qualifier: str | None = None) -> "Environment":
        """Environment for a single row; binds both the relation name and
        (if given) an explicit qualifier, plus the default scope."""
        env = cls()
        env.bind("", schema, row)
        env.bind(schema.name, schema, row)
        if qualifier:
            env.bind(qualifier, schema, row)
        return env

    def lookup(self, qualifier: str | None, column: str) -> Any:
        if qualifier is not None:
            try:
                schema, row = self._bindings[qualifier.lower()]
            except KeyError:
                raise ExpressionError(
                    f"unknown range variable or relation {qualifier!r}"
                ) from None
            if not schema.has_column(column):
                raise ExpressionError(
                    f"{qualifier} has no column {column!r}")
            return row[schema.position(column)]
        if "" in self._bindings:
            schema, row = self._bindings[""]
            if schema.has_column(column):
                return row[schema.position(column)]
        hits = []
        for name, (schema, row) in self._bindings.items():
            if name and schema.has_column(column):
                hits.append(row[schema.position(column)])
        if not hits:
            raise ExpressionError(f"unknown column {column!r}")
        if len(hits) > 1:
            raise ExpressionError(f"ambiguous column {column!r}")
        return hits[0]


class Expression:
    """Abstract expression node."""

    def evaluate(self, env: Environment) -> Any:
        raise NotImplementedError

    def references(self) -> Iterator["ColumnRef"]:
        """Yield every column reference in the tree."""
        return iter(())

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.render()}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.render()))


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, env: Environment) -> Any:
        return self.value

    def render(self) -> str:
        if isinstance(self.value, str):
            return '"' + self.value.replace('"', '\\"') + '"'
        return str(self.value)


class ColumnRef(Expression):
    """A reference ``qualifier.column`` or bare ``column``."""

    def __init__(self, column: str, qualifier: str | None = None):
        self.column = column
        self.qualifier = qualifier

    def evaluate(self, env: Environment) -> Any:
        return env.lookup(self.qualifier, self.column)

    def references(self) -> Iterator["ColumnRef"]:
        yield self

    def render(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


class Arithmetic(Expression):
    """Binary arithmetic (+, -, *, /) over numeric operands."""

    OPS: dict[str, Callable[[Any, Any], Any]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self.OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Environment) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return None
        try:
            return self.OPS[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(
                f"cannot evaluate {self.render()}: {exc}") from exc

    def references(self) -> Iterator[ColumnRef]:
        yield from self.left.references()
        yield from self.right.references()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


class Comparison(Expression):
    """A binary comparison; NULL operands make the comparison false."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARISONS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Environment) -> bool:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return False
        try:
            return _COMPARISONS[self.op](left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"type error in {self.render()}: {exc}") from exc

    def negated(self) -> "Comparison":
        return Comparison(NEGATED_OP[self.op], self.left, self.right)

    def flipped(self) -> "Comparison":
        """Equivalent comparison with operands swapped."""
        return Comparison(FLIPPED_OP[self.op], self.right, self.left)

    def references(self) -> Iterator[ColumnRef]:
        yield from self.left.references()
        yield from self.right.references()

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


class IsNull(Expression):
    """SQL's ``expr IS [NOT] NULL`` -- the one predicate that inspects
    NULL instead of failing on it."""

    def __init__(self, operand: Expression, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def evaluate(self, env: Environment) -> bool:
        value = self.operand.evaluate(env)
        return (value is not None) if self.negated else (value is None)

    def references(self) -> Iterator[ColumnRef]:
        yield from self.operand.references()

    def render(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.render()} {keyword}"


class And(Expression):
    """Conjunction of one or more predicates."""

    def __init__(self, parts: Sequence[Expression]):
        if not parts:
            raise ExpressionError("empty conjunction")
        self.parts = tuple(parts)

    def evaluate(self, env: Environment) -> bool:
        return all(part.evaluate(env) for part in self.parts)

    def references(self) -> Iterator[ColumnRef]:
        for part in self.parts:
            yield from part.references()

    def render(self) -> str:
        return " and ".join(
            f"({p.render()})" if isinstance(p, Or) else p.render()
            for p in self.parts)


class Or(Expression):
    """Disjunction of one or more predicates."""

    def __init__(self, parts: Sequence[Expression]):
        if not parts:
            raise ExpressionError("empty disjunction")
        self.parts = tuple(parts)

    def evaluate(self, env: Environment) -> bool:
        return any(part.evaluate(env) for part in self.parts)

    def references(self) -> Iterator[ColumnRef]:
        for part in self.parts:
            yield from part.references()

    def render(self) -> str:
        return " or ".join(p.render() for p in self.parts)


class Not(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, env: Environment) -> bool:
        return not self.operand.evaluate(env)

    def references(self) -> Iterator[ColumnRef]:
        yield from self.operand.references()

    def render(self) -> str:
        return f"not ({self.operand.render()})"


TRUE = Literal(True)


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten a predicate into a list of top-level conjuncts.

    ``None`` (no WHERE clause) flattens to the empty list.  Nested
    :class:`And` nodes are recursively expanded; any other node is a
    single conjunct.
    """
    if expression is None:
        return []
    if isinstance(expression, And):
        out: list[Expression] = []
        for part in expression.parts:
            out.extend(conjuncts(part))
        return out
    return [expression]


def conjoin(parts: Iterable[Expression]) -> Expression:
    """Combine conjuncts back into a predicate (TRUE when empty)."""
    parts = list(parts)
    if not parts:
        return TRUE
    if len(parts) == 1:
        return parts[0]
    return And(parts)
