"""Secondary indexes over relations.

The induction algorithm repeatedly probes relations by attribute value
(step 2 of Section 5.2.1 is a self-join on X), and the inference engine
probes rule sets by attribute.  Two index kinds cover those patterns:

* :class:`HashIndex` -- equality probes.
* :class:`SortedIndex` -- range probes ``low <= value <= high``, built on
  :mod:`bisect`.

Indexes are snapshots: they index the rows present at construction time.
Each snapshot records the relation's mutation version so staleness is
detectable (:attr:`HashIndex.is_stale`), and :class:`IndexCache` -- held
by the :class:`~repro.relational.database.Database` facade and shared by
the query planner and the legacy executor -- rebuilds stale snapshots
transparently instead of serving them.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from repro import obs
from repro.relational.relation import Relation


class HashIndex:
    """Equality index from column value to row list."""

    def __init__(self, relation: Relation, column: str):
        self.relation = relation
        self.column = column
        self.built_version = relation.version
        position = relation.schema.position(column)
        self._buckets: dict[Any, list[tuple]] = {}
        for row in relation:
            value = row[position]
            self._buckets.setdefault(value, []).append(row)

    @property
    def is_stale(self) -> bool:
        """Whether the relation mutated since this snapshot was built."""
        return self.relation.version != self.built_version

    def lookup(self, value: Any) -> list[tuple]:
        """Rows whose indexed column equals *value*."""
        return list(self._buckets.get(value, ()))

    def distinct_values(self) -> list[Any]:
        return list(self._buckets.keys())

    def __contains__(self, value: Any) -> bool:
        return value in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Ordered index supporting range scans.

    NULL values are excluded (they belong to no range).
    """

    def __init__(self, relation: Relation, column: str):
        self.relation = relation
        self.column = column
        self.built_version = relation.version
        position = relation.schema.position(column)
        pairs = [(row[position], row) for row in relation
                 if row[position] is not None]
        pairs.sort(key=lambda pair: pair[0])
        self._keys = [key for key, _row in pairs]
        self._rows = [row for _key, row in pairs]

    def range(self, low: Any = None, high: Any = None,
              low_inclusive: bool = True,
              high_inclusive: bool = True) -> Iterator[tuple]:
        """Rows with indexed value in the given (possibly open) range."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return iter(self._rows[start:stop])

    def count_range(self, low: Any = None, high: Any = None,
                    low_inclusive: bool = True,
                    high_inclusive: bool = True) -> int:
        """Number of rows in the range, without materializing them."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return max(0, stop - start)

    @property
    def is_stale(self) -> bool:
        """Whether the relation mutated since this snapshot was built."""
        return self.relation.version != self.built_version

    def min(self) -> Any:
        return self._keys[0] if self._keys else None

    def max(self) -> Any:
        return self._keys[-1] if self._keys else None

    def sorted_values(self) -> Sequence[Any]:
        return tuple(self._keys)

    def __len__(self) -> int:
        return len(self._keys)


class IndexCache:
    """Version-checked cache of secondary indexes for one database.

    Entries are keyed by (kind, relation name, column).  A cached index
    is served only while it still refers to the *same* relation object
    (drop/re-register swaps the object) and that relation has not
    mutated since the snapshot was built; otherwise the index is rebuilt
    on demand.  Amortized over a query workload this makes equality and
    range probes O(result) instead of O(relation).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str, str], HashIndex | SortedIndex] = {}
        self.rebuilds = 0  #: observability: how many (re)builds happened

    def hash_index(self, relation: Relation, column: str) -> HashIndex:
        """A fresh-enough :class:`HashIndex` on ``relation.column``."""
        return self._get("hash", relation, column, HashIndex)

    def sorted_index(self, relation: Relation, column: str) -> SortedIndex:
        """A fresh-enough :class:`SortedIndex` on ``relation.column``."""
        return self._get("sorted", relation, column, SortedIndex)

    def _get(self, kind: str, relation: Relation, column: str, factory):
        key = (kind, relation.name.lower(), column.lower())
        entry = self._entries.get(key)
        if (entry is not None and entry.relation is relation
                and not entry.is_stale):
            obs.counter("index_cache_requests_total",
                        "index-cache probes by outcome",
                        result="hit", kind=kind).inc()
            return entry
        obs.counter("index_cache_requests_total",
                    "index-cache probes by outcome",
                    result="stale" if entry is not None else "miss",
                    kind=kind).inc()
        entry = factory(relation, column)
        self._entries[key] = entry
        self.rebuilds += 1
        return entry

    def invalidate(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

