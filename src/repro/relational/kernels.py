"""Vectorized predicate kernels over :class:`ColumnStore` columns.

Where :mod:`repro.relational.compiled` collapses a predicate tree into a
per-row closure, this module collapses it into a *mask*: one boolean per
row, computed column-at-a-time (a numpy boolean array on the fast path,
a plain list from a single comprehension otherwise).  Masks AND/OR/NOT
together positionally and the final mask becomes a selection vector --
the ascending row indices that survive -- which callers use to gather
surviving rows from the store's aligned snapshot.

Exact-semantics gating
----------------------

The row pipeline's semantics are the contract: comparisons with a NULL
operand are false, ``and``/``or`` short-circuit per row, and a type
error raises :class:`~repro.errors.ExpressionError` *for the first row
that reaches it*.  A mask evaluates every row of every conjunct, so the
only predicates compiled here are ones that provably cannot raise:
comparisons whose operand types are :func:`~repro.relational.datatypes.
comparable` (then short-circuit order is unobservable), ``IS NULL``
over a column, and boolean combinators over such parts.  Anything else
-- arithmetic (division can raise), incomparable operand types, unknown
node shapes -- raises :class:`UnsupportedKernel` and the caller falls
back to the row path, which reproduces interpreter behavior exactly.
Column-resolution failures raise the resolver's
:class:`ExpressionError` with the interpreter's messages, matching when
and what the compiled row path raises.

Dictionary columns evaluate comparisons over *codes*: an ordering
predicate becomes one comparison per distinct dictionary value (a truth
table) plus a gather, never one per row; the NULL code indexes a
dedicated always-false slot.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ExpressionError, TypeMismatchError
from repro.relational import columnar
from repro.relational.columnar import (
    ColumnStore, DictionaryColumn, PlainColumn,
)
from repro.relational.datatypes import comparable, infer_type
from repro.relational.expressions import (
    _COMPARISONS, And, Comparison, ColumnRef, Expression, IsNull, Literal,
    Not, Or,
)


class UnsupportedKernel(Exception):
    """Raised when a predicate cannot be compiled into a total
    (never-raising) mask; callers fall back to the row path."""


def predicate_mask(store: ColumnStore, predicates: Sequence[Expression],
                   qualifiers: Iterable[str] = (),
                   lo: int = 0, hi: int | None = None):
    """The conjunction of *predicates* as one mask over *store*'s rows
    (``None`` when there are no predicates, i.e. everything survives).

    ``lo``/``hi`` restrict evaluation to the row range ``[lo, hi)`` --
    the parallel morsel path hands each worker a disjoint range, and on
    the numpy path a range is an array slice (a view, so the comparison
    itself releases the GIL over just those rows).  The default range
    is every row.

    Raises :class:`UnsupportedKernel` for trees outside the compilable
    subset and :class:`ExpressionError` for resolution failures, with
    the row-path resolver's messages.
    """
    accepted = {q.lower() for q in qualifiers}
    span = _Span(lo, len(store.rows) if hi is None else hi)
    mask = None
    for predicate in predicates:
        mask = combine_and(mask, _mask(predicate, store, accepted, span))
    return mask


def combine_and(left, right):
    """AND of two masks; ``None`` means all-true."""
    if left is None:
        return right
    if right is None:
        return left
    np = columnar.numpy_module()
    if np is not None:
        return left & right
    return [a and b for a, b in zip(left, right)]


def count(mask, n: int) -> int:
    """Surviving rows under *mask* (``None`` = all *n* survive)."""
    if mask is None:
        return n
    np = columnar.numpy_module()
    if np is not None and isinstance(mask, np.ndarray):
        return int(np.count_nonzero(mask))
    return sum(mask)


def to_selection(mask):
    """*mask* as a selection vector: ascending surviving row indices
    (``None`` passes through, meaning every row)."""
    if mask is None:
        return None
    np = columnar.numpy_module()
    if np is not None and isinstance(mask, np.ndarray):
        return np.nonzero(mask)[0]
    return [i for i, survives in enumerate(mask) if survives]


def membership_mask(store: ColumnStore, position: int, keys,
                    lo: int = 0, hi: int | None = None):
    """Mask of rows in ``[lo, hi)`` (default: every row) whose value in
    the column at *position* appears in *keys* (the hash-join probe
    prefilter).  NULLs never match.  The mask may *over*-approximate
    only if a caller skips the final bucket lookup -- here it is exact
    for hashable keys, and callers re-probe the bucket dict per
    candidate anyway, so row-path dict semantics (including NaN
    identity) are preserved.
    """
    np = columnar.numpy_module()
    column = store.columns[position]
    if hi is None:
        hi = len(store.rows)
    if isinstance(column, DictionaryColumn):
        codes = [column.code_for(key) for key in keys]
        wanted = {code for code in codes if code is not None}
        if np is not None:
            if not wanted:
                return np.zeros(hi - lo, dtype=bool)
            return np.isin(column.np_codes()[lo:hi],
                           np.fromiter(wanted, dtype=np.int32,
                                       count=len(wanted)))
        return [code in wanted for code in column.codes[lo:hi]]
    if np is not None:
        array = column.array() if isinstance(column, PlainColumn) else None
        if array is not None and not _nan_hazard(np, array, keys):
            try:
                key_array = np.asarray(list(keys))
            except (TypeError, ValueError, OverflowError):
                key_array = None
            if key_array is not None and key_array.dtype.kind in "if":
                return np.isin(array[lo:hi], key_array)
    key_set = set(keys)
    return [value in key_set for value in column.values[lo:hi]]


def notnull_mask(store: ColumnStore, position: int,
                 lo: int = 0, hi: int | None = None):
    """Mask of rows in ``[lo, hi)`` (default: every row) whose value in
    the column at *position* is not NULL (``None`` when the range
    provably has no NULLs)."""
    column = store.columns[position]
    np = columnar.numpy_module()
    if hi is None:
        hi = len(store.rows)
    if isinstance(column, DictionaryColumn):
        if np is not None:
            return column.np_codes()[lo:hi] >= 0
        return [code >= 0 for code in column.codes[lo:hi]]
    if np is not None and isinstance(column, PlainColumn):
        if column.array() is not None:  # a built array proves no NULLs
            return None
    values = column.values[lo:hi]
    if any(value is None for value in values):
        mask = [value is not None for value in values]
        return (np.asarray(mask, dtype=bool) if np is not None else mask)
    return None


def _nan_hazard(np, array, keys) -> bool:
    """Whether NaN could make ``np.isin`` diverge from dict probing
    (Python dicts match NaN by identity; numpy never matches it)."""
    if array.dtype.kind != "f":
        return False
    if any(isinstance(key, float) and key != key for key in keys):
        return True
    return bool(np.isnan(array).any())


# -- mask compilation --------------------------------------------------------


class _Span:
    """The half-open row range ``[lo, hi)`` a mask evaluates over."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = max(lo, hi)

    def __len__(self) -> int:
        return self.hi - self.lo


def _mask(expression: Expression, store: ColumnStore, accepted: set,
          span: _Span):
    mask = _mask_node(expression, store, accepted, span)
    np = columnar.numpy_module()
    if np is not None and not isinstance(mask, np.ndarray):
        mask = np.asarray(mask, dtype=bool)
    return mask


def _mask_node(expression: Expression, store: ColumnStore, accepted: set,
               span: _Span):
    if isinstance(expression, Literal):
        return _const_mask(len(span), bool(expression.value))
    if isinstance(expression, Comparison):
        return _comparison_mask(expression, store, accepted, span)
    if isinstance(expression, IsNull):
        return _is_null_mask(expression, store, accepted, span)
    if isinstance(expression, And):
        mask = None
        for part in expression.parts:
            mask = combine_and(mask, _mask(part, store, accepted, span))
        return mask
    if isinstance(expression, Or):
        mask = None
        for part in expression.parts:
            part_mask = _mask(part, store, accepted, span)
            if mask is None:
                mask = part_mask
            else:
                np = columnar.numpy_module()
                mask = (mask | part_mask if np is not None
                        else [a or b for a, b in zip(mask, part_mask)])
        return mask
    if isinstance(expression, Not):
        mask = _mask(expression.operand, store, accepted, span)
        np = columnar.numpy_module()
        return ~mask if np is not None else [not value for value in mask]
    raise UnsupportedKernel(type(expression).__name__)


def _resolve(ref: ColumnRef, store: ColumnStore, accepted: set) -> int:
    """Column position of *ref*, with the row-path resolver's errors."""
    schema = store.schema
    if ref.qualifier is not None:
        if ref.qualifier.lower() not in accepted:
            raise ExpressionError(
                f"unknown range variable or relation {ref.qualifier!r}")
        if not schema.has_column(ref.column):
            raise ExpressionError(
                f"{ref.qualifier} has no column {ref.column!r}")
    elif not schema.has_column(ref.column):
        raise ExpressionError(f"unknown column {ref.column!r}")
    return schema.position(ref.column)


def _comparison_mask(expression: Comparison, store: ColumnStore,
                     accepted: set, span: _Span):
    left, right, op = expression.left, expression.right, expression.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        expression = expression.flipped()
        left, right, op = expression.left, expression.right, expression.op
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        position = _resolve(left, store, accepted)
        return _column_literal_mask(store, position, op, right.value, span)
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        position_a = _resolve(left, store, accepted)
        position_b = _resolve(right, store, accepted)
        return _column_column_mask(store, position_a, position_b, op, span)
    raise UnsupportedKernel(expression.render())


def _column_literal_mask(store: ColumnStore, position: int, op: str,
                         literal: Any, span: _Span):
    if literal is None:
        return _const_mask(len(span), False)  # NULL compares false
    datatype = store.schema.columns[position].datatype
    try:
        literal_type = infer_type(literal)
    except TypeMismatchError:
        raise UnsupportedKernel(f"literal {literal!r}") from None
    if not comparable(datatype, literal_type):
        # The row path raises a per-row type error for the first non-NULL
        # value; a total mask cannot reproduce that, so fall back.
        raise UnsupportedKernel(
            f"{datatype.render()} vs {literal_type.render()}")
    compare = _COMPARISONS[op]
    column = store.columns[position]
    np = columnar.numpy_module()
    if isinstance(column, DictionaryColumn):
        # One comparison per *distinct* value, then gather through the
        # codes; the extra slot keeps the NULL code (-1) always false.
        table = [compare(value, literal) for value in column.values]
        if np is not None:
            np_table = np.zeros(len(table) + 1, dtype=bool)
            if table:
                np_table[:len(table)] = table
            return np_table[column.np_codes()[span.lo:span.hi]]
        return [code >= 0 and table[code]
                for code in column.codes[span.lo:span.hi]]
    if np is not None:
        array = column.array()
        if array is not None:
            return _np_compare(np, op, array[span.lo:span.hi], literal)
    return [value is not None and compare(value, literal)
            for value in column.values[span.lo:span.hi]]


def _column_column_mask(store: ColumnStore, position_a: int,
                        position_b: int, op: str, span: _Span):
    type_a = store.schema.columns[position_a].datatype
    type_b = store.schema.columns[position_b].datatype
    if not comparable(type_a, type_b):
        raise UnsupportedKernel(f"{type_a.render()} vs {type_b.render()}")
    column_a = store.columns[position_a]
    column_b = store.columns[position_b]
    np = columnar.numpy_module()
    if (np is not None and isinstance(column_a, PlainColumn)
            and isinstance(column_b, PlainColumn)):
        array_a = column_a.array()
        array_b = column_b.array()
        if array_a is not None and array_b is not None:
            return _np_compare(np, op, array_a[span.lo:span.hi],
                               array_b[span.lo:span.hi])
    compare = _COMPARISONS[op]
    return [a is not None and b is not None and compare(a, b)
            for a, b in zip(store.values(position_a)[span.lo:span.hi],
                            store.values(position_b)[span.lo:span.hi])]


def _is_null_mask(expression: IsNull, store: ColumnStore, accepted: set,
                  span: _Span):
    if not isinstance(expression.operand, ColumnRef):
        raise UnsupportedKernel(expression.render())
    position = _resolve(expression.operand, store, accepted)
    column = store.columns[position]
    np = columnar.numpy_module()
    if isinstance(column, DictionaryColumn):
        if np is not None:
            codes = column.np_codes()[span.lo:span.hi]
            return codes >= 0 if expression.negated else codes < 0
        codes = column.codes[span.lo:span.hi]
        if expression.negated:
            return [code >= 0 for code in codes]
        return [code < 0 for code in codes]
    if np is not None and isinstance(column, PlainColumn):
        if column.array() is not None:  # a built array proves no NULLs
            return _const_mask(len(span), expression.negated)
    values = column.values[span.lo:span.hi]
    if expression.negated:
        return [value is not None for value in values]
    return [value is None for value in values]


def _const_mask(n: int, value: bool):
    np = columnar.numpy_module()
    if np is not None:
        return np.full(n, value, dtype=bool)
    return [value] * n


def _np_compare(np, op: str, left, right):
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


__all__ = [
    "UnsupportedKernel",
    "combine_and",
    "count",
    "membership_mask",
    "notnull_mask",
    "predicate_mask",
    "to_selection",
]
