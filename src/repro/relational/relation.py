"""Relation values: a schema plus a sequence of typed rows.

Relations use *bag* semantics by default (INGRES ``retrieve`` without
``unique`` keeps duplicates); :meth:`Relation.distinct` collapses to set
semantics, mirroring ``retrieve unique``.

Rows are plain tuples.  Helper accessors return column values by name so
higher layers never index positions by hand.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Column, RelationSchema
from repro.relational.datatypes import infer_type


class Relation:
    """An in-memory relation (schema + rows).

    Parameters
    ----------
    schema:
        The relation's schema.
    rows:
        Iterable of row tuples/sequences; each row is validated and
        coerced against the schema.
    validated:
        Internal fast path: when True, rows are trusted as-is (used by
        the algebra operators, which only emit well-typed rows).
    """

    def __init__(self, schema: RelationSchema,
                 rows: Iterable[Sequence[Any]] = (),
                 validated: bool = False):
        self.schema = schema
        if validated:
            self._rows: list[tuple] = [tuple(row) for row in rows]
        else:
            self._rows = [schema.check_row(row) for row in rows]
        self._version = 0
        self._mutation_hooks: dict[int, Callable[["Relation"], None]] = {}
        self._next_hook_token = 1
        #: lazy columnar snapshot (see :meth:`column_store`); inserts
        #: fold in incrementally, every other mutation drops it.
        self._column_store = None
        #: durable-storage journal (set by an attached StorageEngine via
        #: the catalog); mutators report their redo payload to it
        #: *before* applying, so the engine can capture the pre-image.
        self.journal = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: RelationSchema,
                   records: Iterable[dict[str, Any]]) -> "Relation":
        """Build a relation from mappings of column name -> value."""
        rows = []
        for record in records:
            lowered = {key.lower(): value for key, value in record.items()}
            unknown = set(lowered) - {c.key for c in schema.columns}
            if unknown:
                raise SchemaError(
                    f"unknown columns {sorted(unknown)} for {schema.name}")
            rows.append([lowered.get(column.key) for column in schema.columns])
        return cls(schema, rows)

    @classmethod
    def infer(cls, name: str, column_names: Sequence[str],
              rows: Sequence[Sequence[Any]],
              key: Sequence[str] | None = None) -> "Relation":
        """Build a relation inferring column types from the first row
        holding a non-NULL value in each column."""
        if not rows:
            raise SchemaError("cannot infer a schema from zero rows")
        columns = []
        for position, column_name in enumerate(column_names):
            sample = next(
                (row[position] for row in rows if row[position] is not None),
                None)
            columns.append(Column(column_name, infer_type(sample)))
        return cls(RelationSchema(name, columns, key=key), rows)

    # -- basic protocol ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> list[tuple]:
        """The underlying row list.  Treat as read-only."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema columns and same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        if [c.key for c in self.schema.columns] != [
                c.key for c in other.schema.columns]:
            return False
        return sorted(self._rows, key=_sort_key) == sorted(
            other._rows, key=_sort_key)

    def __hash__(self):  # pragma: no cover - relations are mutable
        raise TypeError("Relation is unhashable")

    # -- row access --------------------------------------------------------

    def value(self, row: Sequence[Any], column: str) -> Any:
        """Value of *column* (case-insensitive) in *row*."""
        return row[self.schema.position(column)]

    def column_values(self, column: str) -> list[Any]:
        """All values of *column*, in row order (duplicates preserved)."""
        position = self.schema.position(column)
        return [row[position] for row in self._rows]

    def record(self, row: Sequence[Any]) -> dict[str, Any]:
        """Row as a dict keyed by declared column names."""
        return {column.name: value
                for column, value in zip(self.schema.columns, row)}

    def records(self) -> list[dict[str, Any]]:
        return [self.record(row) for row in self._rows]

    def row_view(self) -> "RowView":
        """A reusable dict-like view over one row at a time.

        ``view.bind(row)`` repoints the view without allocating, so
        record-style predicates (``lambda r: r["Age"] > 30``) can run
        over every row with a single allocation instead of one dict per
        row.  The view is *reused*: copy with ``dict(view)`` to retain a
        row's values past the next ``bind``.
        """
        return RowView(self.schema)

    # -- batched access ----------------------------------------------------

    def iter_batches(self, size: int) -> Iterator[list[tuple]]:
        """Stream the rows as list slices of at most *size* rows.

        Batches share the underlying row tuples (no copies); only the
        per-batch list of references is materialized, so a consumer that
        stops early never pays for the rest of the relation.

        The row list is snapshotted (a pointer copy) when the first
        batch is requested, matching the plan nodes and the columnar
        store: a mutation arriving mid-iteration neither shifts nor
        extends what this stream yields -- the next call sees it.
        """
        if size <= 0:
            raise ValueError(f"batch size must be positive, got {size}")
        rows = list(self._rows)  # iteration-start snapshot
        for start in range(0, len(rows), size):
            yield rows[start:start + size]

    def columns(self, *names: str) -> tuple[tuple, ...]:
        """Value sequences for the named columns, via one transpose.

        ``xs, ys = relation.columns("X", "Y")`` replaces per-row
        position lookups with positional column extraction -- the shape
        rule induction and statistics consume.  Shares the single
        C-speed ``zip(*rows)`` pass with :meth:`column_arrays` instead
        of one Python pass per requested column.
        """
        positions = [self.schema.position(name) for name in names]
        arrays = self.column_arrays()
        return tuple(arrays[position] for position in positions)

    def column_arrays(self) -> list[tuple]:
        """All columns as value tuples, in schema order, via a single
        transpose of the row list (C-speed ``zip`` instead of one Python
        pass per column)."""
        if not self._rows:
            return [() for _ in self.schema.columns]
        return list(zip(*self._rows))

    def column_store(self):
        """The relation's columnar snapshot (see
        :mod:`repro.relational.columnar`), rebuilt when stale.

        The store is a cache keyed on :attr:`version`: inserts fold in
        incrementally (row indices never move, so outstanding selection
        vectors stay valid), any other mutation drops it and the next
        caller pays one transpose.  Consumers must not mutate the
        returned store.
        """
        from repro.relational.columnar import ColumnStore
        store = self._column_store
        if store is not None and store.version == self._version:
            return store
        store = ColumnStore(self.schema, self._rows)
        store.version = self._version
        self._column_store = store
        return store

    def _store_appended(self, rows: list[tuple]) -> None:
        """Fold freshly appended *rows* into a live store (called by the
        insert paths before :meth:`_touch` bumps the version)."""
        store = self._column_store
        if store is None:
            return
        if store.version == self._version:
            store.append_rows(rows)
            store.version = self._version + 1  # stays fresh past _touch
        else:
            self._column_store = None  # already stale; stop paying rent

    # -- mutation (used by the Database facade and QUEL delete/append) ----

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation.

        Snapshot consumers (indexes, statistics) record the version they
        were built against and compare it against the live value instead
        of silently serving stale data.
        """
        return self._version

    def add_mutation_hook(self, hook: Callable[["Relation"], None]) -> int:
        """Register *hook* to run after every mutation; returns a token
        for :meth:`remove_mutation_hook`.  The catalog uses this to fold
        relation mutations into its single ``stats_version`` signal."""
        token = self._next_hook_token
        self._next_hook_token += 1
        self._mutation_hooks[token] = hook
        return token

    def remove_mutation_hook(self, token: int) -> None:
        self._mutation_hooks.pop(token, None)

    def _touch(self) -> None:
        self._version += 1
        for hook in list(self._mutation_hooks.values()):
            hook(self)

    def _log(self, op: str, **payload: Any) -> None:
        """Report an imminent mutation to the attached journal (the
        rows have not changed yet, so the journal can snapshot the
        pre-image for transaction rollback)."""
        if self.journal is not None:
            self.journal.log_mutation(self, op, payload)

    def insert(self, values: Sequence[Any]) -> tuple:
        row = self.schema.check_row(values)
        self._log("insert", rows=[row])
        self._rows.append(row)
        self._store_appended([row])
        self._touch()
        return row

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        checked = [self.schema.check_row(values) for values in rows]
        if checked:
            self._log("insert", rows=checked)
            self._rows.extend(checked)
            self._store_appended(checked)
            self._touch()
        return len(checked)

    def delete_where(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete rows satisfying *predicate*; return the count deleted."""
        positions = [index for index, row in enumerate(self._rows)
                     if predicate(row)]
        if not positions:
            return 0
        self._log("delete", positions=positions)
        self._column_store = None
        doomed = set(positions)
        self._rows[:] = [row for index, row in enumerate(self._rows)
                         if index not in doomed]
        self._touch()
        return len(positions)

    def replace_where(self, predicate: Callable[[tuple], bool],
                      updater: Callable[[tuple], Sequence[Any]]) -> int:
        """Update rows satisfying *predicate* to ``updater(row)``
        (validated); returns the count updated.  This backs QUEL's
        ``replace`` statement.

        Every replacement row is validated before any is applied, so a
        bad updater leaves the relation untouched (statement-level
        atomicity in memory, matching the journal's redo payload).
        """
        changes: list[tuple[int, tuple]] = []
        for index, row in enumerate(self._rows):
            if predicate(row):
                changes.append((index, self.schema.check_row(updater(row))))
        if not changes:
            return 0
        self._log("replace", changes=changes)
        self._column_store = None
        for index, row in changes:
            self._rows[index] = row
        self._touch()
        return len(changes)

    def clear(self) -> None:
        if not self._rows:
            return
        self._log("clear")
        self._column_store = None
        self._rows.clear()
        self._touch()

    def restore_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Replace the row list wholesale (transaction rollback and
        recovery replay).  Bypasses the journal -- the caller *is* the
        storage engine -- but still bumps the mutation version and fires
        hooks, so caches invalidate exactly as for a live mutation."""
        self._column_store = None
        self._rows[:] = [tuple(row) for row in rows]
        self._touch()

    # -- derived relations --------------------------------------------------

    def copy(self, new_name: str | None = None) -> "Relation":
        schema = self.schema if new_name is None else self.schema.rename(
            new_name)
        return Relation(schema, list(self._rows), validated=True)

    def distinct(self) -> "Relation":
        """Set-semantics copy (first occurrence order preserved)."""
        seen: set[tuple] = set()
        rows = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(self.schema, rows, validated=True)

    def sorted_by(self, *columns: str, descending: bool = False) -> "Relation":
        """Copy sorted by the given columns (NULLs sort first)."""
        positions = [self.schema.position(c) for c in columns]

        def key(row: tuple):
            return tuple(_null_low(row[p]) for p in positions)

        rows = sorted(self._rows, key=key, reverse=descending)
        return Relation(self.schema, rows, validated=True)

    # -- display -------------------------------------------------------------

    def render(self, max_rows: int | None = None) -> str:
        """Fixed-width text table in the style of the paper's appendices."""
        header = self.schema.column_names()
        body = [[_display(v) for v in row] for row in self._rows]
        if max_rows is not None and len(body) > max_rows:
            omitted = len(body) - max_rows
            body = body[:max_rows] + [[f"... {omitted} more"] +
                                      [""] * (len(header) - 1)]
        widths = [len(h) for h in header]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))
        rule = "-+-".join("-" * w for w in widths)
        out = [" | ".join(h.ljust(w) for h, w in zip(header, widths)), rule]
        for line in body:
            out.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
        return "\n".join(out)

    def __repr__(self) -> str:
        return f"Relation<{self.schema.render()}, {len(self)} rows>"


class RowView:
    """Read-only mapping view of one row of a schema.

    Behaves like the dict :meth:`Relation.record` returns (lookup by
    declared column name, case-insensitive; iteration yields column
    names) but holds only a row reference, so rebinding it row after row
    costs nothing.  Built by :meth:`Relation.row_view`.
    """

    __slots__ = ("_schema", "_row")

    def __init__(self, schema: RelationSchema,
                 row: Sequence[Any] | None = None):
        self._schema = schema
        self._row = row

    def bind(self, row: Sequence[Any]) -> "RowView":
        """Repoint the view at *row*; returns self for chaining."""
        self._row = row
        return self

    def __getitem__(self, key: str) -> Any:
        try:
            return self._row[self._schema.position(key)]
        except SchemaError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        if not self._schema.has_column(key):
            return default
        return self._row[self._schema.position(key)]

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self._schema.has_column(key)

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.column_names())

    def __len__(self) -> int:
        return self._schema.arity

    def keys(self) -> list[str]:
        return self._schema.column_names()

    def values(self) -> list[Any]:
        return list(self._row)

    def items(self) -> list[tuple[str, Any]]:
        return list(zip(self._schema.column_names(), self._row))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (dict, RowView)):
            return dict(self.items()) == dict(
                other.items() if isinstance(other, RowView)
                else other.items())
        return NotImplemented

    def __repr__(self) -> str:
        return f"RowView({dict(self.items())!r})"


def _display(value: Any) -> str:
    if value is None:
        return "NULL"
    return str(value)


class _NullLow:
    """Sentinel ordering NULL below every value."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, _NullLow)

    def __gt__(self, other: object) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullLow)

    def __hash__(self) -> int:
        return 0


_NULL_LOW = _NullLow()


def _null_low(value: Any) -> Any:
    return _NULL_LOW if value is None else value


def _sort_key(row: tuple):
    return tuple((value is None, repr(type(value)), value)
                 if value is not None else (True, "", 0) for value in row)
