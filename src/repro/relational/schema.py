"""Relation schemas: ordered, typed, named columns plus an optional key.

Column and relation names are matched case-insensitively (the paper mixes
``Id``/``ID`` and ``Class``/``CLASS`` freely between the KER schema and
the SQL examples) while the declared spelling is preserved for display.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.datatypes import DataType


class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Declared column name; lookups are case-insensitive.
    datatype:
        A :class:`~repro.relational.datatypes.DataType` instance.
    nullable:
        Whether NULL (``None``) is accepted.  Key columns are implicitly
        non-nullable regardless of this flag.
    """

    __slots__ = ("name", "datatype", "nullable")

    def __init__(self, name: str, datatype: DataType, nullable: bool = True):
        if not name or not isinstance(name, str):
            raise SchemaError(f"bad column name {name!r}")
        self.name = name
        self.datatype = datatype
        self.nullable = nullable

    @property
    def key(self) -> str:
        """Case-insensitive lookup key for this column."""
        return self.name.lower()

    def check(self, value: Any) -> Any:
        """Validate and coerce *value* for this column."""
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(f"column {self.name} is not nullable")
            return None
        if self.datatype.validate(value):
            return value
        return self.datatype.coerce(value)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Column)
                and self.key == other.key
                and self.datatype == other.datatype
                and self.nullable == other.nullable)

    def __hash__(self) -> int:
        return hash((self.key, self.datatype, self.nullable))

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.datatype.render()})"


class RelationSchema:
    """Schema of a relation: a name, ordered columns, and an optional key.

    The key, when declared, is the primary key of the entity set in KER
    terms (the "set of unique identifiers").
    """

    def __init__(self, name: str, columns: Sequence[Column],
                 key: Sequence[str] | None = None):
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not columns:
            raise SchemaError(f"relation {name} needs at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.key in self._index:
                raise SchemaError(
                    f"duplicate column {column.name!r} in relation {name}")
            self._index[column.key] = position
        self.key: tuple[str, ...] = ()
        if key:
            resolved = []
            for key_name in key:
                if key_name.lower() not in self._index:
                    raise SchemaError(
                        f"key column {key_name!r} not in relation {name}")
                resolved.append(self.column(key_name).name)
            self.key = tuple(resolved)

    # -- lookups ---------------------------------------------------------

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def position(self, name: str) -> int:
        """0-based position of column *name* (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"relation {self.name} has no column {name!r}; "
                f"columns are {', '.join(c.name for c in self.columns)}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    # -- construction helpers -------------------------------------------

    def check_row(self, values: Sequence[Any]) -> tuple:
        """Validate and coerce one row of values against this schema."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name} expects {self.arity} values, "
                f"got {len(values)}")
        return tuple(column.check(value)
                     for column, value in zip(self.columns, values))

    def project(self, names: Iterable[str], new_name: str | None = None
                ) -> "RelationSchema":
        """Schema of a projection onto *names* (order as given)."""
        columns = [self.column(name) for name in names]
        return RelationSchema(new_name or self.name, columns)

    def rename(self, new_name: str) -> "RelationSchema":
        return RelationSchema(new_name, self.columns, key=self.key)

    def renamed_columns(self, mapping: dict[str, str]) -> "RelationSchema":
        """Return a schema with columns renamed per *mapping* (old->new)."""
        lowered = {old.lower(): new for old, new in mapping.items()}
        columns = [
            Column(lowered.get(column.key, column.name), column.datatype,
                   column.nullable)
            for column in self.columns
        ]
        return RelationSchema(self.name, columns)

    def concat(self, other: "RelationSchema", new_name: str,
               left_prefix: str | None = None,
               right_prefix: str | None = None) -> "RelationSchema":
        """Schema of a product/join of self and *other*.

        On column-name collision both sides are prefixed (``rel.col``
        style with an underscore, since dots are kept for range-variable
        qualification at the language layers).
        """
        collisions = {c.key for c in self.columns} & {
            c.key for c in other.columns}

        def emit(schema: RelationSchema, prefix: str | None) -> list[Column]:
            out = []
            for column in schema.columns:
                name = column.name
                if column.key in collisions:
                    use = prefix or schema.name
                    name = f"{use}_{column.name}"
                out.append(Column(name, column.datatype, column.nullable))
            return out

        columns = emit(self, left_prefix) + emit(other, right_prefix)
        return RelationSchema(new_name, columns)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RelationSchema)
                and self.name.lower() == other.name.lower()
                and self.columns == other.columns)

    def __hash__(self) -> int:
        return hash((self.name.lower(), self.columns))

    def render(self) -> str:
        """One-line rendering, e.g. ``EMP(Name char[20], Age integer)``."""
        cols = ", ".join(
            f"{c.name} {c.datatype.render()}" for c in self.columns)
        return f"{self.name}({cols})"

    def __repr__(self) -> str:
        return f"RelationSchema<{self.render()}>"
