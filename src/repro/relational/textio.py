"""Plain-text serialization of relations and whole databases.

The paper's Section 5.2.2 emphasizes that a database and its rule
relations "can be relocated together".  This module provides the
relocation transport: a deterministic, line-oriented text format that
round-trips schemas (with types and keys) and rows.

Format::

    %relation SUBMARINE key=Id
    Id:char[7]|Name:char[20]|Class:char[4]
    SSBN130|Typhoon|1301
    ...
    %end

Values are escaped minimally (``\\|``, ``\\n``, ``\\\\``); NULL is the
unescaped token ``\\N``.
"""

from __future__ import annotations

import datetime
import io
import re
from typing import Any, Iterable, TextIO

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.datatypes import (
    DataType, DateType, IntegerType, RealType, INTEGER, REAL, DATE, char,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema

_CHAR_RE = re.compile(r"^char\[(\d+)\]$")


def _render_type(datatype: DataType) -> str:
    return datatype.render()


def _parse_type(text: str) -> DataType:
    text = text.strip()
    if text == "integer":
        return INTEGER
    if text == "real":
        return REAL
    if text == "date":
        return DATE
    if text == "string":
        return char(None)
    match = _CHAR_RE.match(text)
    if match:
        return char(int(match.group(1)))
    raise SchemaError(f"unknown column type {text!r}")


def _escape(value: Any) -> str:
    if value is None:
        return "\\N"
    if isinstance(value, datetime.date):
        text = value.isoformat()
    else:
        text = str(value)
    text = (text.replace("\\", "\\\\").replace("|", "\\|")
            .replace("\n", "\\n").replace("\r", "\\r"))
    # A row whose first cell starts with '%' would otherwise be read
    # back as a block marker (e.g. the string value "%end").
    if text.startswith("%"):
        text = "\\%" + text[1:]
    return text


def _unescape(text: str, datatype: DataType) -> Any:
    if text == "\\N":
        return None
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append({"\\": "\\", "|": "|", "n": "\n", "r": "\r",
                        "%": "%"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    raw = "".join(out)
    if isinstance(datatype, IntegerType):
        return int(raw)
    if isinstance(datatype, RealType):
        return float(raw)
    if isinstance(datatype, DateType):
        return datetime.date.fromisoformat(raw)
    return raw


def _split_row(line: str) -> list[str]:
    """Split on unescaped ``|``."""
    fields = []
    buf = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and i + 1 < len(line):
            buf.append(ch)
            buf.append(line[i + 1])
            i += 2
        elif ch == "|":
            fields.append("".join(buf))
            buf = []
            i += 1
        else:
            buf.append(ch)
            i += 1
    fields.append("".join(buf))
    return fields


def dump_relation(relation: Relation, stream: TextIO) -> None:
    """Write one relation block to *stream*."""
    header = f"%relation {relation.name}"
    if relation.schema.key:
        header += " key=" + ",".join(relation.schema.key)
    stream.write(header + "\n")
    stream.write("|".join(
        f"{c.name}:{_render_type(c.datatype)}"
        for c in relation.schema.columns) + "\n")
    for row in relation:
        stream.write("|".join(_escape(v) for v in row) + "\n")
    stream.write("%end\n")


def dumps_relation(relation: Relation) -> str:
    buffer = io.StringIO()
    dump_relation(relation, buffer)
    return buffer.getvalue()


def dump_database(database: Database, stream: TextIO) -> None:
    stream.write(f"%database {database.name}\n")
    for relation in database.catalog:
        dump_relation(relation, stream)


def dumps_database(database: Database) -> str:
    buffer = io.StringIO()
    dump_database(database, buffer)
    return buffer.getvalue()


def load_relations(stream: TextIO | Iterable[str]) -> list[Relation]:
    """Read every relation block from *stream*."""
    relations: list[Relation] = []
    name: str | None = None
    key: list[str] | None = None
    schema: RelationSchema | None = None
    rows: list[tuple] = []
    for raw_line in stream:
        line = raw_line.rstrip("\n")
        # A blank line *inside* a row section is a legitimate row (a
        # single empty-string cell); skipping it would silently drop
        # the row.  Blank lines between blocks remain ignorable.
        if not line and schema is None:
            continue
        if line.startswith("%database"):
            continue
        if line.startswith("%relation"):
            parts = line.split()
            name = parts[1]
            key = None
            for extra in parts[2:]:
                if extra.startswith("key="):
                    key = extra[4:].split(",")
            schema = None
            rows = []
            continue
        if line == "%end":
            if schema is None or name is None:
                raise SchemaError("malformed relation block (no header row)")
            relations.append(Relation(schema, rows, validated=True))
            name = None
            schema = None
            continue
        if schema is None:
            if name is None:
                raise SchemaError(f"stray line outside block: {line!r}")
            columns = []
            for field in _split_row(line):
                column_name, _sep, type_text = field.partition(":")
                if not _sep:
                    raise SchemaError(f"bad column spec {field!r}")
                columns.append(Column(column_name, _parse_type(type_text)))
            schema = RelationSchema(name, columns, key=key)
            continue
        fields = _split_row(line)
        if len(fields) != schema.arity:
            raise SchemaError(
                f"row has {len(fields)} fields, schema {schema.name} "
                f"has {schema.arity}")
        rows.append(tuple(
            _unescape(field, column.datatype)
            for field, column in zip(fields, schema.columns)))
    if name is not None:
        raise SchemaError(f"unterminated relation block {name!r}")
    return relations


def loads_relations(text: str) -> list[Relation]:
    return load_relations(io.StringIO(text))


def load_database(stream: TextIO | Iterable[str],
                  name: str | None = None) -> Database:
    if isinstance(stream, str):
        raise TypeError("pass a stream or lines; use loads_database for str")
    lines = list(stream)
    database_name = name or "db"
    for line in lines:
        if line.startswith("%database"):
            parts = line.split()
            if len(parts) > 1:
                database_name = parts[1]
            break
    database = Database(database_name)
    for relation in load_relations(lines):
        database.catalog.register(relation)
    return database


def loads_database(text: str, name: str | None = None) -> Database:
    return load_database(io.StringIO(text).readlines(), name=name)
