"""Benchmark/report rendering helpers."""

from repro.reporting.tables import render_table

__all__ = ["render_table"]
