"""Fixed-width text tables for benchmark output.

The benchmark harness prints the rows/series the paper reports; this
keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render a fixed-width table (right-aligns numeric cells)."""
    text_rows = [[_format(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [all(isinstance(row[index], (int, float))
                   for row in rows if row[index] is not None) and bool(rows)
               for index in range(len(headers))]

    def line(cells: Sequence[str]) -> str:
        out = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                out.append(cell.rjust(widths[index]))
            else:
                out.append(cell.ljust(widths[index]))
        return " | ".join(out)

    rule = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(line(list(headers)))
    lines.append(rule)
    lines.extend(line(row) for row in text_rows)
    return "\n".join(lines)


def _format(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
