"""Rule representation.

The knowledge the ILS induces is a set of Horn rules whose clauses are
attribute value ranges (Section 5.2.2)::

    if C_L1 and ... and C_Ln then C_R

with every clause an inclusive interval ``(lvalue, attribute, uvalue)``.
This package provides:

* :class:`~repro.rules.clause.Interval` -- closed/open/unbounded interval
  values with containment and intersection.
* :class:`~repro.rules.clause.AttributeRef` / :class:`~repro.rules.clause.Clause`.
* :class:`~repro.rules.rule.Rule` and :class:`~repro.rules.ruleset.RuleSet`
  (grouped into rule schemes ``X --> Y``).
* :mod:`~repro.rules.rule_relations` -- the relational encoding that lets
  knowledge relocate with the database.
* :mod:`~repro.rules.subsumption` -- the clause-implication tests the
  inference processor relies on.
"""

from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleScheme, RuleSet
from repro.rules.rule_relations import (
    decode_rule_relations, encode_rule_relations, RULE_RELATION_NAME,
    ATTRIBUTE_MAP_NAME, VALUE_MAP_NAME, SUPPORT_RELATION_NAME,
)
from repro.rules.minimize import MinimizationResult, minimize_ruleset

__all__ = [
    "AttributeRef",
    "Clause",
    "Interval",
    "Rule",
    "RuleScheme",
    "RuleSet",
    "encode_rule_relations",
    "decode_rule_relations",
    "RULE_RELATION_NAME",
    "ATTRIBUTE_MAP_NAME",
    "VALUE_MAP_NAME",
    "SUPPORT_RELATION_NAME",
    "MinimizationResult",
    "minimize_ruleset",
]
