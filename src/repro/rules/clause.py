"""Intervals, attribute references, and clauses.

A paper clause is the triple ``(lvalue, attribute, uvalue)`` meaning
``lvalue <= attribute <= uvalue`` (both inclusive); equality is the
degenerate case ``lvalue == uvalue``.  Query conditions additionally need
open and half-unbounded intervals (``Displacement > 8000``), so the
:class:`Interval` value type supports those too; induced rules only ever
construct the closed bounded form.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import RuleError


class Interval:
    """An interval over one attribute's (totally ordered) domain.

    ``low``/``high`` of ``None`` mean unbounded on that side.
    ``low_open``/``high_open`` select strict inequality.  The canonical
    "everything" interval is ``Interval(None, None)``.
    """

    __slots__ = ("low", "high", "low_open", "high_open")

    def __init__(self, low: Any = None, high: Any = None,
                 low_open: bool = False, high_open: bool = False):
        if low is not None and high is not None:
            try:
                inverted = low > high
            except TypeError as exc:
                raise RuleError(
                    f"interval bounds {low!r} and {high!r} are not "
                    f"comparable") from exc
            if inverted:
                raise RuleError(f"empty interval [{low!r}, {high!r}]")
            if low == high and (low_open or high_open):
                raise RuleError(
                    f"degenerate open interval at {low!r} is empty")
        self.low = low
        self.high = high
        self.low_open = bool(low_open) and low is not None
        self.high_open = bool(high_open) and high is not None

    # -- constructors -----------------------------------------------------

    @classmethod
    def point(cls, value: Any) -> "Interval":
        """The single-value interval ``[value, value]``."""
        if value is None:
            raise RuleError("point interval needs a value")
        return cls(value, value)

    @classmethod
    def closed(cls, low: Any, high: Any) -> "Interval":
        return cls(low, high)

    @classmethod
    def at_least(cls, low: Any, strict: bool = False) -> "Interval":
        return cls(low=low, low_open=strict)

    @classmethod
    def at_most(cls, high: Any, strict: bool = False) -> "Interval":
        return cls(high=high, high_open=strict)

    @classmethod
    def everything(cls) -> "Interval":
        return cls()

    @classmethod
    def from_comparison(cls, op: str, value: Any) -> "Interval":
        """Interval of values v with ``v <op> value``."""
        if op == "=":
            return cls.point(value)
        if op == "<":
            return cls.at_most(value, strict=True)
        if op == "<=":
            return cls.at_most(value)
        if op == ">":
            return cls.at_least(value, strict=True)
        if op == ">=":
            return cls.at_least(value)
        raise RuleError(f"operator {op!r} does not describe an interval")

    # -- predicates ----------------------------------------------------------

    def is_point(self) -> bool:
        return (self.low is not None and self.low == self.high
                and not self.low_open and not self.high_open)

    def is_unbounded(self) -> bool:
        return self.low is None and self.high is None

    def contains_value(self, value: Any) -> bool:
        if value is None:
            return False
        if self.low is not None:
            if self.low_open and not value > self.low:
                return False
            if not self.low_open and not value >= self.low:
                return False
        if self.high is not None:
            if self.high_open and not value < self.high:
                return False
            if not self.high_open and not value <= self.high:
                return False
        return True

    def contains(self, other: "Interval") -> bool:
        """Whether every value of *other* lies in *self* (subsumption)."""
        if self.low is not None:
            if other.low is None:
                return False
            if other.low < self.low:
                return False
            if other.low == self.low and self.low_open and not other.low_open:
                return False
        if self.high is not None:
            if other.high is None:
                return False
            if other.high > self.high:
                return False
            if (other.high == self.high and self.high_open
                    and not other.high_open):
                return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """Whether the intervals share at least one value.

        Exact for discrete or continuous domains alike: bounds touching
        with either side open do not overlap.
        """
        if self.low is not None and other.high is not None:
            if self.low > other.high:
                return False
            if self.low == other.high and (self.low_open or other.high_open):
                return False
        if self.high is not None and other.low is not None:
            if other.low > self.high:
                return False
            if other.low == self.high and (other.low_open or self.high_open):
                return False
        return True

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        low, low_open = self.low, self.low_open
        if other.low is not None and (
                low is None or other.low > low
                or (other.low == low and other.low_open)):
            low, low_open = other.low, other.low_open
        high, high_open = self.high, self.high_open
        if other.high is not None and (
                high is None or other.high < high
                or (other.high == high and other.high_open)):
            high, high_open = other.high, other.high_open
        return Interval(low, high, low_open=low_open, high_open=high_open)

    # -- protocol -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Interval)
                and self.low == other.low and self.high == other.high
                and self.low_open == other.low_open
                and self.high_open == other.high_open)

    def __hash__(self) -> int:
        return hash((self.low, self.high, self.low_open, self.high_open))

    def render(self, name: str = "X") -> str:
        """Readable rendering, e.g. ``7250 <= X <= 30000`` or ``X = 5``."""
        if self.is_point():
            return f"{name} = {_fmt(self.low)}"
        parts = []
        if self.low is not None:
            parts.append(
                f"{_fmt(self.low)} {'<' if self.low_open else '<='} {name}")
        if self.high is not None:
            if parts:
                parts[0] += f" {'<' if self.high_open else '<='} " + _fmt(
                    self.high)
            else:
                parts.append(
                    f"{name} {'<' if self.high_open else '<='} "
                    f"{_fmt(self.high)}")
        if not parts:
            return f"{name} is anything"
        return parts[0]

    def __repr__(self) -> str:
        lo = "(" if self.low_open else "["
        hi = ")" if self.high_open else "]"
        return f"Interval{lo}{self.low!r}, {self.high!r}{hi}"


def _fmt(value: Any) -> str:
    if isinstance(value, str):
        return value
    return str(value)


class AttributeRef:
    """A relation-qualified attribute name, e.g. ``CLASS.Displacement``.

    Matching is case-insensitive; the declared spelling is preserved.
    """

    __slots__ = ("relation", "attribute")

    def __init__(self, relation: str, attribute: str):
        if not relation or not attribute:
            raise RuleError("attribute reference needs relation and name")
        self.relation = relation
        self.attribute = attribute

    @classmethod
    def parse(cls, text: str) -> "AttributeRef":
        relation, _sep, attribute = text.partition(".")
        if not _sep:
            raise RuleError(
                f"attribute reference {text!r} must be relation.attribute")
        return cls(relation, attribute)

    @property
    def key(self) -> tuple[str, str]:
        return (self.relation.lower(), self.attribute.lower())

    def render(self) -> str:
        return f"{self.relation}.{self.attribute}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeRef) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"AttributeRef({self.render()})"


class Clause:
    """An attribute value-range clause: ``attribute in interval``."""

    __slots__ = ("attribute", "interval")

    def __init__(self, attribute: AttributeRef, interval: Interval):
        self.attribute = attribute
        self.interval = interval

    @classmethod
    def between(cls, attribute: AttributeRef | str, low: Any,
                high: Any) -> "Clause":
        if isinstance(attribute, str):
            attribute = AttributeRef.parse(attribute)
        return cls(attribute, Interval.closed(low, high))

    @classmethod
    def equals(cls, attribute: AttributeRef | str, value: Any) -> "Clause":
        if isinstance(attribute, str):
            attribute = AttributeRef.parse(attribute)
        return cls(attribute, Interval.point(value))

    @property
    def lvalue(self) -> Any:
        """Paper terminology: the inclusive lower limit."""
        return self.interval.low

    @property
    def uvalue(self) -> Any:
        """Paper terminology: the inclusive upper limit."""
        return self.interval.high

    def is_equality(self) -> bool:
        return self.interval.is_point()

    def satisfied_by(self, value: Any) -> bool:
        return self.interval.contains_value(value)

    def implies(self, other: "Clause") -> bool:
        """Whether this clause logically implies *other* (same attribute,
        interval contained)."""
        return (self.attribute == other.attribute
                and other.interval.contains(self.interval))

    def render(self) -> str:
        return self.interval.render(self.attribute.render())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Clause)
                and self.attribute == other.attribute
                and self.interval == other.interval)

    def __hash__(self) -> int:
        return hash((self.attribute, self.interval))

    def __repr__(self) -> str:
        return f"Clause({self.render()})"


def merge_point_clauses(clauses: Iterable[Clause]) -> list[Clause]:
    """Collapse clauses on the same attribute by interval intersection.

    Returns the minimal clause list; raises :class:`RuleError` if two
    clauses on one attribute are contradictory (empty intersection).
    """
    by_attribute: dict[AttributeRef, Interval] = {}
    order: list[AttributeRef] = []
    for clause in clauses:
        if clause.attribute not in by_attribute:
            by_attribute[clause.attribute] = clause.interval
            order.append(clause.attribute)
            continue
        merged = by_attribute[clause.attribute].intersect(clause.interval)
        if merged is None:
            raise RuleError(
                f"contradictory clauses on {clause.attribute.render()}")
        by_attribute[clause.attribute] = merged
    return [Clause(attribute, by_attribute[attribute]) for attribute in order]
