"""Inter-attribute comparison constraints.

Section 3.1's inter-object knowledge example is not an interval rule:
"the relationship VISIT involves entities of SHIP and PORT and satisfies
the constraint that the draft of the ship must be less than the depth of
the port".  That is a *comparison constraint* between two attributes
across a relationship:

    SHIP.Draft < PORT.Depth        (on every VISIT instance)

This module provides the constraint value type and its inference use:
*bound propagation*.  Given an established interval fact on one side,
the constraint transfers a bound to the other side -- a query condition
``PORT.Depth <= 9`` plus the constraint yields ``SHIP.Draft < 9`` for
every answer, which interval rules can then chain on.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, NamedTuple

from repro.errors import RuleError
from repro.rules.clause import AttributeRef, Clause, Interval

_STRICT = {"<": True, "<=": False}


class ComparisonConstraint:
    """``left <op> right`` holding on every relationship instance.

    Only the order operators are supported (``<``, ``<=``); an equality
    constraint between attributes is an attribute equivalence and
    belongs in the canonicalizer instead.
    """

    __slots__ = ("left", "op", "right", "support", "source")

    def __init__(self, left: AttributeRef, op: str, right: AttributeRef,
                 support: int = 0, source: str = "induced"):
        if op not in ("<", "<="):
            raise RuleError(
                f"comparison constraints use < or <=, not {op!r}")
        self.left = left
        self.op = op
        self.right = right
        self.support = support
        self.source = source

    def holds_for(self, record: Mapping[AttributeRef, Any]) -> bool:
        """Whether a joined record satisfies the constraint (NULLs on
        either side satisfy vacuously)."""
        left = record.get(self.left)
        right = record.get(self.right)
        if left is None or right is None:
            return True
        return left < right if self.op == "<" else left <= right

    # -- bound propagation -------------------------------------------------

    def bound_for_left(self, right_fact: Interval) -> Interval | None:
        """Upper bound induced on ``left`` by a fact on ``right``.

        From ``left < right`` and ``right <= u``: ``left < u``.
        """
        if right_fact.high is None:
            return None
        strict = _STRICT[self.op] or right_fact.high_open
        return Interval.at_most(right_fact.high, strict=strict)

    def bound_for_right(self, left_fact: Interval) -> Interval | None:
        """Lower bound induced on ``right`` by a fact on ``left``.

        From ``left < right`` and ``left >= l``: ``right > l``.
        """
        if left_fact.low is None:
            return None
        strict = _STRICT[self.op] or left_fact.low_open
        return Interval.at_least(left_fact.low, strict=strict)

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ComparisonConstraint)
                and self.left == other.left and self.op == other.op
                and self.right == other.right)

    def __hash__(self) -> int:
        return hash((self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"<ComparisonConstraint {self.render()}>"


class PropagationStep(NamedTuple):
    """One bound transferred through a constraint."""

    constraint: ComparisonConstraint
    clause: Clause          #: the bound asserted
    narrowed: bool


def propagate_bounds(facts, constraints: Iterable[ComparisonConstraint],
                     max_rounds: int = 10) -> list[PropagationStep]:
    """Transfer bounds through *constraints* until fixpoint.

    *facts* is a :class:`repro.inference.facts.FactBase`; asserted
    bounds intersect with existing facts exactly like rule consequences.
    """
    steps: list[PropagationStep] = []
    for _round in range(max_rounds):
        progressed = False
        for constraint in constraints:
            right_fact = facts.interval_for(constraint.right)
            if right_fact is not None:
                bound = constraint.bound_for_left(right_fact)
                if bound is not None:
                    existing = facts.interval_for(constraint.left)
                    if existing is None or not bound.contains(existing):
                        narrowed = facts.assert_interval(
                            constraint.left, bound, constraint)
                        if narrowed:
                            steps.append(PropagationStep(
                                constraint,
                                Clause(constraint.left, bound), True))
                            progressed = True
            left_fact = facts.interval_for(constraint.left)
            if left_fact is not None:
                bound = constraint.bound_for_right(left_fact)
                if bound is not None:
                    existing = facts.interval_for(constraint.right)
                    if existing is None or not bound.contains(existing):
                        narrowed = facts.assert_interval(
                            constraint.right, bound, constraint)
                        if narrowed:
                            steps.append(PropagationStep(
                                constraint,
                                Clause(constraint.right, bound), True))
                            progressed = True
        if not progressed:
            break
    return steps
