"""Rule-set minimization.

Step 4 of the induction algorithm prunes by support; an orthogonal way
to shrink the knowledge base (hinted at by the paper's concern for "the
overhead of storing and searching these rules") is to drop rules that
are *logically redundant*: a rule is redundant when another kept rule
fires whenever it does and concludes at least as much
(:func:`repro.rules.subsumption.rule_subsumed_by`).

Minimization never changes the set of forward-derivable facts -- any
condition subsumed by a dropped rule's premise is also subsumed by its
subsumer's premise.  It *can* remove backward descriptions (the dropped
premise no longer appears as a subset description); callers who need
every description keep the full set.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.rules.subsumption import rule_subsumed_by


class MinimizationResult(NamedTuple):
    """Outcome of :func:`minimize_ruleset`."""

    minimized: RuleSet
    dropped: list[tuple[Rule, Rule]]   #: (redundant rule, its subsumer)

    @property
    def kept(self) -> int:
        return len(self.minimized)

    def render(self) -> str:
        lines = [f"kept {self.kept}, dropped {len(self.dropped)}"]
        for redundant, subsumer in self.dropped:
            lines.append(
                f"  dropped {redundant.render()}  (subsumed by "
                f"{subsumer.render()})")
        return "\n".join(lines)


def minimize_ruleset(ruleset: RuleSet) -> MinimizationResult:
    """Drop every rule subsumed by another kept rule.

    Preference among mutually redundant rules: higher support wins, then
    earlier rule number (stable).  Equal rules (identical premise and
    consequence) collapse to one.
    """
    rules = list(ruleset)
    # Order candidates: high support first so subsumers are considered
    # as keepers before the rules they subsume.
    order = sorted(rules, key=lambda rule: (-rule.support,
                                            rule.number or 0))
    kept: list[Rule] = []
    dropped: list[tuple[Rule, Rule]] = []
    for rule in order:
        subsumer = next(
            (keeper for keeper in kept
             if keeper is not rule and rule_subsumed_by(keeper, rule)),
            None)
        if subsumer is not None:
            dropped.append((rule, subsumer))
        else:
            kept.append(rule)
    # Restore original ordering among the keepers for stable numbering.
    kept_ids = {id(rule) for rule in kept}
    minimized = RuleSet(
        Rule(rule.lhs, rule.rhs, support=rule.support,
             rhs_subtype=rule.rhs_subtype, source=rule.source)
        for rule in rules if id(rule) in kept_ids)
    basis = getattr(rules, "basis", None)  # plain iterables carry none
    minimized.basis = None if basis is None else dict(basis)
    return MinimizationResult(minimized, dropped)
