"""Horn rules over interval clauses.

A rule reads ``if C_L1 and ... and C_Ln then C_R``.  The right-hand side
is a single clause (the paper restricts itself to Horn clauses).  Rules
carry their *support*: the number of database instances that satisfied
the rule when it was induced; pruning and Example 2's discussion of
``R_new`` both reason about support.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import RuleError
from repro.rules.clause import AttributeRef, Clause


class Rule:
    """One induced (or declared) Horn rule.

    Parameters
    ----------
    lhs:
        Premise clauses (conjunctive); at least one.
    rhs:
        Consequence clause.
    number:
        Rule number within its rule set (assigned by the set).
    support:
        Number of training instances satisfying premise and consequence.
    rhs_subtype:
        When the consequence classifies tuples into a named subtype
        (e.g. ``Type = "SSBN"`` realizes ``x isa SSBN``), the subtype
        name, used by the KER renderer ("then x isa SSBN").
    source:
        Free-form provenance tag ("induced", "schema", ...).
    """

    __slots__ = ("lhs", "rhs", "number", "support", "rhs_subtype", "source")

    def __init__(self, lhs: Sequence[Clause], rhs: Clause,
                 number: int | None = None, support: int = 0,
                 rhs_subtype: str | None = None, source: str = "induced"):
        if not lhs:
            raise RuleError("a rule needs at least one premise clause")
        self.lhs = tuple(lhs)
        self.rhs = rhs
        self.number = number
        self.support = support
        self.rhs_subtype = rhs_subtype
        self.source = source

    # -- structure ---------------------------------------------------------

    def lhs_attributes(self) -> list[AttributeRef]:
        return [clause.attribute for clause in self.lhs]

    def scheme_key(self) -> tuple[tuple[tuple[str, str], ...],
                                  tuple[str, str]]:
        """Grouping key for the rule scheme ``X --> Y``."""
        lhs = tuple(sorted(c.attribute.key for c in self.lhs))
        return (lhs, self.rhs.attribute.key)

    def is_single_premise(self) -> bool:
        return len(self.lhs) == 1

    # -- evaluation -----------------------------------------------------------

    def premise_satisfied_by(self, values: Mapping[AttributeRef, Any]) -> bool:
        """Whether a record (attribute -> value) satisfies every premise.

        Attributes missing from *values* fail the premise (closed check).
        """
        for clause in self.lhs:
            if clause.attribute not in values:
                return False
            if not clause.satisfied_by(values[clause.attribute]):
                return False
        return True

    def satisfied_by(self, values: Mapping[AttributeRef, Any]) -> bool:
        """Premise and consequence both satisfied."""
        if not self.premise_satisfied_by(values):
            return False
        return (self.rhs.attribute in values
                and self.rhs.satisfied_by(values[self.rhs.attribute]))

    def sound_on(self, records: Iterable[Mapping[AttributeRef, Any]]) -> bool:
        """Whether no record satisfies the premise but violates the
        consequence (the soundness invariant of induced rules).

        A NULL consequence value is *unknown*, not a counterexample --
        the same reading INGRES gives NULLs, and the reason the
        induction algorithm's step 2 never treats a NULL Y as an
        inconsistent pairing.
        """
        for record in records:
            if not self.premise_satisfied_by(record):
                continue
            value = record.get(self.rhs.attribute)
            if value is not None and not self.rhs.satisfied_by(value):
                return False
        return True

    # -- rendering -----------------------------------------------------------

    def render(self, isa_style: bool = False) -> str:
        """Paper-style rendering.

        With ``isa_style`` and a known ``rhs_subtype``, the consequence is
        shown as ``x isa <subtype>`` the way Section 6 prints R1..R17.
        """
        premise = " and ".join(clause.render() for clause in self.lhs)
        if isa_style and self.rhs_subtype:
            consequence = f"x isa {self.rhs_subtype}"
        else:
            consequence = self.rhs.render()
        prefix = f"R{self.number}: " if self.number is not None else ""
        return f"{prefix}if {premise} then {consequence}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rule)
                and self.lhs == other.lhs and self.rhs == other.rhs)

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"<Rule {self.render()} (support={self.support})>"
