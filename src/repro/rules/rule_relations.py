"""Rule relations: storing induced knowledge *in* the database.

Section 5.2.2: "rules are represented in relations referred to as rule
relations.  A database and its associated rule relations can be relocated
together."  Each rule becomes one ``R`` row and one or more ``L`` rows of

    R' = (RuleNo, Role, Lvalue, AttributeNo, Uvalue)

with attribute names and clause bound values encoded as numbers through a
value-mapping relation (the paper used an INGRES system table for the
attribute mapping; we keep our own attribute relation, since the engine
is ours).

Two pragmatic extensions over the paper's five columns, both unused by
induced rules and both documented here so a reader can project them away:

* ``LOpen``/``UOpen`` flags (0/1) let declared (non-induced) rules with
  strict bounds round-trip; induced rules always store 0.
* a companion meta relation carries each rule's support count and
  subtype tag, which Example 2's discussion of ``R_new`` needs.

Public API::

    bundle = encode_rule_relations(ruleset)      # four Relations
    bundle.register_into(db)                     # relocate with the data
    ruleset2 = decode_rule_relations(bundle)     # identical rule set
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import RuleError
from repro.relational.datatypes import INTEGER, REAL, char
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

RULE_RELATION_NAME = "RULE_CLAUSES"
ATTRIBUTE_MAP_NAME = "RULE_ATTRIBUTES"
VALUE_MAP_NAME = "RULE_VALUES"
SUPPORT_RELATION_NAME = "RULE_META"
#: Companion relation the ILS writes in the same transaction as the
#: bundle: one row describing the induction run (classifying attribute,
#: noise threshold N_c, rule count) so run metadata is never newer or
#: older than the rules it describes.
INDUCTION_META_NAME = "RULE_INDUCTION"

_TYPE_TAGS = {"integer", "real", "string", "date"}


class RuleRelationBundle:
    """The four relations a knowledge base serializes to."""

    def __init__(self, clauses: Relation, attributes: Relation,
                 values: Relation, meta: Relation):
        self.clauses = clauses
        self.attributes = attributes
        self.values = values
        self.meta = meta

    def relations(self) -> list[Relation]:
        return [self.clauses, self.attributes, self.values, self.meta]

    def register_into(self, database: Database,
                      replace: bool = True) -> None:
        """Attach the rule relations to *database* (relocation step)."""
        for relation in self.relations():
            database.catalog.register(relation, replace=replace)

    @classmethod
    def from_database(cls, database: Database) -> "RuleRelationBundle":
        """Pick the rule relations back out of a relocated database."""
        return cls(database.relation(RULE_RELATION_NAME),
                   database.relation(ATTRIBUTE_MAP_NAME),
                   database.relation(VALUE_MAP_NAME),
                   database.relation(SUPPORT_RELATION_NAME))

    def paper_projection(self) -> Relation:
        """The strict paper-shape R' = (RuleNo, Role, Lvalue, Att_no,
        Uvalue) view of the clause relation."""
        from repro.relational import algebra
        return algebra.project(
            self.clauses, ["RuleNo", "Role", "Lvalue", "Att_no", "Uvalue"])

    def total_rows(self) -> int:
        return sum(len(relation) for relation in self.relations())


def _type_tag(value: Any) -> str:
    if isinstance(value, bool):
        raise RuleError("boolean clause values are not supported")
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "real"
    if isinstance(value, datetime.date):
        return "date"
    if isinstance(value, str):
        return "string"
    raise RuleError(f"cannot encode clause value {value!r}")


def _value_to_text(value: Any) -> str:
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def _text_to_value(text: str, tag: str) -> Any:
    if tag == "integer":
        return int(text)
    if tag == "real":
        return float(text)
    if tag == "date":
        return datetime.date.fromisoformat(text)
    if tag == "string":
        return text
    raise RuleError(f"unknown value type tag {tag!r}")


class _Encoder:
    """Assigns attribute numbers and per-attribute value codes."""

    def __init__(self) -> None:
        self.attribute_numbers: dict[AttributeRef, int] = {}
        self.attribute_order: list[AttributeRef] = []
        self.attribute_types: dict[int, str] = {}
        self.value_codes: dict[tuple[int, Any], float] = {}
        self.values_per_attribute: dict[int, list[Any]] = {}

    def attribute_number(self, attribute: AttributeRef) -> int:
        if attribute not in self.attribute_numbers:
            number = len(self.attribute_order)
            self.attribute_numbers[attribute] = number
            self.attribute_order.append(attribute)
            self.values_per_attribute[number] = []
        return self.attribute_numbers[attribute]

    def note_value(self, attribute: AttributeRef, value: Any) -> None:
        number = self.attribute_number(attribute)
        tag = _type_tag(value)
        existing = self.attribute_types.setdefault(number, tag)
        if existing != tag:
            raise RuleError(
                f"attribute {attribute.render()} mixes clause value types "
                f"{existing} and {tag}")
        if (number, value) not in self.value_codes:
            self.values_per_attribute[number].append(value)
            self.value_codes[(number, value)] = 0.0  # placeholder

    def freeze(self) -> None:
        """Assign codes 1.0..N in sorted value order per attribute (the
        paper's encoding is order-preserving so range clauses stay
        meaningful as numbers)."""
        for number, values in self.values_per_attribute.items():
            for code, value in enumerate(sorted(set(values)), start=1):
                self.value_codes[(number, value)] = float(code)

    def code(self, attribute: AttributeRef, value: Any) -> float:
        return self.value_codes[(self.attribute_numbers[attribute], value)]


def encode_rule_relations(ruleset: RuleSet) -> RuleRelationBundle:
    """Encode *ruleset* into the four rule relations."""
    encoder = _Encoder()
    for rule in ruleset:
        for clause in list(rule.lhs) + [rule.rhs]:
            encoder.attribute_number(clause.attribute)
            for bound in (clause.interval.low, clause.interval.high):
                if bound is not None:
                    encoder.note_value(clause.attribute, bound)
    encoder.freeze()

    clause_rows: list[tuple] = []
    meta_rows: list[tuple] = []
    for rule in ruleset:
        number = rule.number if rule.number is not None else 0
        for role, clause in [("L", c) for c in rule.lhs] + [("R", rule.rhs)]:
            att_no = encoder.attribute_number(clause.attribute)
            low = clause.interval.low
            high = clause.interval.high
            clause_rows.append((
                number, role,
                None if low is None else encoder.code(clause.attribute, low),
                att_no,
                None if high is None else encoder.code(clause.attribute,
                                                       high),
                1 if clause.interval.low_open else 0,
                1 if clause.interval.high_open else 0,
            ))
        meta_rows.append((number, rule.support, rule.rhs_subtype,
                          rule.source))

    attribute_rows = []
    for attribute in encoder.attribute_order:
        number = encoder.attribute_numbers[attribute]
        attribute_rows.append((
            number, attribute.relation, attribute.attribute,
            encoder.attribute_types.get(number, "string")))

    value_rows = []
    for number, values in encoder.values_per_attribute.items():
        for value in sorted(set(values)):
            value_rows.append((number, encoder.value_codes[(number, value)],
                               _value_to_text(value)))

    clauses = Relation(
        RelationSchema(RULE_RELATION_NAME, [
            Column("RuleNo", INTEGER), Column("Role", char(1)),
            Column("Lvalue", REAL), Column("Att_no", INTEGER),
            Column("Uvalue", REAL), Column("LOpen", INTEGER),
            Column("UOpen", INTEGER),
        ]), clause_rows)
    attributes = Relation(
        RelationSchema(ATTRIBUTE_MAP_NAME, [
            Column("Att_no", INTEGER), Column("RelName", char(32)),
            Column("AttName", char(32)), Column("ValueType", char(8)),
        ], key=["Att_no"]), attribute_rows)
    values = Relation(
        RelationSchema(VALUE_MAP_NAME, [
            Column("Att_no", INTEGER), Column("Value", REAL),
            Column("RealValue", char(64)),
        ]), value_rows)
    meta = Relation(
        RelationSchema(SUPPORT_RELATION_NAME, [
            Column("RuleNo", INTEGER), Column("Support", INTEGER),
            Column("Subtype", char(32)), Column("Source", char(16)),
        ], key=["RuleNo"]), meta_rows)
    return RuleRelationBundle(clauses, attributes, values, meta)


def decode_rule_relations(bundle: RuleRelationBundle) -> RuleSet:
    """Rebuild the rule set from its relational encoding."""
    attributes: dict[int, AttributeRef] = {}
    types: dict[int, str] = {}
    for row in bundle.attributes:
        att_no = bundle.attributes.value(row, "Att_no")
        attributes[att_no] = AttributeRef(
            bundle.attributes.value(row, "RelName"),
            bundle.attributes.value(row, "AttName"))
        types[att_no] = bundle.attributes.value(row, "ValueType")

    decode: dict[tuple[int, float], Any] = {}
    for row in bundle.values:
        att_no = bundle.values.value(row, "Att_no")
        code = bundle.values.value(row, "Value")
        decode[(att_no, code)] = _text_to_value(
            bundle.values.value(row, "RealValue"), types[att_no])

    meta: dict[int, tuple[int, str | None, str]] = {}
    for row in bundle.meta:
        meta[bundle.meta.value(row, "RuleNo")] = (
            bundle.meta.value(row, "Support"),
            bundle.meta.value(row, "Subtype"),
            bundle.meta.value(row, "Source"))

    grouped: dict[int, dict[str, list]] = {}
    order: list[int] = []
    for row in bundle.clauses:
        number = bundle.clauses.value(row, "RuleNo")
        if number not in grouped:
            grouped[number] = {"L": [], "R": []}
            order.append(number)
        att_no = bundle.clauses.value(row, "Att_no")
        if att_no not in attributes:
            raise RuleError(f"clause references unknown attribute #{att_no}")
        low_code = bundle.clauses.value(row, "Lvalue")
        high_code = bundle.clauses.value(row, "Uvalue")
        interval = Interval(
            None if low_code is None else decode[(att_no, low_code)],
            None if high_code is None else decode[(att_no, high_code)],
            low_open=bool(bundle.clauses.value(row, "LOpen")),
            high_open=bool(bundle.clauses.value(row, "UOpen")))
        clause = Clause(attributes[att_no], interval)
        role = bundle.clauses.value(row, "Role")
        if role not in ("L", "R"):
            raise RuleError(f"bad clause role {role!r}")
        grouped[number][role].append(clause)

    ruleset = RuleSet()
    for number in sorted(order):
        parts = grouped[number]
        if len(parts["R"]) != 1:
            raise RuleError(
                f"rule {number} must have exactly one consequence clause")
        support, subtype, source = meta.get(number, (0, None, "induced"))
        ruleset.add(Rule(parts["L"], parts["R"][0], support=support,
                         rhs_subtype=subtype, source=source or "induced"))
    return ruleset
