"""Rule sets and rule schemes.

"The rules generated for the same attribute pair (X, Y) consist of the
rule set designated by the rule scheme X --> Y" (Section 5.2.1).  A
:class:`RuleSet` is the whole knowledge base's rule collection; a
:class:`RuleScheme` is one ``X --> Y`` group within it.  The set keeps
lookup indexes by premise and consequence attribute, which the inference
processor uses for forward and backward chaining respectively.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.rules.clause import AttributeRef
from repro.rules.rule import Rule

#: Process-wide monotonic source for :attr:`RuleSet.version`.  Every
#: construction and every mutation of *any* rule set draws a fresh
#: number, so two rule sets never share a version and a changed rule
#: base can never be mistaken for the one a cache entry was keyed on.
_VERSIONS = itertools.count(1)


class RuleScheme:
    """The rules sharing one premise/consequence attribute signature."""

    def __init__(self, lhs_attributes: Sequence[AttributeRef],
                 rhs_attribute: AttributeRef, rules: Sequence[Rule]):
        self.lhs_attributes = tuple(lhs_attributes)
        self.rhs_attribute = rhs_attribute
        self.rules = tuple(rules)

    def render(self) -> str:
        lhs = ", ".join(a.render() for a in self.lhs_attributes)
        return f"{lhs} --> {self.rhs_attribute.render()}"

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __repr__(self) -> str:
        return f"<RuleScheme {self.render()}, {len(self.rules)} rules>"


class RuleSet:
    """An ordered collection of rules with attribute indexes.

    Rule numbers are assigned on insertion (1-based, stable), matching
    the paper's R1..R17 numbering style.
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: list[Rule] = []
        self._by_lhs: dict[tuple[str, str], list[Rule]] = {}
        self._by_rhs: dict[tuple[str, str], list[Rule]] = {}
        #: Rule-base version: a process-unique integer reassigned on
        #: every :meth:`add`.  The query cache keys plan entries and
        #: intensional answers on it, so swapping in a re-induced rule
        #: set (or mutating this one) invalidates them all at once.
        self.version = next(_VERSIONS)
        #: Induction basis: relation name (lower) -> mutation version at
        #: the moment the rules were induced, or ``None`` when unknown.
        #: An induced rule is a fact about one specific database state;
        #: :meth:`fresh_for` lets consumers that *rewrite queries* with
        #: the rules (the planner's semantic optimizer) verify the state
        #: has not moved underneath them.  ``None`` preserves the legacy
        #: trust-the-caller behaviour (recovered rule bases are guarded
        #: by the storage engine's ``rule_sync`` staleness flag instead).
        self.basis: dict[str, int] | None = None
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> Rule:
        rule.number = len(self._rules) + 1
        self._rules.append(rule)
        for clause in rule.lhs:
            self._by_lhs.setdefault(clause.attribute.key, []).append(rule)
        self._by_rhs.setdefault(rule.rhs.attribute.key, []).append(rule)
        self.version = next(_VERSIONS)
        return rule

    def extend(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.add(rule)

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, number: int) -> Rule:
        """Rule by its 1-based rule number."""
        if not 1 <= number <= len(self._rules):
            raise IndexError(f"no rule numbered {number}")
        return self._rules[number - 1]

    def rules_with_premise_on(self, attribute: AttributeRef) -> list[Rule]:
        """Rules having a premise clause on *attribute* (forward index)."""
        return list(self._by_lhs.get(attribute.key, ()))

    def rules_concluding_on(self, attribute: AttributeRef) -> list[Rule]:
        """Rules whose consequence is on *attribute* (backward index)."""
        return list(self._by_rhs.get(attribute.key, ()))

    def premise_attributes(self) -> list[AttributeRef]:
        seen: dict[tuple[str, str], AttributeRef] = {}
        for rule in self._rules:
            for clause in rule.lhs:
                seen.setdefault(clause.attribute.key, clause.attribute)
        return list(seen.values())

    def schemes(self) -> list[RuleScheme]:
        """Group rules into their ``X --> Y`` rule schemes (stable order)."""
        groups: dict[tuple, list[Rule]] = {}
        order: list[tuple] = []
        for rule in self._rules:
            key = rule.scheme_key()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(rule)
        out = []
        for key in order:
            rules = groups[key]
            out.append(RuleScheme(
                [clause.attribute for clause in rules[0].lhs],
                rules[0].rhs.attribute, rules))
        return out

    # -- induction basis -----------------------------------------------------

    def record_basis(self, database) -> None:
        """Stamp the rule set with the mutation version of every
        relation in *database*: the state these rules were induced from.
        Call right after induction, before any DML can interleave."""
        self.basis = {name.lower(): database.relation(name).version
                      for name in database.catalog.names()}

    def references(self, relation_name: str) -> bool:
        """Whether any rule mentions *relation_name* (premise or
        conclusion)."""
        key = relation_name.lower()
        return any(attr_key[0] == key for attr_key in self._by_lhs) or any(
            attr_key[0] == key for attr_key in self._by_rhs)

    def fresh_for(self, relation) -> bool:
        """Whether query rewrites against *relation* are still sound.

        True when no basis was recorded (trusted caller), when the
        relation's mutation version still matches the basis, or when no
        rule mentions the relation (nothing could rewrite it anyway).
        """
        if self.basis is None:
            return True
        if self.basis.get(relation.name.lower()) == relation.version:
            return True
        return not self.references(relation.name)

    # -- transformation -----------------------------------------------------

    def filtered(self, keep) -> "RuleSet":
        """New rule set with only the rules satisfying *keep* (renumbered)."""
        out = RuleSet(
            Rule(rule.lhs, rule.rhs, support=rule.support,
                 rhs_subtype=rule.rhs_subtype, source=rule.source)
            for rule in self._rules if keep(rule))
        out.basis = None if self.basis is None else dict(self.basis)
        return out

    def merged_with(self, other: "RuleSet") -> "RuleSet":
        merged = RuleSet()
        for rule in list(self) + list(other):
            merged.add(Rule(rule.lhs, rule.rhs, support=rule.support,
                            rhs_subtype=rule.rhs_subtype, source=rule.source))
        # Declarative (schema) rule sets carry no basis; an induced
        # basis survives the merge so freshness checks keep working.
        bases = [b for b in (self.basis, other.basis) if b is not None]
        if bases:
            combined: dict[str, int] = {}
            for basis in bases:
                combined.update(basis)
            merged.basis = combined
        return merged

    def render(self, isa_style: bool = False) -> str:
        return "\n".join(rule.render(isa_style=isa_style)
                         for rule in self._rules)

    def __repr__(self) -> str:
        return f"<RuleSet {len(self._rules)} rules>"
