"""Clause- and rule-level implication tests (the logic behind type
inference).

Forward inference (Section 4) fires a rule when the *query condition* on
an attribute is subsumed by the rule premise on that attribute -- e.g.
``Displacement > 8000`` is subsumed by ``7250 <= Displacement <= 30000``
once the attribute's declared domain bound (30000) is taken into account.
These helpers implement that check, optionally widening rule premises to
the attribute's domain interval.
"""

from __future__ import annotations

from typing import Mapping

from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule


def interval_subsumes(premise: Interval, condition: Interval,
                      domain: Interval | None = None) -> bool:
    """Does *premise* contain *condition* (given an optional domain)?

    When *domain* is supplied, the effective condition is the
    intersection of *condition* with the domain interval -- this is how
    the paper concludes that
    ``Displacement > 8000`` implies membership in ``[7250, 30000]`` when
    the schema declares ``Displacement in [2000..30000]``.
    """
    effective_condition = condition
    if domain is not None:
        narrowed = condition.intersect(domain)
        if narrowed is None:
            # The condition excludes every legal value; vacuously subsumed.
            return True
        effective_condition = narrowed
    return premise.contains(effective_condition)


def clause_subsumes(premise: Clause, condition: Clause,
                    domains: Mapping[AttributeRef, Interval] | None = None
                    ) -> bool:
    """Clause-level subsumption: same attribute and interval containment."""
    if premise.attribute != condition.attribute:
        return False
    domain = None
    if domains is not None:
        domain = domains.get(premise.attribute)
    return interval_subsumes(premise.interval, condition.interval, domain)


def rule_fires_forward(rule: Rule,
                       conditions: Mapping[AttributeRef, Interval],
                       domains: Mapping[AttributeRef, Interval] | None = None
                       ) -> bool:
    """Whether *rule*'s whole premise is implied by the query conditions.

    Every premise clause must be subsumed: for attributes the query
    constrains, the constraint interval must lie inside the premise
    interval; premise clauses on unconstrained attributes block firing
    (nothing guarantees them).
    """
    for clause in rule.lhs:
        condition = conditions.get(clause.attribute)
        if condition is None:
            return False
        domain = domains.get(clause.attribute) if domains else None
        if not interval_subsumes(clause.interval, condition, domain):
            return False
    return True


def rule_matches_backward(rule: Rule, attribute: AttributeRef,
                          fact: Interval) -> bool:
    """Whether *rule* concludes on *attribute* with a consequence interval
    lying inside the established *fact* interval.

    When it does, the rule's premise describes a subset of the answers
    ("Ship Classes in the range 0101 to 0103 are SSBN"): any tuple
    satisfying the premise is guaranteed to satisfy the fact.
    """
    if rule.rhs.attribute != attribute:
        return False
    return fact.contains(rule.rhs.interval)


def rule_subsumed_by(general: Rule, specific: Rule) -> bool:
    """Whether *specific* is redundant given *general*: same consequence
    implied, and every *specific* premise implies a *general* premise.

    Used by rule-set minimization: if the general rule fires whenever the
    specific one does and concludes at least as much, the specific rule
    adds nothing.
    """
    if not general.rhs.implies(specific.rhs):
        return False
    for general_clause in general.lhs:
        matching = [c for c in specific.lhs
                    if c.attribute == general_clause.attribute]
        if not matching:
            return False
        if not any(c.implies(general_clause) for c in matching):
            return False
    return True
