"""The multi-client intensional query server.

Four layers (see ``docs/SERVER.md``):

* :mod:`repro.server.protocol` -- the length-prefixed JSON wire format
  carrying SQL, ``ask()``, EXPLAIN, transaction control and shell-style
  admin commands, with structured error frames mapped from
  :mod:`repro.errors`;
* :mod:`repro.server.concurrency` -- the shared/exclusive relation-level
  lock table with wait-timeout deadlock avoidance that isolates
  sessions' transactions from one another;
* :mod:`repro.server.server` -- the thread-per-connection server with
  per-connection :class:`~repro.server.server.Session` objects,
  connection limits, idle timeouts and graceful drain-on-shutdown;
* :mod:`repro.server.client` -- the blocking client the ``repro-client``
  CLI and the shell's ``\\connect`` command drive;
* :mod:`repro.server.resilience` -- deadlines, retry policies, circuit
  breaker, idempotency tokens, admission control and the dedup table;
* :mod:`repro.server.chaosproxy` -- seeded wire-fault injection for the
  chaos differential harness.
"""

from repro.server.chaosproxy import ChaosSchedule, ChaosSocket
from repro.server.client import AskReply, Client, connect
from repro.server.concurrency import LockManager, LockTable
from repro.server.protocol import (
    MAX_FRAME_BYTES, ProtocolError, decode_frame, encode_frame,
    error_frame, read_frame, write_frame,
)
from repro.server.resilience import (
    AdmissionController, CircuitBreaker, Deadline, DedupTable,
    RetryPolicy, TokenSource,
)
from repro.server.server import IntensionalQueryServer, Session

__all__ = [
    "AdmissionController",
    "AskReply",
    "ChaosSchedule",
    "ChaosSocket",
    "CircuitBreaker",
    "Client",
    "Deadline",
    "DedupTable",
    "IntensionalQueryServer",
    "LockManager",
    "LockTable",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RetryPolicy",
    "Session",
    "TokenSource",
    "connect",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "read_frame",
    "write_frame",
]
