"""``repro-server`` / ``python -m repro.server``: boot the system the
same way the interactive CLI does (ship test bed by default, durable
when ``--data-dir`` is given) and serve it over the wire."""

from __future__ import annotations

import argparse
import signal
import sys

from repro.cli import build_system
from repro.server.server import IntensionalQueryServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Multi-client intensional query server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--db", help="database dump to bootstrap from")
    parser.add_argument("--ker", help="KER DDL file for --db")
    parser.add_argument("--nc", type=float, default=3,
                        help="induction support threshold N_c")
    parser.add_argument("--data-dir", help="durable storage directory "
                        "(WAL + snapshots); recovered from if non-empty")
    parser.add_argument("--fsync", default="commit",
                        choices=["always", "commit", "never"])
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--idle-timeout", type=float, default=300.0,
                        metavar="SECONDS")
    parser.add_argument("--lock-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="lock wait budget before a request is "
                             "declared the deadlock victim")
    parser.add_argument("--statement-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="per-statement execution budget; runaway "
                             "streaming plans are cancelled past it "
                             "(0 disables)")
    parser.add_argument("--max-in-flight", type=int, default=8,
                        help="admission control: statements executing "
                             "concurrently before new work queues")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="admission control: queued statements "
                             "before further work is shed with "
                             "RETRY_LATER")
    arguments = parser.parse_args(argv)
    system = build_system(arguments.db, arguments.ker, n_c=arguments.nc,
                          data_dir=arguments.data_dir,
                          fsync=arguments.fsync, out=sys.stdout)
    server = IntensionalQueryServer(
        system, host=arguments.host, port=arguments.port,
        max_connections=arguments.max_connections,
        idle_timeout_s=arguments.idle_timeout,
        lock_timeout_s=arguments.lock_timeout,
        statement_timeout_s=(arguments.statement_timeout or None),
        max_in_flight=arguments.max_in_flight,
        max_queue=arguments.max_queue)
    server.start()
    print(f"repro server listening on {server.address} "
          f"(max {server.max_connections} connections)", flush=True)

    def _stop(_signum, _frame):
        server.shutdown()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
    print("server stopped", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
