"""Deterministic network fault injection for the wire protocol.

The storage layer proved crash-safety with an injectable
:class:`~repro.storage.faults.FaultInjector` over its file operations;
this module is the same idea one layer up: every socket the client
uses can be wrapped in a :class:`ChaosSocket` that applies a **seeded
fault schedule** to whole protocol frames --

* ``drop``     -- the request frame is never delivered; the connection
  is reset before the server sees anything;
* ``truncate`` -- a prefix of the frame's bytes is delivered, then the
  connection dies (the server observes a torn frame mid-read);
* ``corrupt``  -- the frame arrives with its final body byte replaced
  by an invalid UTF-8 byte, so the server's decoder must reject it
  (corruption never silently becomes a *different valid* request);
* ``drop_reply`` -- the request is delivered and **fully processed**;
  the response frame is read off the wire and discarded, then the
  connection is reset.  This is the ambiguous-ack case idempotency
  tokens exist for: the client cannot know whether its DML committed;
* ``delay``    -- a deterministic pause before the frame is sent;
* ``reset``    -- the connection is reset instead of sending.

Faults are decided per *request frame* by :class:`ChaosSchedule` from a
seeded generator (or an explicit scripted list), so a given
``(seed, rates)`` pair replays the identical fault sequence every run --
the property the differential chaos leg and ddmin minimization depend
on.  ``drop_reply`` deliberately *reads* the full response before
resetting, which both guarantees the server finished the request and
keeps the schedule deterministic at the application level.
"""

from __future__ import annotations

import random
import socket
import struct
import time
from typing import Sequence

__all__ = ["ChaosSchedule", "ChaosSocket", "FAULT_KINDS"]

#: Every fault kind a schedule may emit; ``None`` means "deliver".
FAULT_KINDS = ("drop", "truncate", "corrupt", "drop_reply", "delay",
               "reset")

_HEADER = struct.Struct(">I")


class ChaosSchedule:
    """The seeded per-frame fault plan shared across reconnects.

    Either give *rates* (kind -> probability, drawn independently in
    :data:`FAULT_KINDS` order from one seeded generator) or *script*
    (an explicit ``{frame_index: kind}`` map for unit tests).  The
    frame counter spans the whole client lifetime, not one connection,
    so a retry after a fault sees the *next* scheduled decision rather
    than replaying the first one forever.
    """

    def __init__(self, seed: int = 0,
                 rates: dict[str, float] | None = None,
                 script: dict[int, str] | None = None,
                 delay_s: float = 0.002,
                 max_faults: int | None = None):
        for kind in (rates or {}):
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        for kind in (script or {}).values():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.seed = seed
        self.rates = dict(rates or {})
        self.script = dict(script or {})
        self.delay_s = delay_s
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self.frames_sent = 0
        self.injected: list[tuple[int, str]] = []

    @classmethod
    def dropping(cls, seed: int, rate: float,
                 **kwargs) -> "ChaosSchedule":
        """The bench/CI shape: *rate* of request frames lose their
        reply after full server-side processing -- the harshest case
        for exactly-once accounting."""
        return cls(seed, rates={"drop_reply": rate}, **kwargs)

    def decide(self) -> str | None:
        """The fault (or ``None``) for the next request frame."""
        index = self.frames_sent
        self.frames_sent += 1
        if (self.max_faults is not None
                and len(self.injected) >= self.max_faults):
            return None
        kind = self.script.get(index)
        if kind is None:
            for candidate in FAULT_KINDS:
                rate = self.rates.get(candidate, 0.0)
                # Always draw: the consumed-randomness sequence must
                # not depend on which rates are zero.
                draw = self._rng.random()
                if kind is None and rate > 0 and draw < rate:
                    kind = candidate
        if kind is not None:
            self.injected.append((index, kind))
        return kind

    def truncate_point(self, size: int) -> int:
        """How many bytes of a *size*-byte frame survive a truncation
        (at least 1, at most size - 1; seeded)."""
        if size <= 1:
            return 0
        return self._rng.randrange(1, size)


class ChaosSocket:
    """A socket wrapper applying a :class:`ChaosSchedule` to frames.

    Wraps exactly the surface :mod:`repro.server.protocol` and the
    client use: ``sendall`` (one call per frame), ``recv``,
    ``settimeout``, ``shutdown``, ``close``.  Fault semantics are
    documented on the module; after any connection-killing fault the
    wrapper raises :class:`ConnectionResetError` for every further
    operation until the client reconnects (with a fresh wrapper).
    """

    def __init__(self, sock: socket.socket, schedule: ChaosSchedule,
                 sleep=time.sleep):
        self._sock = sock
        self._schedule = schedule
        self._sleep = sleep
        self._dead = False
        #: set while a ``drop_reply`` is swallowing the response.
        self._swallow_reply = False

    # -- helpers -----------------------------------------------------------

    def _kill(self, why: str) -> ConnectionResetError:
        self._dead = True
        try:
            self._sock.close()
        except OSError:
            pass
        return ConnectionResetError(f"chaos: {why}")

    def _require_alive(self) -> None:
        if self._dead:
            raise ConnectionResetError("chaos: connection already reset")

    def _read_exact(self, count: int) -> bytes | None:
        chunks, remaining = [], count
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _discard_reply(self) -> None:
        """Read and throw away one full response frame (guaranteeing
        the server finished processing before the reset)."""
        header = self._read_exact(_HEADER.size)
        if header is not None:
            (length,) = _HEADER.unpack(header)
            self._read_exact(length)

    # -- the wrapped surface -----------------------------------------------

    def sendall(self, data: bytes) -> None:
        self._require_alive()
        fault = self._schedule.decide()
        if fault is None:
            self._sock.sendall(data)
            return
        if fault == "delay":
            self._sleep(self._schedule.delay_s)
            self._sock.sendall(data)
            return
        if fault in ("drop", "reset"):
            raise self._kill(f"{fault} before frame "
                             f"{self._schedule.frames_sent - 1}")
        if fault == "truncate":
            keep = self._schedule.truncate_point(len(data))
            if keep:
                self._sock.sendall(data[:keep])
            raise self._kill(
                f"truncated frame after {keep} of {len(data)} bytes")
        if fault == "corrupt":
            # 0xFF is never valid UTF-8, so the receiver's JSON decode
            # must fail -- the frame can be rejected but never
            # reinterpreted as a different request.
            self._sock.sendall(data[:-1] + b"\xff")
            return
        # drop_reply: deliver, then swallow the whole response.
        self._sock.sendall(data)
        self._swallow_reply = True

    def recv(self, bufsize: int) -> bytes:
        self._require_alive()
        if self._swallow_reply:
            self._swallow_reply = False
            self._discard_reply()
            raise self._kill("reply dropped after full processing")
        return self._sock.recv(bufsize)

    def settimeout(self, value: float | None) -> None:
        if not self._dead:
            self._sock.settimeout(value)

    def setsockopt(self, *args) -> None:
        if not self._dead:
            self._sock.setsockopt(*args)

    def shutdown(self, how: int) -> None:
        if not self._dead:
            self._sock.shutdown(how)

    def close(self) -> None:
        self._dead = True
        try:
            self._sock.close()
        except OSError:
            pass
