"""Blocking client for the intensional query server.

One socket, one outstanding request::

    from repro.server import connect

    with connect("127.0.0.1:7654") as client:
        client.begin()
        client.sql("INSERT INTO SUBMARINE VALUES (...)")
        reply = client.ask("SELECT Name FROM SUBMARINE WHERE ...")
        client.rollback()

Error frames come back as :class:`~repro.errors.ServerError` carrying
the server-side exception type, its CLI hint, and whether the server
rolled the session's transaction back while failing the request.  The
connection stays usable after a statement error.

Resilience (PR 8).  Connecting is bounded by ``connect_timeout_s``
(TCP connect *and* the hello handshake) and every read by
``timeout_s``.  Give the client a
:class:`~repro.server.resilience.RetryPolicy` and failed requests are
retried with exponential backoff across reconnects: reads always,
DML only under an idempotency token (attached automatically, so a
retried ``INSERT`` applies exactly once server-side), transaction
control never -- and nothing auto-retries across a reconnect while an
explicit transaction is open, because its state died with the session.
A :class:`~repro.server.resilience.CircuitBreaker` (optional) fails
fast while the server is unreachable; ``default_deadline_s`` stamps
each request with a ``deadline_ms`` budget the server honours.  The
``wrap_socket`` hook is the chaos harness's injection point.

``python -m repro.server.client HOST:PORT`` (the ``repro-client``
entry point) wraps this in a minimal remote REPL; the full-featured
shell is ``repro.cli`` with ``\\connect``.
"""

from __future__ import annotations

import socket
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    DeadlineExceeded, ProtocolError, ServerError,
)
from repro.relational.relation import Relation
from repro.server import protocol
from repro.server.resilience import (
    CircuitBreaker, Deadline, RetryPolicy, TokenSource,
)

__all__ = ["AskReply", "Client", "connect", "main"]


@dataclass
class AskReply:
    """A decoded ``ask`` response: the paper's two answer halves."""

    extensional: Relation
    intensional: list[str]
    summary: str
    rendered: str
    warnings: list[str] = field(default_factory=list)

    def render(self) -> str:
        return self.rendered


def parse_address(address: str, default_port: int = 7654
                  ) -> tuple[str, int]:
    """``host:port`` (or bare ``host``) -> ``(host, port)``."""
    host, _sep, port_text = address.strip().partition(":")
    host = host or "127.0.0.1"
    if not port_text:
        return host, default_port
    try:
        return host, int(port_text)
    except ValueError as error:
        raise ServerError(
            f"bad server address {address!r} (want host:port)") from error


class Client:
    """A blocking connection to an :class:`IntensionalQueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7654,
                 timeout_s: float | None = 60.0,
                 connect_timeout_s: float | None = 10.0,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 default_deadline_s: float | None = None,
                 client_id: str | None = None,
                 wrap_socket: Callable | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.retry = retry
        self.breaker = breaker
        self.default_deadline_s = default_deadline_s
        #: stable across reconnects: idempotency keys are scoped to it.
        self.client_id = client_id or f"c-{uuid.uuid4().hex[:12]}"
        self.tokens = TokenSource(self.client_id)
        self.wrap_socket = wrap_socket
        self.session: str | None = None
        self.stats = {"requests": 0, "retries": 0, "reconnects": 0,
                      "deduped": 0}
        self._sleep = sleep
        self._sock: socket.socket | None = None
        #: explicit server-side transaction open on this session (the
        #: auto-retry guard: never retry across a reconnect in a tx).
        self._server_tx = False

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> "Client":
        if self._sock is not None:
            return self
        if self.breaker is not None:
            self.breaker.admit()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
        except OSError as error:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServerError(
                f"cannot connect to {self.host}:{self.port}: {error}",
                hint="is the server running? start one with "
                     "repro-server") from error
        if self.wrap_socket is not None:
            sock = self.wrap_socket(sock)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # The connect timeout still governs the hello read: a
            # listener that accepts but never speaks (wrong service,
            # wedged server) must not hang the client forever.
            hello = protocol.read_frame(sock)
        except (TimeoutError, socket.timeout) as error:
            self._close_raw(sock)
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ProtocolError(
                f"no handshake from {self.host}:{self.port} within "
                f"{self.connect_timeout_s:g}s -- the TCP connection "
                f"opened but the server never sent its hello (wrong "
                f"service on that port, or a wedged server?)") from error
        except OSError as error:
            self._close_raw(sock)
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServerError(
                f"cannot connect to {self.host}:{self.port}: {error}",
                hint="is the server running? start one with "
                     "repro-server") from error
        if hello is None:
            self._close_raw(sock)
            raise ServerError(
                f"server at {self.host}:{self.port} closed the "
                "connection during handshake")
        if not hello.get("ok"):
            self._close_raw(sock)
            self._raise_error_frame(hello)
        sock.settimeout(self.timeout_s)
        self.session = hello.get("session")
        self._sock = sock
        if self.breaker is not None:
            self.breaker.record_success()
        return self

    @staticmethod
    def _close_raw(sock) -> None:
        try:
            sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Polite disconnect (``bye`` frame, then close)."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            protocol.write_frame(sock, {"op": "bye"})
            protocol.read_frame(sock)
        except (OSError, ProtocolError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- request/response core ---------------------------------------------

    def request(self, message: dict,
                deadline: Deadline | None = None) -> dict:
        """Send one frame; return the success payload or raise
        :class:`ServerError` for an error frame.

        With a :class:`RetryPolicy` installed, transport failures and
        server errors marked ``retryable`` are retried with backoff --
        but only for requests that are safe to resend (see
        :meth:`_request_retry_safe`).
        """
        if deadline is None and self.default_deadline_s is not None:
            deadline = Deadline.after(self.default_deadline_s)
        self.stats["requests"] += 1
        if self.retry is None:
            return self._request_once(message, deadline)
        last_error: Exception | None = None
        retry_safe = self._request_retry_safe(message)
        for attempt in self.retry.attempts():
            if attempt:
                self.stats["retries"] += 1
            try:
                if self._sock is None:
                    self.stats["reconnects"] += 1 if attempt else 0
                    self.connect()
                return self._request_once(message, deadline)
            except (ServerError, OSError) as error:
                last_error = error
                if not self._should_retry(error, retry_safe):
                    raise
                self._backoff(attempt, error, deadline)
        assert last_error is not None
        raise last_error

    def _request_retry_safe(self, message: dict) -> bool:
        """May *message* be resent after an ambiguous failure?

        Reads always; DML only under an idempotency token (the server
        dedups the re-execution); transaction control never -- and
        nothing is retry-safe while an explicit transaction is open,
        because a reconnect lands on a fresh session whose transaction
        state (and transaction-private reads) died with the old one.
        """
        if self._server_tx:
            return False
        op = str(message.get("op", ""))
        if op in ("begin", "commit", "rollback", "bye"):
            return False
        if op == "sql":
            first = str(message.get("sql", "")).strip().split(None, 1)
            word = first[0].lower() if first else ""
            if word not in ("select", "explain"):
                return bool(message.get("token"))
        return True

    def _should_retry(self, error: Exception, retry_safe: bool) -> bool:
        if isinstance(error, ServerError) and error.remote_type:
            # The server answered: the connection is intact, so even a
            # tokenless DML may resend -- nothing executed when the
            # frame says retryable (shed, lock-timeout victim).
            return bool(error.retryable)
        # Transport failure (reset, torn frame, refused): the request
        # outcome is unknown -- only retry what is safe to resend.
        return retry_safe

    def _backoff(self, attempt: int, error: Exception,
                 deadline: Deadline | None) -> None:
        delay = self.retry.delay(attempt)
        hinted = getattr(error, "retry_after_s", None)
        if hinted is not None:
            delay = max(delay, float(hinted))
        if deadline is not None and delay >= deadline.remaining():
            raise DeadlineExceeded(
                f"retry budget exhausted: backing off {delay:.3f}s "
                f"would pass the request deadline") from error
        if delay > 0:
            self._sleep(delay)

    def _request_once(self, message: dict,
                      deadline: Deadline | None) -> dict:
        if self._sock is None:
            raise ServerError("not connected",
                              hint="call connect() first")
        if deadline is not None:
            # One clock read serves both the local expiry check and the
            # wire header -- this path runs per attempt on every
            # deadline-stamped request.
            remaining = deadline.remaining()
            if remaining <= 0:
                raise DeadlineExceeded(
                    "deadline expired before sending the request")
            message = dict(message,
                           deadline_ms=int(remaining * 1000))
        try:
            protocol.write_frame(self._sock, message)
            response = protocol.read_frame(self._sock)
        except (OSError, ProtocolError) as error:
            self._drop()
            if self.breaker is not None:
                self.breaker.record_failure()
            if isinstance(error, ProtocolError):
                raise
            raise ServerError(
                f"connection to {self.host}:{self.port} failed: "
                f"{error}") from error
        if response is None:
            self._drop()
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServerError(
                "server closed the connection mid-request")
        if self.breaker is not None:
            self.breaker.record_success()
        if not response.get("ok"):
            self._note_abort(response)
            self._raise_error_frame(response)
        if response.get("deduplicated"):
            self.stats["deduped"] += 1
        return response

    def _note_abort(self, response: dict) -> None:
        error = response.get("error") or {}
        if error.get("aborted"):
            self._server_tx = False

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        #: the server rolls back an open transaction when the session
        #: dies, so the client-side flag must not outlive the socket.
        self._server_tx = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _raise_error_frame(response: dict) -> None:
        error = response.get("error") or {}
        raise ServerError(
            error.get("message", "server error"),
            hint=error.get("hint"),
            remote_type=error.get("type"),
            aborted=bool(error.get("aborted")),
            retryable=bool(error.get("retryable")),
            retry_after_s=error.get("retry_after_s"))

    # -- typed operations --------------------------------------------------

    def ping(self) -> float:
        """Round-trip latency in seconds."""
        start = time.perf_counter()
        self.request({"op": "ping"})
        return time.perf_counter() - start

    def sql(self, text: str,
            token: str | None = None) -> Relation | int | str:
        """Run any SQL statement: SELECT -> :class:`Relation`, DML ->
        affected row count, EXPLAIN -> rendered plan text.

        DML gets an idempotency *token* (auto-generated when a retry
        policy is installed) so a resend after an ambiguous failure is
        applied exactly once; pass an explicit token to make unrelated
        calls share one logical attempt.
        """
        message: dict = {"op": "sql", "sql": text}
        first = text.strip().split(None, 1)
        word = first[0].lower() if first else ""
        if word not in ("select", "explain"):
            if token is None and self.retry is not None \
                    and not self._server_tx:
                token = self.tokens.next()
            if token is not None:
                message["token"] = token
                message["client"] = self.client_id
        response = self.request(message)
        return self._decode_payload(response)

    def ask(self, text: str, forward: bool = True,
            backward: bool = True) -> AskReply:
        """Extensional + intensional answers for a SELECT."""
        response = self.request({"op": "ask", "sql": text,
                                 "forward": forward,
                                 "backward": backward})
        return AskReply(
            extensional=protocol.decode_relation_payload(
                response["relation"]),
            intensional=list(response.get("intensional", ())),
            summary=response.get("summary", ""),
            rendered=response.get("rendered", ""),
            warnings=list(response.get("warnings", ())))

    def explain(self, text: str, analyze: bool = False) -> str:
        response = self.request({"op": "explain", "sql": text,
                                 "analyze": analyze})
        return response["text"]

    def begin(self) -> None:
        self.request({"op": "begin"})
        self._server_tx = True

    def commit(self) -> None:
        self.request({"op": "commit"})
        self._server_tx = False

    def rollback(self) -> None:
        self.request({"op": "rollback"})
        self._server_tx = False

    @property
    def in_transaction(self) -> bool:
        """The client's view of its server-side transaction state."""
        return self._server_tx

    def admin(self, command: str) -> str:
        """Run a whitelisted shell command server-side; returns its
        rendered output (e.g. ``tables``, ``cache``, ``locks``)."""
        response = self.request({"op": "admin", "command": command})
        return response["text"]

    def _decode_payload(self, response: dict) -> Relation | int | str:
        kind = response.get("kind")
        if kind == "relation":
            return protocol.decode_relation_payload(response["relation"])
        if kind == "count":
            return int(response["count"])
        if kind == "text":
            return response["text"]
        raise ProtocolError(f"unexpected response kind {kind!r}")

    def resilience_status(self) -> dict:
        """Client-side resilience counters (for ``\\connect`` status)."""
        status: dict = {"client_id": self.client_id, **self.stats,
                        "retry": self.retry is not None,
                        "default_deadline_s": self.default_deadline_s}
        if self.breaker is not None:
            status["breaker"] = {"state": self.breaker.state,
                                 **self.breaker.stats}
        return status


def connect(address: str, timeout_s: float | None = 60.0,
            **kwargs) -> Client:
    """``connect("host:port")`` -> a connected :class:`Client`.

    Keyword arguments (``retry``, ``breaker``, ``connect_timeout_s``,
    ``default_deadline_s``, ...) pass through to :class:`Client`.
    """
    host, port = parse_address(address)
    return Client(host, port, timeout_s=timeout_s, **kwargs).connect()


# -- repro-client ------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """A minimal remote REPL / one-shot runner over the wire."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Connect to a repro intensional query server")
    parser.add_argument("address", help="server address, host:port")
    parser.add_argument("--execute", "-e", action="append", default=[],
                        metavar="STMT",
                        help="run statements and exit (repeatable); "
                             "SELECTs are asked intensionally")
    arguments = parser.parse_args(argv)
    try:
        client = connect(arguments.address)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        return 1
    status = 0
    with client:
        def run_line(line: str) -> None:
            nonlocal status
            line = line.strip()
            if not line:
                return
            try:
                if line.startswith("\\"):
                    command = line[1:]
                    word = command.split(None, 1)[0].lower()
                    if word in ("begin", "commit", "rollback"):
                        getattr(client, word)()
                        print(f"{word} ok")
                    else:
                        print(client.admin(command))
                    return
                first = line.split(None, 1)[0].lower()
                if first == "select":
                    print(client.ask(line).render())
                else:
                    result = client.sql(line)
                    if isinstance(result, Relation):
                        print(result.render())
                    elif isinstance(result, int):
                        print(f"{result} rows affected")
                    else:
                        print(result)
            except ServerError as error:
                status = 1
                print(f"error: {error}", file=sys.stderr)
                if error.hint:
                    print(f"hint: {error.hint}", file=sys.stderr)

        if arguments.execute:
            for statement in arguments.execute:
                run_line(statement)
            return status
        print(f"connected to {arguments.address} "
              f"(session {client.session}) -- \\q to quit")
        while True:
            try:
                line = input(f"{client.session or 'iqp'}> ")
            except EOFError:
                break
            if line.strip().lower() in ("\\q", "\\quit", "\\exit"):
                break
            run_line(line)
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
