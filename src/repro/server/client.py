"""Blocking client for the intensional query server.

One socket, one outstanding request::

    from repro.server import connect

    with connect("127.0.0.1:7654") as client:
        client.begin()
        client.sql("INSERT INTO SUBMARINE VALUES (...)")
        reply = client.ask("SELECT Name FROM SUBMARINE WHERE ...")
        client.rollback()

Error frames come back as :class:`~repro.errors.ServerError` carrying
the server-side exception type, its CLI hint, and whether the server
rolled the session's transaction back while failing the request.  The
connection stays usable after a statement error.

``python -m repro.server.client HOST:PORT`` (the ``repro-client``
entry point) wraps this in a minimal remote REPL; the full-featured
shell is ``repro.cli`` with ``\\connect``.
"""

from __future__ import annotations

import socket
import sys
import time
from dataclasses import dataclass, field

from repro.errors import ProtocolError, ServerError
from repro.relational.relation import Relation
from repro.server import protocol

__all__ = ["AskReply", "Client", "connect", "main"]


@dataclass
class AskReply:
    """A decoded ``ask`` response: the paper's two answer halves."""

    extensional: Relation
    intensional: list[str]
    summary: str
    rendered: str
    warnings: list[str] = field(default_factory=list)

    def render(self) -> str:
        return self.rendered


def parse_address(address: str, default_port: int = 7654
                  ) -> tuple[str, int]:
    """``host:port`` (or bare ``host``) -> ``(host, port)``."""
    host, _sep, port_text = address.strip().partition(":")
    host = host or "127.0.0.1"
    if not port_text:
        return host, default_port
    try:
        return host, int(port_text)
    except ValueError as error:
        raise ServerError(
            f"bad server address {address!r} (want host:port)") from error


class Client:
    """A blocking connection to an :class:`IntensionalQueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7654,
                 timeout_s: float | None = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.session: str | None = None
        self._sock: socket.socket | None = None

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> "Client":
        if self._sock is not None:
            return self
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = protocol.read_frame(sock)
        except OSError as error:
            raise ServerError(
                f"cannot connect to {self.host}:{self.port}: {error}",
                hint="is the server running? start one with "
                     "repro-server") from error
        if hello is None:
            raise ServerError(
                f"server at {self.host}:{self.port} closed the "
                "connection during handshake")
        if not hello.get("ok"):
            self._raise_error_frame(hello)
        self.session = hello.get("session")
        self._sock = sock
        return self

    def close(self) -> None:
        """Polite disconnect (``bye`` frame, then close)."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            protocol.write_frame(sock, {"op": "bye"})
            protocol.read_frame(sock)
        except (OSError, ProtocolError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- request/response core ---------------------------------------------

    def request(self, message: dict) -> dict:
        """Send one frame; return the success payload or raise
        :class:`ServerError` for an error frame."""
        if self._sock is None:
            raise ServerError("not connected",
                              hint="call connect() first")
        try:
            protocol.write_frame(self._sock, message)
            response = protocol.read_frame(self._sock)
        except (OSError, ProtocolError) as error:
            self._drop()
            if isinstance(error, ProtocolError):
                raise
            raise ServerError(
                f"connection to {self.host}:{self.port} failed: "
                f"{error}") from error
        if response is None:
            self._drop()
            raise ServerError(
                "server closed the connection mid-request")
        if not response.get("ok"):
            self._raise_error_frame(response)
        return response

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _raise_error_frame(response: dict) -> None:
        error = response.get("error") or {}
        raise ServerError(
            error.get("message", "server error"),
            hint=error.get("hint"),
            remote_type=error.get("type"),
            aborted=bool(error.get("aborted")))

    # -- typed operations --------------------------------------------------

    def ping(self) -> float:
        """Round-trip latency in seconds."""
        start = time.perf_counter()
        self.request({"op": "ping"})
        return time.perf_counter() - start

    def sql(self, text: str) -> Relation | int | str:
        """Run any SQL statement: SELECT -> :class:`Relation`, DML ->
        affected row count, EXPLAIN -> rendered plan text."""
        response = self.request({"op": "sql", "sql": text})
        return self._decode_payload(response)

    def ask(self, text: str, forward: bool = True,
            backward: bool = True) -> AskReply:
        """Extensional + intensional answers for a SELECT."""
        response = self.request({"op": "ask", "sql": text,
                                 "forward": forward,
                                 "backward": backward})
        return AskReply(
            extensional=protocol.decode_relation_payload(
                response["relation"]),
            intensional=list(response.get("intensional", ())),
            summary=response.get("summary", ""),
            rendered=response.get("rendered", ""),
            warnings=list(response.get("warnings", ())))

    def explain(self, text: str, analyze: bool = False) -> str:
        response = self.request({"op": "explain", "sql": text,
                                 "analyze": analyze})
        return response["text"]

    def begin(self) -> None:
        self.request({"op": "begin"})

    def commit(self) -> None:
        self.request({"op": "commit"})

    def rollback(self) -> None:
        self.request({"op": "rollback"})

    def admin(self, command: str) -> str:
        """Run a whitelisted shell command server-side; returns its
        rendered output (e.g. ``tables``, ``cache``, ``locks``)."""
        response = self.request({"op": "admin", "command": command})
        return response["text"]

    def _decode_payload(self, response: dict) -> Relation | int | str:
        kind = response.get("kind")
        if kind == "relation":
            return protocol.decode_relation_payload(response["relation"])
        if kind == "count":
            return int(response["count"])
        if kind == "text":
            return response["text"]
        raise ProtocolError(f"unexpected response kind {kind!r}")


def connect(address: str, timeout_s: float | None = 60.0) -> Client:
    """``connect("host:port")`` -> a connected :class:`Client`."""
    host, port = parse_address(address)
    return Client(host, port, timeout_s=timeout_s).connect()


# -- repro-client ------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """A minimal remote REPL / one-shot runner over the wire."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Connect to a repro intensional query server")
    parser.add_argument("address", help="server address, host:port")
    parser.add_argument("--execute", "-e", action="append", default=[],
                        metavar="STMT",
                        help="run statements and exit (repeatable); "
                             "SELECTs are asked intensionally")
    arguments = parser.parse_args(argv)
    try:
        client = connect(arguments.address)
    except ServerError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        return 1
    status = 0
    with client:
        def run_line(line: str) -> None:
            nonlocal status
            line = line.strip()
            if not line:
                return
            try:
                if line.startswith("\\"):
                    command = line[1:]
                    word = command.split(None, 1)[0].lower()
                    if word in ("begin", "commit", "rollback"):
                        getattr(client, word)()
                        print(f"{word} ok")
                    else:
                        print(client.admin(command))
                    return
                first = line.split(None, 1)[0].lower()
                if first == "select":
                    print(client.ask(line).render())
                else:
                    result = client.sql(line)
                    if isinstance(result, Relation):
                        print(result.render())
                    elif isinstance(result, int):
                        print(f"{result} rows affected")
                    else:
                        print(result)
            except ServerError as error:
                status = 1
                print(f"error: {error}", file=sys.stderr)
                if error.hint:
                    print(f"hint: {error.hint}", file=sys.stderr)

        if arguments.execute:
            for statement in arguments.execute:
                run_line(statement)
            return status
        print(f"connected to {arguments.address} "
              f"(session {client.session}) -- \\q to quit")
        while True:
            try:
                line = input(f"{client.session or 'iqp'}> ")
            except EOFError:
                break
            if line.strip().lower() in ("\\q", "\\quit", "\\exit"):
                break
            run_line(line)
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
