"""Relation-level shared/exclusive locks with wait-timeout avoidance.

The server isolates sessions with strict two-phase locking at relation
granularity (the SimpleDB recipe: ``slock``/``xlock`` that wait, then
give up):

* readers take **shared** locks on every relation a statement touches;
* writers take an **exclusive** lock on the written relation *and* on
  the :data:`TXN_TOKEN` pseudo-resource -- the storage engine keeps one
  transaction buffer, so write transactions serialize behind that token
  while readers of other relations proceed;
* a lock that cannot be granted within the timeout raises
  :class:`~repro.errors.LockTimeout`.  Timeouts are the deadlock policy:
  no waits-for graph, just a bounded wait and a victim, exactly like
  SimpleDB's ``LockAbortException``.

Locks are owned by opaque tokens (the server uses session ids).  An
owner's locks are re-entrant (holding X implies S; re-granting either
is a no-op) and an S->X **upgrade** is granted as soon as the owner is
the only shared holder -- two upgraders therefore deadlock and one
times out, which is the correct outcome for a lost-update race.

The table keeps always-on counters (``grants`` / ``waits`` /
``timeouts``) for tests and the ``\\locks`` admin view, and mirrors
them into the observability registry (``lock_waits_total``,
``lock_timeouts_total``) when tracing is enabled.
"""

from __future__ import annotations

import threading
import time
from typing import Hashable, Iterable

from repro import obs
from repro.errors import LockTimeout

__all__ = ["LockManager", "LockTable", "RULES_TOKEN", "TXN_TOKEN"]

#: Pseudo-resource serializing write transactions (the storage engine
#: buffers exactly one transaction at a time).
TXN_TOKEN = "*txn*"

#: Pseudo-resource covering the induced rule base: S for every
#: rule-consulting statement, X for re-induction.
RULES_TOKEN = "*rules*"

#: Default wait budget before a request is declared the deadlock victim.
DEFAULT_TIMEOUT_S = 10.0


class _Lock:
    """One resource's grant state."""

    __slots__ = ("shared", "exclusive", "x_waiters")

    def __init__(self) -> None:
        self.shared: set[Hashable] = set()
        self.exclusive: Hashable | None = None
        #: exclusive requests currently waiting; while any exist, *new*
        #: shared grants are withheld so a steady stream of readers
        #: cannot starve a writer indefinitely.
        self.x_waiters = 0

    def idle(self) -> bool:
        return not self.shared and self.exclusive is None and \
            not self.x_waiters


class LockTable:
    """S/X locks over named resources, owned by opaque tokens."""

    def __init__(self, timeout_s: float = DEFAULT_TIMEOUT_S):
        self.timeout_s = timeout_s
        self._condition = threading.Condition()
        self._locks: dict[str, _Lock] = {}
        #: owner -> resources it holds (either mode), for release_all.
        self._held: dict[Hashable, set[str]] = {}
        #: always-on counters: ``grants`` / ``waits`` / ``timeouts``.
        self.counters = {"grants": 0, "waits": 0, "timeouts": 0}

    # -- grant predicates (call with the condition held) -------------------

    @staticmethod
    def _shared_grantable(lock: _Lock, owner: Hashable) -> bool:
        if lock.exclusive == owner or owner in lock.shared:
            return True  # re-entrant: already granted, never self-block
        return lock.exclusive is None and not lock.x_waiters

    @staticmethod
    def _exclusive_grantable(lock: _Lock, owner: Hashable) -> bool:
        if lock.exclusive is not None and lock.exclusive != owner:
            return False
        return not (lock.shared - {owner})

    # -- acquisition -------------------------------------------------------

    def slock(self, owner: Hashable, name: str,
              timeout_s: float | None = None) -> None:
        """Grant *owner* a shared lock on *name*, waiting up to the
        timeout for conflicting exclusive holders to release."""
        self._acquire(owner, name, exclusive=False, timeout_s=timeout_s)

    def xlock(self, owner: Hashable, name: str,
              timeout_s: float | None = None) -> None:
        """Grant *owner* an exclusive lock on *name* (upgrading its own
        shared lock when it is the sole shared holder)."""
        self._acquire(owner, name, exclusive=True, timeout_s=timeout_s)

    def _acquire(self, owner: Hashable, name: str, exclusive: bool,
                 timeout_s: float | None) -> None:
        name = name.lower()
        grantable = (self._exclusive_grantable if exclusive
                     else self._shared_grantable)
        budget = self.timeout_s if timeout_s is None else timeout_s
        deadline = time.monotonic() + budget
        with self._condition:
            waited = False
            lock = None
            try:
                while True:
                    # Re-fetch each pass: a release may have removed
                    # the idle entry while we slept, and a later grant
                    # must land on the *live* object, not a stale one.
                    # (An exclusive waiter's entry is pinned by its
                    # x_waiters count, so its object never changes.)
                    lock = self._locks.get(name)
                    if lock is None:
                        lock = self._locks[name] = _Lock()
                    if grantable(lock, owner):
                        break
                    if not waited:
                        waited = True
                        if exclusive:
                            # Registered waiter: blocks *new* shared
                            # grants so readers cannot starve a writer.
                            lock.x_waiters += 1
                        self.counters["waits"] += 1
                        obs.counter("lock_waits_total",
                                    "lock requests that had to wait",
                                    mode="x" if exclusive else "s").inc()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or \
                            not self._condition.wait(remaining):
                        if deadline - time.monotonic() <= 0:
                            self.counters["timeouts"] += 1
                            obs.counter(
                                "lock_timeouts_total",
                                "lock waits abandoned (deadlock "
                                "victims)",
                                mode="x" if exclusive else "s").inc()
                            mode = "exclusive" if exclusive else "shared"
                            raise LockTimeout(
                                f"timed out after {budget:.3g}s waiting "
                                f"for a {mode} lock on {name!r}")
                if exclusive:
                    lock.exclusive = owner
                    lock.shared.discard(owner)
                elif lock.exclusive != owner:
                    lock.shared.add(owner)
                self.counters["grants"] += 1
                self._held.setdefault(owner, set()).add(name)
            finally:
                if waited and exclusive:
                    lock.x_waiters -= 1
                    if lock.idle():
                        self._locks.pop(name, None)
                    # Readers held back by the waiter count re-check.
                    self._condition.notify_all()

    # -- release -----------------------------------------------------------

    def release(self, owner: Hashable, names: Iterable[str]) -> None:
        """Release *owner*'s locks on *names* (early release for
        autocommit statements; transactions use :meth:`release_all`)."""
        with self._condition:
            held = self._held.get(owner)
            for name in names:
                name = name.lower()
                lock = self._locks.get(name)
                if lock is None:
                    continue
                if lock.exclusive == owner:
                    lock.exclusive = None
                lock.shared.discard(owner)
                if lock.idle():
                    del self._locks[name]
                if held is not None:
                    held.discard(name)
            if held is not None and not held:
                del self._held[owner]
            self._condition.notify_all()

    def release_all(self, owner: Hashable) -> None:
        """Drop every lock *owner* holds (commit/rollback/disconnect)."""
        with self._condition:
            names = self._held.pop(owner, None)
            if not names:
                return
            for name in names:
                lock = self._locks.get(name)
                if lock is None:
                    continue
                if lock.exclusive == owner:
                    lock.exclusive = None
                lock.shared.discard(owner)
                if lock.idle():
                    del self._locks[name]
            self._condition.notify_all()

    # -- introspection -----------------------------------------------------

    def held_by(self, owner: Hashable) -> set[str]:
        with self._condition:
            return set(self._held.get(owner, ()))

    def holders(self, name: str) -> tuple[Hashable | None, set[Hashable]]:
        """``(exclusive_owner, shared_owners)`` for *name*."""
        with self._condition:
            lock = self._locks.get(name.lower())
            if lock is None:
                return None, set()
            return lock.exclusive, set(lock.shared)

    def status(self) -> dict:
        """Snapshot for the ``\\locks`` admin command."""
        with self._condition:
            held = {
                name: {"x": lock.exclusive,
                       "s": sorted(map(str, lock.shared))}
                for name, lock in sorted(self._locks.items())
                if not lock.idle()}
        return {"locks": held, "counters": dict(self.counters)}

    def render(self) -> str:
        status = self.status()
        lines = [
            "lock table: {grants} grants, {waits} waits, "
            "{timeouts} timeouts".format(**status["counters"])]
        for name, modes in status["locks"].items():
            parts = []
            if modes["x"] is not None:
                parts.append(f"X={modes['x']}")
            if modes["s"]:
                parts.append("S={" + ",".join(modes["s"]) + "}")
            lines.append(f"  {name}: " + " ".join(parts))
        return "\n".join(lines)


class LockManager:
    """One owner's view of a shared :class:`LockTable` -- tracks which
    locks belong to the current statement vs. the current transaction
    so autocommit statements release early while explicit transactions
    hold everything to commit (strict 2PL)."""

    def __init__(self, table: LockTable, owner: Hashable):
        self.table = table
        self.owner = owner
        self._statement: set[str] = set()
        self._transactional = False

    # -- transaction demarcation ------------------------------------------

    def begin(self) -> None:
        """From here on acquired locks persist until :meth:`end`."""
        self._transactional = True

    def end(self) -> None:
        """Commit/rollback: drop every lock this owner holds."""
        self._transactional = False
        self._statement.clear()
        self.table.release_all(self.owner)

    @property
    def in_transaction(self) -> bool:
        return self._transactional

    # -- statement-scoped acquisition --------------------------------------

    def slock(self, name: str, timeout_s: float | None = None) -> None:
        self.table.slock(self.owner, name, timeout_s)
        self._note(name)

    def xlock(self, name: str, timeout_s: float | None = None) -> None:
        self.table.xlock(self.owner, name, timeout_s)
        self._note(name)

    def _note(self, name: str) -> None:
        if not self._transactional:
            self._statement.add(name.lower())

    def statement_done(self) -> None:
        """Autocommit statement finished: release its locks (a lock
        taken inside an explicit transaction is never registered here,
        so this is a no-op mid-transaction)."""
        if self._statement:
            self.table.release(self.owner, self._statement)
            self._statement.clear()
