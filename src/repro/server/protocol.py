"""The wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Both directions use the same framing; a body
larger than :data:`MAX_FRAME_BYTES` is refused before it is read, so a
corrupt or hostile peer cannot make the receiver allocate unboundedly.

Requests are objects with an ``op`` field::

    {"op": "sql",  "sql": "SELECT ..."}          any SQL statement
    {"op": "ask",  "sql": ..., "forward": true, "backward": true}
    {"op": "explain", "sql": ..., "analyze": false}
    {"op": "begin"} / {"op": "commit"} / {"op": "rollback"}
    {"op": "admin", "command": "tables"}          shell-style commands
    {"op": "ping"} / {"op": "bye"}

Responses carry ``ok``.  Success frames add a ``kind``
(``relation`` / ``count`` / ``text`` / ``ask`` / ``ok``) plus the
payload; relations travel in the same schema+rows encoding the WAL uses
(:mod:`repro.storage.codec`), so dates and every other cell type
round-trip by construction.  Failure frames map the server-side
exception onto a structured error::

    {"ok": false, "error": {"type": "LockTimeout", "message": ...,
                            "hint": ..., "aborted": true}}

``aborted`` tells the client its open transaction was rolled back while
failing the request (lock-timeout victim, server drain).

Resilience metadata (PR 8):

* requests may carry ``deadline_ms`` (the client's remaining time
  budget in whole milliseconds; the server refuses work whose deadline
  already passed and stops streaming plans that outlive it), ``token``
  (an idempotency token on DML, see ``docs/SERVER.md``) and ``client``
  (the stable client id tokens are scoped to);
* every error frame carries a machine-readable ``retryable`` flag --
  ``true`` exactly when retrying the *same* request can succeed without
  double effects (``LockTimeout``, ``RetryLater``); shed requests add
  ``retry_after_s``, the server's suggested backoff.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.errors import ProtocolError, ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "encode_relation_payload",
    "decode_relation_payload",
    "error_frame",
    "read_frame",
    "write_frame",
]

#: Refuse bodies beyond this many bytes (16 MiB) in either direction.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize *message* into one wire frame (header + JSON body)."""
    body = json.dumps(message, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Parse one frame body back into a message object."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") \
            from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def _read_exact(sock: socket.socket, count: int) -> bytes | None:
    """*count* bytes from *sock*, ``None`` on clean EOF at a frame
    boundary, :class:`ProtocolError` on EOF mid-frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one message from *sock*; ``None`` on clean EOF."""
    header = _read_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES})")
    body = _read_exact(sock, length) if length else b"{}"
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return decode_frame(body)


def write_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def error_frame(error: BaseException, aborted: bool = False) -> dict:
    """The structured error frame for a server-side exception.

    Library errors (:class:`ReproError`) travel with their class name
    and hint; anything else is wrapped as an ``InternalError`` so the
    client never sees a raw traceback type it cannot interpret.
    """
    if isinstance(error, ReproError):
        kind = type(error).__name__
    else:
        kind = "InternalError"
    payload: dict[str, Any] = {
        "type": kind,
        "message": str(error) or kind,
        "retryable": bool(getattr(error, "retryable", False)),
    }
    hint = getattr(error, "hint", None)
    if hint:
        payload["hint"] = hint
    retry_after = getattr(error, "retry_after_s", None)
    if retry_after is not None:
        payload["retry_after_s"] = retry_after
    if aborted:
        payload["aborted"] = True
        # A rolled-back transaction cannot be recovered by resending
        # one statement, whatever the error class said.
        payload["retryable"] = False
    return {"ok": False, "error": payload}


# -- relation payloads (delegate to the WAL codec) --------------------------


def encode_relation_payload(relation) -> dict:
    """Schema + rows, JSON-safe (dates tagged exactly as in the WAL)."""
    from repro.storage import codec
    return codec.encode_relation(relation)


def decode_relation_payload(payload: dict):
    from repro.storage import codec
    try:
        return codec.decode_relation(payload)
    except ReproError as error:
        raise ProtocolError(
            f"bad relation payload from peer: {error}") from error
