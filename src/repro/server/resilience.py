"""Resilience primitives for the client/server wire path.

Everything here is deterministic and injectable -- clocks, sleepers and
random sources are parameters, never ambient state -- so the chaos
harness (:mod:`repro.server.chaosproxy`) and the unit tests can drive
each primitive through its full state space without real time passing.

Client side
-----------

* :class:`Deadline` -- one request's absolute time budget, propagated
  to the server as a relative ``deadline_ms`` header so the server can
  stop working on a request whose client has already given up.
* :class:`RetryPolicy` -- bounded exponential backoff with
  deterministic jitter; the delay sequence is a pure function of the
  attempt number and the policy's seed.
* :class:`CircuitBreaker` -- after ``failure_threshold`` consecutive
  transport failures the circuit opens and requests fail fast with
  :class:`~repro.errors.CircuitOpen`; after ``reset_after_s`` one
  half-open probe is allowed through and its outcome closes or
  re-opens the circuit.
* :class:`TokenSource` -- idempotency tokens (``client_id:counter``)
  attached to DML so a retried statement is applied exactly once.

Server side
-----------

* :class:`AdmissionController` -- a max-in-flight gate with a bounded
  wait queue; requests beyond both are shed with
  :class:`~repro.errors.RetryLater` carrying a retry-after hint.
  ``overloaded()`` feeds the degraded-serving ladder.
* :class:`DedupTable` -- bounded (client, token) -> response memory
  backing exactly-once DML; the durable half lives in the storage
  engine's WAL (``dedup`` records committed atomically with the DML
  they describe).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from repro import obs
from repro.errors import CircuitOpen, DeadlineExceeded, RetryLater

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "DedupTable",
    "RetryPolicy",
    "TokenSource",
]


# ---------------------------------------------------------------------------
# deadlines


class Deadline:
    """An absolute point on a monotonic clock a request must beat."""

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic):
        self.at = at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def remaining_ms(self) -> int:
        """The wire form: whole milliseconds left, floored at 0."""
        return max(0, int(self.remaining() * 1000))

    def check(self, doing: str) -> None:
        if self.expired:
            raise DeadlineExceeded(f"deadline expired {doing}")


# ---------------------------------------------------------------------------
# retries


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(max_delay_s, base_delay_s * multiplier**attempt)`` scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1]`` out of a
    seeded generator -- full determinism for tests and the chaos
    harness, decorrelation for real fleets (each client seeds from its
    id by default).
    """

    max_attempts: int = 5
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        raw = min(self.max_delay_s,
                  self.base_delay_s * (self.multiplier ** attempt))
        if self.jitter <= 0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())

    def attempts(self) -> range:
        return range(self.max_attempts)


# ---------------------------------------------------------------------------
# circuit breaker


class CircuitBreaker:
    """Closed -> open -> half-open transport-failure breaker."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, failure_threshold: int = 5,
                 reset_after_s: float = 2.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self.stats = {"opened": 0, "fast_failures": 0, "probes": 0}

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.reset_after_s):
            self._state = self.HALF_OPEN
        return self._state

    def admit(self) -> None:
        """Gate one request: raise :class:`CircuitOpen` while open;
        half-open lets exactly one probe through (callers race for it,
        the lock picks the winner)."""
        with self._lock:
            state = self._state_locked()
            if state == self.OPEN:
                self.stats["fast_failures"] += 1
                remaining = self.reset_after_s - (self._clock()
                                                  - self._opened_at)
                raise CircuitOpen(
                    f"circuit breaker open after {self._failures} "
                    f"consecutive failures",
                    retry_after_s=max(0.0, remaining))
            if state == self.HALF_OPEN:
                # One probe at a time: re-open pre-emptively; a success
                # will close, a failure re-arms the cooldown.
                self.stats["probes"] += 1
                self._state = self.OPEN
                self._opened_at = self._clock()

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (self._failures >= self.failure_threshold
                    and self._state != self.OPEN):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.stats["opened"] += 1
                obs.counter("client_breaker_opened_total",
                            "circuit breaker open transitions").inc()

    def reset(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED


# ---------------------------------------------------------------------------
# idempotency tokens


class TokenSource:
    """``client_id:n`` idempotency tokens, one per logical DML attempt
    (a *retry* reuses the token; the next statement gets a fresh one)."""

    def __init__(self, client_id: str):
        self.client_id = client_id
        self._counter = 0
        self._lock = threading.Lock()

    def next(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self.client_id}:{self._counter}"


# ---------------------------------------------------------------------------
# admission control (server side)


class AdmissionController:
    """Max-in-flight gate with a bounded wait queue.

    ``admit()`` grants a slot immediately when fewer than
    ``max_in_flight`` requests are executing; otherwise the caller
    queues (at most ``max_queue`` waiters, at most ``queue_timeout_s``
    each, never past the request's deadline).  Anything beyond that is
    *shed*: :class:`RetryLater` with a retry-after hint sized to the
    current queue depth, and nothing has executed.
    """

    def __init__(self, max_in_flight: int = 8, max_queue: int = 16,
                 queue_timeout_s: float = 1.0,
                 retry_after_s: float = 0.05):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._condition = threading.Condition()
        self._in_flight = 0
        self._waiting = 0
        self._last_shed = 0.0
        self.stats = {"admitted": 0, "queued": 0, "shed": 0}

    # -- the gate ----------------------------------------------------------

    def admit(self, deadline: Deadline | None = None) -> "_AdmissionTicket":
        with self._condition:
            if self._in_flight < self.max_in_flight:
                self._grant()
                return _AdmissionTicket(self)
            if self._waiting >= self.max_queue:
                self._shed("wait queue full")
            budget = self.queue_timeout_s
            if deadline is not None:
                budget = min(budget, deadline.remaining())
            if budget <= 0:
                self._shed("no wait budget left")
            self._waiting += 1
            self.stats["queued"] += 1
            give_up = time.monotonic() + budget
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = give_up - time.monotonic()
                    if remaining <= 0:
                        self._shed(
                            f"queued past {self.queue_timeout_s:g}s")
                    self._condition.wait(remaining)
            finally:
                self._waiting -= 1
            self._grant()
            return _AdmissionTicket(self)

    def _grant(self) -> None:
        self._in_flight += 1
        self.stats["admitted"] += 1
        obs.gauge("server_in_flight",
                  "requests currently executing").set(self._in_flight)

    def _shed(self, why: str) -> None:
        self.stats["shed"] += 1
        self._last_shed = time.monotonic()
        obs.counter("server_shed_total",
                    "requests shed by admission control").inc()
        # Spread retries: deeper queue -> longer suggested backoff.
        hint_s = self.retry_after_s * (1 + self._waiting)
        raise RetryLater(
            f"server overloaded ({self._in_flight} in flight, "
            f"{self._waiting} queued): {why}",
            retry_after_s=hint_s)

    def release(self) -> None:
        with self._condition:
            self._in_flight = max(0, self._in_flight - 1)
            obs.gauge("server_in_flight",
                      "requests currently executing").set(self._in_flight)
            self._condition.notify()

    # -- pressure signals --------------------------------------------------

    def overloaded(self, shed_memory_s: float = 1.0) -> bool:
        """True while the gate is saturated (someone is queued) or a
        request was shed within the last *shed_memory_s* -- the signal
        the degraded-serving ladder keys off."""
        with self._condition:
            if self._waiting > 0:
                return True
            return (self._last_shed > 0.0
                    and time.monotonic() - self._last_shed
                    < shed_memory_s)

    def status(self) -> dict:
        with self._condition:
            return {
                "in_flight": self._in_flight,
                "max_in_flight": self.max_in_flight,
                "waiting": self._waiting,
                "max_queue": self.max_queue,
                "queue_timeout_s": self.queue_timeout_s,
                **self.stats,
            }


class _AdmissionTicket:
    """Context manager releasing one admission slot."""

    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController):
        self._controller = controller

    def __enter__(self) -> "_AdmissionTicket":
        return self

    def __exit__(self, *_exc) -> None:
        self._controller.release()


# ---------------------------------------------------------------------------
# idempotency dedup (server side)


class DedupTable:
    """Bounded (client, token) -> recorded-response map.

    The table is the *serving* half of exactly-once DML; the *durable*
    half is the ``dedup`` WAL record the storage engine commits in the
    same transaction as the statement's mutations, so recovery rebuilds
    exactly the entries whose effects survived.  FIFO eviction bounds
    memory: a client that waited past ``capacity`` other DMLs to retry
    has long since exhausted its retry budget anyway.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[Hashable, dict] = {}
        self._lock = threading.Lock()
        self.stats = {"hits": 0, "misses": 0, "recovered": 0}

    def get(self, key: Hashable) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats["misses"] += 1
                return None
            self.stats["hits"] += 1
            obs.counter("server_dedup_hits_total",
                        "retried DML served from the dedup "
                        "journal").inc()
            return dict(entry)

    def put(self, key: Hashable, response: dict) -> None:
        with self._lock:
            if key not in self._entries and \
                    len(self._entries) >= self.capacity:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = dict(response)

    def seed(self, entries: Iterable[tuple[Hashable, dict]]) -> int:
        """Load recovered entries (WAL replay); returns how many."""
        count = 0
        for key, response in entries:
            self.put(key, response)
            count += 1
        with self._lock:
            self.stats["recovered"] += count
        return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def status(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "capacity": self.capacity, **self.stats}
