"""The multi-client query server: thread-per-connection sessions over
one shared :class:`~repro.query.system.IntensionalQueryProcessor`.

Concurrency model
-----------------

The engine itself (catalog, caches, storage transaction buffer) is a
single-threaded structure, so the server serializes *statement
execution* behind one mutex -- under the GIL there is no intra-process
CPU parallelism to lose -- and provides *transaction isolation* across
statements with strict two-phase relation locks
(:mod:`repro.server.concurrency`):

* a reader S-locks the relations a statement touches (plus the rule
  base) for the statement, or until commit inside an explicit
  transaction;
* a writer X-locks the written relation *and* the transaction token --
  the storage engine buffers one transaction at a time, so write
  transactions serialize while readers of untouched relations stream
  past them;
* uncommitted writes are therefore invisible: any reader of a written
  relation blocks on its S-lock until the writer commits or rolls
  back, which is exactly committed-prefix visibility;
* lock waits time out (deadlock victims); a victim inside an explicit
  transaction is rolled back before the error frame is sent.

Query-cache entries admitted while a transaction is open are tagged
with the owning session (see :class:`repro.cache.core.QueryCache`), so
one session's transaction-private entries are never served to another.

Hot read responses additionally go through a small *wire memo*: the
fully encoded response bytes of a SELECT/ask are reused while the
version vector of the touched relations (and the rule-base version)
is unchanged, skipping re-encoding on the serve path entirely.

Lifecycle: connection limits refuse excess clients with an error
frame; idle sessions are closed after ``idle_timeout_s``; shutdown
drains in-flight requests, rolls back every open transaction, and only
then returns.

Resilience (PR 8)
-----------------

Statement execution sits behind an :class:`AdmissionController`
(bounded in-flight + bounded queue; overflow is shed with a
``RetryLater`` error frame carrying a retry-after hint, and nothing has
executed).  The wire-memo fast path runs *before* admission, so cached
reads keep serving under overload.  Requests may carry ``deadline_ms``;
expired work is refused up front and streaming plans are cancelled
cooperatively (:func:`repro.plan.plans.set_statement_deadline`) at the
earlier of the request deadline and ``statement_timeout_s``.  DML with
an idempotency ``token`` is answered from a :class:`DedupTable` on
retry; the commit journals a ``dedup`` record atomically with the
mutation so exactly-once survives recovery.  ``ask`` degrades to an
extensional-only answer (with a warning) while the gate is saturated.
An idle reaper closes silent connections but never one with a
statement in flight.
"""

from __future__ import annotations

import io
import socket
import threading
import time
from typing import Any

from repro import obs
from repro.errors import (
    DeadlineExceeded, LockTimeout, ProtocolError, ReproError, SqlError,
    StorageError,
)
from repro.server import protocol
from repro.server.concurrency import (
    LockManager, LockTable, RULES_TOKEN, TXN_TOKEN,
)
from repro.server.resilience import (
    AdmissionController, Deadline, DedupTable,
)
from repro.sql import ast
from repro.sql.fingerprint import normalize_sql
from repro.sql.parser import parse_select, parse_statement

__all__ = ["ADMIN_COMMANDS", "IntensionalQueryServer", "Session"]

#: Shell commands the ``admin`` op may run (read/observability surface;
#: transaction control and recovery go through their typed ops or stay
#: server-local).
ADMIN_COMMANDS = frozenset({
    "cache", "help", "hierarchy", "lint", "metrics", "obs", "rules",
    "schema", "show", "slowlog", "tables", "trace", "wal",
})

#: Wire-memo capacity (encoded responses for hot repeated reads).
WIRE_MEMO_CAPACITY = 128


class Session:
    """One client connection: socket, lock manager, transaction state."""

    def __init__(self, server: "IntensionalQueryServer",
                 sock: socket.socket, address, session_id: str):
        self.server = server
        self.sock = sock
        self.address = address
        self.id = session_id
        self.locks = LockManager(server.lock_table, session_id)
        self.in_transaction = False
        self.requests_served = 0
        self.started_at = time.time()
        #: idle-reaper state: a session is only reapable when it is
        #: *between* requests (``in_flight`` false) and its last
        #: activity is older than the idle timeout.
        self.last_activity = time.monotonic()
        self.in_flight = False
        self._closing = False
        self._done = False

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        """The connection loop (runs on the session's own thread)."""
        try:
            self.sock.settimeout(self.server.idle_timeout_s)
            protocol.write_frame(self.sock, {
                "ok": True, "kind": "hello", "server": "repro",
                "session": self.id})
            while not self._closing:
                try:
                    request = protocol.read_frame(self.sock)
                except (TimeoutError, socket.timeout):
                    self._try_send(protocol.error_frame(
                        ProtocolError(
                            f"idle for more than "
                            f"{self.server.idle_timeout_s:g}s; closing"),
                        aborted=self.in_transaction))
                    break
                if request is None:  # clean EOF
                    break
                # Bump activity at statement *start* as well as end:
                # the reaper must never mistake a long-running
                # statement for an idle connection.
                self.in_flight = True
                self.last_activity = time.monotonic()
                try:
                    response, keep_going = self._serve(request)
                finally:
                    self.last_activity = time.monotonic()
                    self.in_flight = False
                if response is not None:
                    self._try_send(response)
                if not keep_going:
                    break
        except (ProtocolError, OSError):
            pass  # peer vanished or spoke garbage; cleanup below
        finally:
            self.cleanup()

    def _try_send(self, message) -> bool:
        """Send a response: a dict is framed, raw ``bytes`` (a wire-memo
        hit, already framed) go out verbatim."""
        try:
            if isinstance(message, (bytes, bytearray)):
                self.sock.sendall(message)
            else:
                protocol.write_frame(self.sock, message)
            return True
        except OSError:
            return False

    def request_shutdown(self) -> None:
        """Ask the session to finish its in-flight request and exit:
        flips the flag a mid-request session checks, and shuts the
        socket's read side so a session blocked in ``recv`` wakes."""
        self._closing = True
        try:
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    def cleanup(self) -> None:
        """Roll back any open transaction, release locks, close."""
        with self.server.engine_lock:
            if self._done:
                return
            self._done = True
            if self.in_transaction:
                try:
                    self.server.system.rollback()
                    obs.counter(
                        "server_disconnect_rollbacks_total",
                        "open transactions rolled back at "
                        "session end").inc()
                except ReproError:
                    pass
                self.in_transaction = False
        self.locks.end()
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._unregister(self)

    # -- request dispatch --------------------------------------------------

    def _serve(self, request: dict) -> tuple[dict | bytes | None, bool]:
        """``(response, keep_connection)`` for one request frame; a
        ``bytes`` response is a pre-encoded frame from the wire memo."""
        op = str(request.get("op", ""))
        start = time.perf_counter()
        self.requests_served += 1
        self.server.stats["requests_total"] += 1
        aborted = False
        try:
            with obs.span("server.request", op=op, session=self.id):
                # Control ops bypass admission and deadlines entirely:
                # a commit must never be shed, and liveness probes must
                # answer even under full load.
                if op == "ping":
                    return {"ok": True, "kind": "ok", "pong": True}, True
                if op == "bye":
                    return {"ok": True, "kind": "ok",
                            "message": "bye"}, False
                if op in ("begin", "commit", "rollback"):
                    return self._transaction_op(op), True
                deadline = self._request_deadline(request)
                if op == "admin":
                    with self.server.admission.admit(deadline):
                        return self._admin(
                            str(request.get("command", ""))), True
                if op == "sql":
                    return self._sql(request, deadline), True
                if op == "ask":
                    return self._ask(request, deadline), True
                if op == "explain":
                    with self.server.admission.admit(deadline):
                        return self._explain(request, deadline), True
                raise ProtocolError(f"unknown op {op!r}")
        except LockTimeout as error:
            # The deadlock policy: the waiter is the victim.  An open
            # transaction cannot be left half-granted -- roll it back
            # so the client can retry from a clean slate.
            aborted = self._abort_on_timeout()
            return protocol.error_frame(error, aborted=aborted), True
        except ReproError as error:
            self.locks.statement_done()
            return protocol.error_frame(error), True
        except Exception as error:  # never leak a traceback mid-protocol
            self.locks.statement_done()
            return protocol.error_frame(error), True
        finally:
            if obs.enabled():
                obs.histogram(
                    "server_request_seconds",
                    "server request latency by op", op=op).observe(
                        time.perf_counter() - start)

    def _abort_on_timeout(self) -> bool:
        if self.in_transaction:
            with self.server.engine_lock:
                try:
                    self.server.system.rollback()
                except ReproError:
                    pass
                self.in_transaction = False
            self.locks.end()
            obs.counter("server_deadlock_victims_total",
                        "transactions rolled back on lock "
                        "timeout").inc()
            return True
        self.locks.statement_done()
        return False

    # -- transaction control -----------------------------------------------

    def _transaction_op(self, op: str) -> dict:
        system = self.server.system
        if op == "begin":
            if self.in_transaction:
                raise StorageError(
                    "a transaction is already open on this session",
                    hint="commit or rollback it first")
            self.locks.begin()
            try:
                # One write transaction at a time: the storage engine
                # has a single transaction buffer, so BEGIN serializes
                # on the transaction token.
                self.locks.xlock(TXN_TOKEN)
                with self.server.engine_lock:
                    system.begin()
            except ReproError:
                self.locks.end()
                raise
            self.in_transaction = True
            return {"ok": True, "kind": "ok",
                    "message": "transaction opened"}
        if not self.in_transaction:
            raise StorageError(
                f"no open transaction to {op}",
                hint="open one with begin first")
        with self.server.engine_lock:
            if op == "commit":
                system.commit()
            else:
                system.rollback()
        self.in_transaction = False
        self.locks.end()
        return {"ok": True, "kind": "ok", "message": op + " done"}

    # -- statements --------------------------------------------------------

    def _sql(self, request: dict,
             deadline: Deadline | None = None) -> dict | bytes:
        text = str(request.get("sql", ""))
        if not text.strip():
            raise SqlError("empty sql request")
        # Memo before admission: a cached read costs no execution slot,
        # so hot reads keep serving even while the gate sheds new work.
        hit = self._memo_fast_path(("sql", normalize_sql(text)))
        if hit is not None:
            return hit
        with self.server.admission.admit(deadline):
            statement = parse_statement(text)
            if isinstance(statement, (ast.SelectStmt, ast.ExplainStmt)):
                return self._read_statement(text, statement, deadline)
            return self._write_statement(text, statement, request,
                                         deadline)

    def _memo_fast_path(self, key: tuple) -> bytes | None:
        """Serve a memoized frame without parsing or locking.

        Safe without S-locks because :meth:`_wire_memo_get` validates
        every dependency's live version under the engine lock: an open
        transaction's writes bump the versions of the relations they
        touched, so a hit can only reproduce committed state -- the
        same answer the lock path would grant by ordering the reader
        before the writer.
        """
        with self.server.engine_lock:
            return self.server._wire_memo_get(key)

    def _read_statement(self, text: str, statement,
                        deadline: Deadline | None = None) -> dict | bytes:
        select = (statement.select
                  if isinstance(statement, ast.ExplainStmt) else statement)
        memo_key = None
        if isinstance(statement, ast.SelectStmt):
            memo_key = ("sql", normalize_sql(text))
        self._lock_tables(select, exclusive=False)
        system = self.server.system
        try:
            with self.server.engine_lock:
                if memo_key is not None:
                    hit = self.server._wire_memo_get(memo_key)
                    if hit is not None:
                        return hit
                degraded = self._degraded()
                rules = None if degraded else system.rules
                if isinstance(statement, ast.ExplainStmt):
                    from repro.plan.explain import explain_select
                    with self._statement_guard(deadline):
                        return {"ok": True, "kind": "text",
                                "text": explain_select(
                                    system.database, select, rules=rules,
                                    analyze=statement.analyze)}
                self._enter_cache_scope()
                try:
                    from repro.sql.executor import execute_select
                    with self._statement_guard(deadline):
                        result = execute_select(system.database, select,
                                                rules=rules)
                finally:
                    self._exit_cache_scope()
                response = {
                    "ok": True, "kind": "relation",
                    "relation": protocol.encode_relation_payload(result)}
                if memo_key is not None:
                    self.server._wire_memo_put(
                        memo_key, response, select, in_tx=self._any_tx())
                return response
        finally:
            self.locks.statement_done()

    def _write_statement(self, text: str, statement, request: dict,
                         deadline: Deadline | None = None) -> dict:
        table = getattr(statement, "table", None)
        if table is None:
            raise SqlError(
                f"unsupported statement {type(statement).__name__}")
        server = self.server
        dedup_key = self._dedup_key(request)
        if dedup_key is not None:
            cached = server.dedup.get(dedup_key)
            if cached is not None:
                return dict(cached, deduplicated=True)
        # Writers serialize behind the transaction token (the storage
        # engine has one transaction buffer): an autocommit write waits
        # for any open explicit transaction to finish, and never joins
        # it by accident.
        self.locks.xlock(TXN_TOKEN)
        self.locks.xlock(table)
        system = server.system
        try:
            record = journaled = False
            with server.engine_lock:
                if dedup_key is not None:
                    # Re-probe under the engine lock: the retried twin
                    # may have committed while this attempt waited.
                    cached = server.dedup.get(dedup_key)
                    if cached is not None:
                        return dict(cached, deduplicated=True)
                self._enter_cache_scope()
                try:
                    from repro.sql.executor import execute_statement
                    storage = system.database.storage
                    # Inside an explicit transaction the statement's
                    # effects can still roll back, so no dedup entry
                    # may outlive it; everywhere else the entry is
                    # recorded -- durably (WAL) when storage is
                    # attached, in memory otherwise (no restart to
                    # survive without storage).
                    record = (dedup_key is not None
                              and not (storage is not None
                                       and storage.in_transaction()))
                    journaled = record and storage is not None
                    with self._statement_guard(deadline):
                        if journaled:
                            # An outer statement scope: the executor's
                            # inner scope exits at depth 1 without
                            # flushing, so the dedup record commits in
                            # the same WAL batch as the mutation.
                            with storage.statement():
                                count = execute_statement(
                                    system.database, text)
                                storage.note_dedup(dedup_key, {
                                    "ok": True, "kind": "count",
                                    "count": int(count)})
                        else:
                            count = execute_statement(
                                system.database, text)
                finally:
                    self._exit_cache_scope()
            server.stats["writes_total"] += 1
            response = {"ok": True, "kind": "count", "count": int(count)}
            if record:
                # Only after a successful commit: an exception above
                # skipped this, so a failed attempt leaves no entry and
                # the retry re-executes from scratch.
                server.dedup.put(dedup_key, response)
            return response
        finally:
            self.locks.statement_done()

    def _ask(self, request: dict,
             deadline: Deadline | None = None) -> dict | bytes:
        text = str(request.get("sql", ""))
        if not text.strip():
            raise SqlError("empty ask request")
        forward = bool(request.get("forward", True))
        backward = bool(request.get("backward", True))
        memo_key = ("ask", normalize_sql(text), forward, backward)
        hit = self._memo_fast_path(memo_key)
        if hit is not None:
            return hit
        with self.server.admission.admit(deadline):
            return self._ask_slow(text, forward, backward, memo_key,
                                  deadline)

    def _ask_slow(self, text: str, forward: bool, backward: bool,
                  memo_key: tuple,
                  deadline: Deadline | None) -> dict | bytes:
        select = parse_select(text)
        self._lock_tables(select, exclusive=False)
        system = self.server.system
        try:
            with self.server.engine_lock:
                hit = self.server._wire_memo_get(memo_key)
                if hit is not None:
                    return hit
                # Degraded serving: while the admission gate is
                # saturated, skip rule inference and answer
                # extensionally -- a smaller, honest answer beats a
                # shed request.
                shedding = self.server.admission.overloaded()
                self._enter_cache_scope()
                try:
                    with self._statement_guard(deadline):
                        result = system.ask(
                            text, forward=forward and not shedding,
                            backward=backward and not shedding)
                finally:
                    self._exit_cache_scope()
                warnings = list(result.warnings)
                if shedding and (forward or backward):
                    warnings.append(
                        "server overloaded: intensional inference "
                        "skipped, extensional answer only")
                response = {
                    "ok": True, "kind": "ask",
                    "relation": protocol.encode_relation_payload(
                        result.extensional),
                    "intensional": [answer.render()
                                    for answer in result.intensional],
                    "summary": result.inference.summary(),
                    "rendered": result.render(),
                    "warnings": warnings}
                if not shedding:
                    # A degraded answer is not the full answer: never
                    # let it shadow future healthy serves.
                    self.server._wire_memo_put(memo_key, response,
                                               select,
                                               in_tx=self._any_tx())
                return response
        finally:
            self.locks.statement_done()

    def _explain(self, request: dict,
                 deadline: Deadline | None = None) -> dict:
        text = str(request.get("sql", ""))
        analyze = bool(request.get("analyze", False))
        statement = parse_statement(text)
        if isinstance(statement, ast.ExplainStmt):
            analyze = analyze or statement.analyze
            statement = statement.select
        if not isinstance(statement, ast.SelectStmt):
            raise SqlError("explain takes a SELECT statement")
        self._lock_tables(statement, exclusive=False)
        try:
            with self.server.engine_lock:
                from repro.plan.explain import explain_select
                system = self.server.system
                rules = None if self._degraded() else system.rules
                with self._statement_guard(deadline):
                    return {"ok": True, "kind": "text",
                            "text": explain_select(system.database,
                                                   statement,
                                                   rules=rules,
                                                   analyze=analyze)}
        finally:
            self.locks.statement_done()

    # -- admin -------------------------------------------------------------

    def _admin(self, command: str) -> dict:
        word, _sep, _rest = command.strip().partition(" ")
        word = word.lower()
        if word == "locks":
            return {"ok": True, "kind": "text",
                    "text": self.server.lock_table.render()}
        if word == "sessions":
            return {"ok": True, "kind": "text",
                    "text": self.server.render_sessions()}
        if word == "status":
            import json
            return {"ok": True, "kind": "text",
                    "text": json.dumps(self.server.status(), indent=2,
                                       sort_keys=True, default=str)}
        if word not in ADMIN_COMMANDS:
            raise ProtocolError(
                f"admin command {word or '(empty)'!r} is not allowed "
                f"over the wire (allowed: locks, sessions, status, "
                f"{', '.join(sorted(ADMIN_COMMANDS))})")
        with self.server.engine_lock:
            out = io.StringIO()
            shell = self.server._admin_shell()
            shell.out = out
            shell.handle("\\" + command.strip())
            return {"ok": True, "kind": "text",
                    "text": out.getvalue().rstrip("\n")}

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _request_deadline(request: dict) -> Deadline | None:
        """The request's remaining time budget, from ``deadline_ms``.

        A request that arrives already expired is refused here, before
        any admission or parsing work -- the integer header says so
        without touching the clock."""
        raw = request.get("deadline_ms")
        if raw is None:
            return None
        try:
            remaining_ms = int(raw)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"deadline_ms must be an integer, got {raw!r}") from None
        if remaining_ms <= 0:
            raise DeadlineExceeded(
                "the request arrived with its deadline already "
                "expired; nothing was executed")
        return Deadline.after(remaining_ms / 1000.0)

    @staticmethod
    def _dedup_key(request: dict) -> str | None:
        """The idempotency key for a DML request, or ``None``.

        Keyed on the *client* id (stable across reconnects), not the
        session id -- a retry after a wire fault arrives on a fresh
        session and must still hit the original entry.
        """
        token = request.get("token")
        if not token:
            return None
        client = str(request.get("client") or "")
        return f"{client}|{token}"

    def _statement_guard(self, deadline: Deadline | None):
        """Arm the cooperative per-statement execution deadline (the
        earlier of the server's statement timeout and the request's
        remaining budget) around one statement's execution."""
        from repro.plan import plans
        budget = self.server.statement_timeout_s
        if deadline is not None:
            remaining = deadline.remaining()
            budget = remaining if budget is None \
                else min(budget, remaining)
        return plans.statement_deadline_scope(budget)

    def _lock_tables(self, select: ast.SelectStmt,
                     exclusive: bool = False) -> None:
        """S-lock (or X-lock) every relation the statement names, in
        sorted order, plus a shared hold on the rule base."""
        names = sorted({table.name.lower() for table in select.tables})
        self.locks.slock(RULES_TOKEN)
        for name in names:
            if exclusive:
                self.locks.xlock(name)
            else:
                self.locks.slock(name)

    def _degraded(self) -> bool:
        storage = self.server.system.database.storage
        return (storage is not None and storage.has_rules
                and storage.rules_stale)

    def _any_tx(self) -> bool:
        storage = self.server.system.database.storage
        return self.in_transaction or (storage is not None
                                       and storage.in_transaction())

    def _enter_cache_scope(self) -> None:
        """Tag query-cache admissions/lookups with this session, so
        transaction-private entries never cross sessions."""
        from repro.cache.core import query_cache
        query_cache(self.server.system.database).current_owner = self.id

    def _exit_cache_scope(self) -> None:
        from repro.cache.core import query_cache
        query_cache(self.server.system.database).current_owner = None

    def describe(self) -> dict:
        return {"id": self.id, "peer": f"{self.address}",
                "requests": self.requests_served,
                "in_transaction": self.in_transaction,
                "in_flight": self.in_flight,
                "idle_s": time.monotonic() - self.last_activity,
                "age_s": time.time() - self.started_at}


class IntensionalQueryServer:
    """Serve one :class:`IntensionalQueryProcessor` to many clients."""

    def __init__(self, system, host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 64,
                 idle_timeout_s: float = 300.0,
                 lock_timeout_s: float = 10.0,
                 drain_timeout_s: float = 5.0,
                 statement_timeout_s: float | None = 30.0,
                 max_in_flight: int = 8,
                 max_queue: int = 16):
        self.system = system
        self.host = host
        self._requested_port = port
        self.max_connections = max_connections
        self.idle_timeout_s = idle_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.statement_timeout_s = statement_timeout_s
        self.admission = AdmissionController(max_in_flight=max_in_flight,
                                             max_queue=max_queue)
        self.dedup = DedupTable()
        storage = getattr(system.database, "storage", None)
        recovered = getattr(storage, "_dedup_recent", None)
        if recovered:
            # Recovery rebuilt exactly the idempotency entries whose
            # DML effects survived; serve retries from them.
            self.dedup.seed(recovered.items())
        self.lock_table = LockTable(timeout_s=lock_timeout_s)
        #: serializes statement execution on the shared engine.
        self.engine_lock = threading.RLock()
        self.stats = {"connections_total": 0, "requests_total": 0,
                      "writes_total": 0, "refused_total": 0}
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._sessions: dict[str, tuple[Session, threading.Thread]] = {}
        self._sessions_guard = threading.Lock()
        self._next_session = 1
        self._closing = threading.Event()
        self._shell = None
        #: key -> (deps, rules_version, encoded response frame).  The
        #: memo stores *encoded bytes*, not the response dict: a hit
        #: skips JSON encoding entirely, which is what lets N client
        #: processes scale past one server-side GIL.
        self._wire_memo: dict[tuple, tuple[tuple, int, bytes]] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "IntensionalQueryServer":
        if self._listener is not None:
            raise StorageError("server is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        self._listener = listener
        self._closing.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._accept_thread.start()
        self._reaper_thread = threading.Thread(
            target=self._reaper_loop, name="repro-server-reaper",
            daemon=True)
        self._reaper_thread.start()
        return self

    def __enter__(self) -> "IntensionalQueryServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        if self._listener is None:
            self.start()
        self._closing.wait()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown
            self._admit(sock, address)

    def _admit(self, sock: socket.socket, address) -> None:
        with self._sessions_guard:
            if self._closing.is_set() or (
                    len(self._sessions) >= self.max_connections):
                reason = ("server is shutting down"
                          if self._closing.is_set() else
                          f"connection limit of {self.max_connections} "
                          f"reached")
                self.stats["refused_total"] += 1
                try:
                    sock.sendall(protocol.encode_frame(
                        protocol.error_frame(ProtocolError(
                            reason, hint="retry later"))))
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                return
            session_id = f"s{self._next_session}"
            self._next_session += 1
            session = Session(self, sock, address, session_id)
            thread = threading.Thread(
                target=session.run, name=f"repro-session-{session_id}",
                daemon=True)
            self._sessions[session_id] = (session, thread)
            self.stats["connections_total"] += 1
        obs.counter("server_connections_total",
                    "client connections accepted").inc()
        self._set_connection_gauge()
        thread.start()

    def _reaper_loop(self) -> None:
        interval = max(0.05, min(1.0, self.idle_timeout_s / 4))
        while not self._closing.wait(interval):
            self._reap_idle()

    def _reap_idle(self) -> None:
        """Close sessions idle past the timeout -- but never one with a
        statement in flight: a slow statement is *work*, not idleness,
        whatever the wall clock says (its activity stamp was bumped at
        statement start precisely so this check cannot misfire on a
        request older than the idle window)."""
        now = time.monotonic()
        with self._sessions_guard:
            sessions = [session for session, _ in self._sessions.values()]
        for session in sessions:
            if session.in_flight:
                continue
            if now - session.last_activity <= self.idle_timeout_s:
                continue
            session._try_send(protocol.error_frame(
                ProtocolError(
                    f"idle for more than {self.idle_timeout_s:g}s; "
                    f"closing"),
                aborted=session.in_transaction))
            session.request_shutdown()
            obs.counter("server_idle_reaped_total",
                        "sessions closed by the idle reaper").inc()

    def _unregister(self, session: Session) -> None:
        with self._sessions_guard:
            self._sessions.pop(session.id, None)
        self._set_connection_gauge()

    def _set_connection_gauge(self) -> None:
        with self._sessions_guard:
            live = len(self._sessions)
        obs.gauge("server_connections",
                  "currently connected sessions").set(live)

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight requests, roll back every
        open transaction, close every connection, and return."""
        if self._listener is None:
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._sessions_guard:
            entries = list(self._sessions.values())
        for session, _thread in entries:
            session.request_shutdown()
        deadline = time.monotonic() + (self.drain_timeout_s if drain
                                       else 0.0)
        for session, thread in entries:
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                # Drain budget exhausted: sever the connection; the
                # session's cleanup still runs on its thread, and the
                # sweep below covers a thread stuck outside it.
                try:
                    session.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        for session, thread in entries:
            thread.join(1.0)
            if thread.is_alive():
                session.cleanup()
        if self._accept_thread is not None:
            self._accept_thread.join(1.0)
        self._accept_thread = None
        if self._reaper_thread is not None:
            self._reaper_thread.join(2.0)
        self._reaper_thread = None
        self._listener = None
        self._wire_memo.clear()

    # -- wire memo ---------------------------------------------------------

    def _memo_deps(self, select: ast.SelectStmt) -> tuple | None:
        database = self.system.database
        deps = []
        for table in select.tables:
            name = table.name.lower()
            if name not in database.catalog:
                return None
            relation = database.catalog.get(name)
            deps.append((name, id(relation), relation.version))
        return tuple(deps)

    def _wire_memo_get(self, key: tuple) -> bytes | None:
        """The encoded response frame for *key*, if its version vector
        (and the rule-base version) still hold.  Call under the engine
        lock."""
        entry = self._wire_memo.get(key)
        if entry is None:
            return None
        deps, rules_version, response = entry
        # Entries are only admitted with a fresh rule base, so a
        # degraded (stale-rules) system invalidates every memo hit.
        if (rules_version != self.system.rules.version
                or self._degraded_now()):
            del self._wire_memo[key]
            return None
        database = self.system.database
        for name, ident, version in deps:
            if name not in database.catalog:
                del self._wire_memo[key]
                return None
            relation = database.catalog.get(name)
            if id(relation) != ident or relation.version != version:
                del self._wire_memo[key]
                return None
        return response

    def _wire_memo_put(self, key: tuple, response: dict,
                       select: ast.SelectStmt, in_tx: bool) -> None:
        """Memoize *response* unless any transaction is open (entries
        derived from uncommitted state must never be shareable) or the
        rule base is degraded."""
        if in_tx or self._degraded_now():
            return
        deps = self._memo_deps(select)
        if deps is None:
            return
        if len(self._wire_memo) >= WIRE_MEMO_CAPACITY:
            self._wire_memo.pop(next(iter(self._wire_memo)))
        self._wire_memo[key] = (deps, self.system.rules.version,
                                protocol.encode_frame(response))

    def _degraded_now(self) -> bool:
        storage = self.system.database.storage
        return (storage is not None and storage.has_rules
                and storage.rules_stale)

    # -- admin/introspection ----------------------------------------------

    def _admin_shell(self):
        if self._shell is None:
            from repro.cli import Shell
            self._shell = Shell(self.system, out=io.StringIO())
        return self._shell

    def sessions(self) -> list[dict]:
        with self._sessions_guard:
            return [session.describe()
                    for session, _thread in self._sessions.values()]

    def render_sessions(self) -> str:
        rows = self.sessions()
        if not rows:
            return "(no connected sessions)"
        lines = []
        for row in sorted(rows, key=lambda entry: entry["id"]):
            lines.append(
                f"{row['id']}: peer={row['peer']} "
                f"requests={row['requests']} "
                f"tx={'open' if row['in_transaction'] else 'none'} "
                f"age={row['age_s']:.1f}s")
        return "\n".join(lines)

    def status(self) -> dict[str, Any]:
        from repro.plan import parallel
        with self._sessions_guard:
            live = len(self._sessions)
        return {
            "address": self.address,
            "connections": live,
            "max_connections": self.max_connections,
            "idle_timeout_s": self.idle_timeout_s,
            "lock_timeout_s": self.lock_table.timeout_s,
            "statement_timeout_s": self.statement_timeout_s,
            "parallel_workers": parallel.workers(),
            "stats": dict(self.stats),
            "locks": self.lock_table.status(),
            "admission": self.admission.status(),
            "dedup": self.dedup.status(),
            "overloaded": self.admission.overloaded(),
            "degraded_rules": self._degraded_now(),
        }
