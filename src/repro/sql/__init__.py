"""SQL SELECT subset.

The paper's worked examples (Section 6) pose queries in SQL against the
ship database; this package parses and executes that dialect::

    from repro.sql import execute_sql

    rows = execute_sql(db, '''
        SELECT SUBMARINE.ID, SUBMARINE.NAME
        FROM SUBMARINE, CLASS
        WHERE SUBMARINE.CLASS = CLASS.CLASS
        AND CLASS.DISPLACEMENT > 8000''')

Supported: ``SELECT [DISTINCT] items FROM tables [WHERE conj/disj of
comparisons] [ORDER BY cols]``, table aliases, ``*``, ``AS`` aliases.
"""

from repro.sql.parser import parse_select, parse_statement
from repro.sql.executor import (
    execute_select, execute_select_legacy, execute_sql, execute_statement,
)
from repro.sql.fingerprint import normalize_sql
from repro.sql import ast

__all__ = [
    "parse_select",
    "parse_statement",
    "execute_sql",
    "execute_select",
    "execute_select_legacy",
    "execute_statement",
    "normalize_sql",
    "ast",
]
