"""AST for the SQL SELECT subset.

Expressions reuse :mod:`repro.relational.expressions`.
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.expressions import Expression


class AggregateCall:
    """``COUNT(*)``, ``COUNT([DISTINCT] expr)``, ``MIN/MAX/SUM/AVG(expr)``.

    ``operand`` of ``None`` means ``COUNT(*)`` (rows, not values).
    """

    OPS = ("count", "min", "max", "sum", "avg")

    def __init__(self, op: str, operand: Expression | None,
                 distinct: bool = False):
        self.op = op.lower()
        self.operand = operand
        self.distinct = distinct

    def render(self) -> str:
        if self.operand is None:
            return f"{self.op.upper()}(*)"
        inner = self.operand.render()
        if self.distinct:
            inner = "DISTINCT " + inner
        return f"{self.op.upper()}({inner})"

    def references(self):
        if self.operand is not None:
            yield from self.operand.references()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AggregateCall)
                and self.op == other.op and self.operand == other.operand
                and self.distinct == other.distinct)

    def __repr__(self) -> str:
        return f"<AggregateCall {self.render()}>"


class SelectItem:
    """One output column: an expression (or aggregate call) plus an
    optional ``AS`` alias.

    A ``*`` select list is represented by ``SelectStmt.star`` instead of
    items.
    """

    def __init__(self, expression: "Expression | AggregateCall",
                 alias: str | None = None):
        self.expression = expression
        self.alias = alias

    def is_aggregate(self) -> bool:
        return isinstance(self.expression, AggregateCall)

    def render(self) -> str:
        if self.alias:
            return f"{self.expression.render()} AS {self.alias}"
        return self.expression.render()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SelectItem)
                and self.expression == other.expression
                and self.alias == other.alias)

    def __repr__(self) -> str:
        return f"<SelectItem {self.render()}>"


class TableRef:
    """A FROM-list entry: relation name plus optional alias."""

    def __init__(self, name: str, alias: str | None = None):
        self.name = name
        self.alias = alias

    @property
    def binding(self) -> str:
        """The qualifier this table binds in the query scope."""
        return self.alias or self.name

    def render(self) -> str:
        if self.alias:
            return f"{self.name} {self.alias}"
        return self.name

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TableRef)
                and self.name.lower() == other.name.lower()
                and (self.alias or "").lower() == (other.alias or "").lower())

    def __repr__(self) -> str:
        return f"<TableRef {self.render()}>"


class InsertStmt:
    """``INSERT INTO table [(columns)] VALUES (...), (...)``."""

    def __init__(self, table: str, columns: Sequence[str] | None,
                 rows: Sequence[Sequence[Expression]]):
        self.table = table
        self.columns = tuple(columns) if columns is not None else None
        self.rows = tuple(tuple(row) for row in rows)

    def render(self) -> str:
        columns = ""
        if self.columns is not None:
            columns = " (" + ", ".join(self.columns) + ")"
        values = ", ".join(
            "(" + ", ".join(cell.render() for cell in row) + ")"
            for row in self.rows)
        return f"INSERT INTO {self.table}{columns} VALUES {values}"

    def __repr__(self) -> str:
        return f"<InsertStmt {self.render()!r}>"


class DeleteStmt:
    """``DELETE FROM table [WHERE q]``."""

    def __init__(self, table: str, where: Expression | None = None):
        self.table = table
        self.where = where

    def render(self) -> str:
        text = f"DELETE FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where.render()}"
        return text

    def __repr__(self) -> str:
        return f"<DeleteStmt {self.render()!r}>"


class UpdateStmt:
    """``UPDATE table SET col = expr, ... [WHERE q]``."""

    def __init__(self, table: str,
                 assignments: Sequence[tuple[str, Expression]],
                 where: Expression | None = None):
        self.table = table
        self.assignments = tuple(assignments)
        self.where = where

    def render(self) -> str:
        body = ", ".join(f"{name} = {expr.render()}"
                         for name, expr in self.assignments)
        text = f"UPDATE {self.table} SET {body}"
        if self.where is not None:
            text += f" WHERE {self.where.render()}"
        return text

    def __repr__(self) -> str:
        return f"<UpdateStmt {self.render()!r}>"


class ExplainStmt:
    """``EXPLAIN [ANALYZE] SELECT ...``: plan, execute, and show the
    plan tree with estimated vs. actual cardinalities; with ``ANALYZE``
    every node is additionally annotated with its measured (inclusive)
    wall time."""

    def __init__(self, select: "SelectStmt", analyze: bool = False):
        self.select = select
        self.analyze = analyze

    def render(self) -> str:
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.select.render()}"

    def __repr__(self) -> str:
        return f"<ExplainStmt {self.render()!r}>"


class SelectStmt:
    """A parsed SELECT statement."""

    def __init__(self, items: Sequence[SelectItem], tables: Sequence[TableRef],
                 where: Expression | None = None,
                 distinct: bool = False,
                 star: bool = False,
                 order_by: Sequence[Expression] = (),
                 group_by: Sequence[Expression] = ()):
        self.items = tuple(items)
        self.tables = tuple(tables)
        self.where = where
        self.distinct = distinct
        self.star = star
        self.order_by = tuple(order_by)
        self.group_by = tuple(group_by)

    def has_aggregates(self) -> bool:
        return any(item.is_aggregate() for item in self.items)

    def render(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append("*" if self.star else
                     ", ".join(item.render() for item in self.items))
        parts.append("FROM " + ", ".join(t.render() for t in self.tables))
        if self.where is not None:
            parts.append("WHERE " + self.where.render())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(
                k.render() for k in self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(
                k.render() for k in self.order_by))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"<SelectStmt {self.render()!r}>"
