"""Executor for the SQL SELECT subset.

SELECT statements are normally routed through the cost-based query
planner (:mod:`repro.plan`), which consults per-relation statistics,
picks index access paths, orders joins by estimated cardinality, and
applies rule-driven semantic optimization.  The original heuristic
pipeline is kept as the *legacy* path (``use_planner=False`` or
:data:`USE_PLANNER`): WHERE conjuncts are classified into per-table
filters (pushed down before joining, with a hash-index fast path for
equality filters), equi-join edges (executed as hash joins in
connectivity order), and residual predicates (evaluated on the joined
rows).  The two paths share the scope, conjunct-classification, and
projection machinery below, so they are cross-checkable row for row.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterable, NamedTuple, Sequence

from repro import obs
from repro.errors import SqlError
from repro.relational import columnar, compiled, kernels
from repro.relational.database import Database
from repro.relational.datatypes import infer_type, INTEGER, REAL
from repro.relational.expressions import (
    ColumnRef, Comparison, Environment, Expression, Literal, conjuncts,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql import ast
from repro.sql.parser import parse_select

#: Default SELECT execution path.  ``True`` routes through the
#: cost-based planner in :mod:`repro.plan`; ``False`` restores the
#: legacy heuristic executor.  Either way the per-call
#: ``use_planner=`` argument wins.
USE_PLANNER = True


def execute_sql(database: Database, text: str,
                result_name: str = "result") -> Relation:
    """Parse and execute a SELECT statement against *database*."""
    return execute_select(database, parse_select(text),
                          result_name=result_name)


def execute_statement(database: Database, text: str,
                      result_name: str = "result",
                      rules=None) -> Relation | int | str:
    """Parse and execute any supported statement.

    SELECT returns a :class:`Relation`; INSERT/DELETE/UPDATE return the
    affected row count; ``EXPLAIN SELECT ...`` returns the rendered plan
    tree as a string (pass *rules* to enable semantic optimization).
    """
    from repro.sql.parser import parse_statement
    statement = parse_statement(text)
    if isinstance(statement, ast.ExplainStmt):
        from repro.plan.explain import explain_select
        kind = "explain_analyze" if statement.analyze else "explain"
        obs.counter("queries_total", "statements executed by type",
                    type=kind).inc()
        return explain_select(database, statement.select, rules=rules,
                              analyze=statement.analyze)
    if isinstance(statement, ast.SelectStmt):
        obs.counter("queries_total", "statements executed by type",
                    type="select").inc()
        return execute_select(database, statement,
                              result_name=result_name, rules=rules)
    obs.counter("queries_total", "statements executed by type",
                type=type(statement).__name__.replace(
                    "Stmt", "").lower()).inc()
    # DML runs inside a storage statement scope when the database is
    # attached to a durable engine: on success the scope autocommits to
    # the WAL (unless an explicit transaction is open); on error it
    # rolls the statement's mutations back, so a statement is all or
    # nothing even when it touched the relation before failing.
    scope = (database.storage.statement() if database.storage is not None
             else contextlib.nullcontext())
    with scope:
        if isinstance(statement, ast.InsertStmt):
            return _execute_insert(database, statement)
        if isinstance(statement, ast.DeleteStmt):
            return _execute_delete(database, statement)
        if isinstance(statement, ast.UpdateStmt):
            return _execute_update(database, statement)
        raise SqlError(f"unsupported statement {statement!r}")


def _constant(expression, what: str):
    from repro.relational.expressions import Environment, Literal
    if isinstance(expression, Literal):
        return expression.value
    try:
        return expression.evaluate(Environment())
    except Exception as error:
        raise SqlError(
            f"{what} must be a constant expression: "
            f"{expression.render()}") from error


def _execute_insert(database: Database, statement: ast.InsertStmt) -> int:
    relation = database.relation(statement.table)
    schema = relation.schema
    if statement.columns is not None:
        for name in statement.columns:
            schema.position(name)  # raises on unknown columns
    batch = []
    for row in statement.rows:
        if statement.columns is None:
            if len(row) != schema.arity:
                raise SqlError(
                    f"INSERT expects {schema.arity} values, "
                    f"got {len(row)}")
            batch.append([_constant(cell, "VALUES") for cell in row])
            continue
        if len(row) != len(statement.columns):
            raise SqlError("VALUES row does not match the column list")
        record = {name.lower(): _constant(cell, "VALUES")
                  for name, cell in zip(statement.columns, row)}
        batch.append([record.get(column.key)
                      for column in schema.columns])
    relation.insert_many(batch)
    return len(batch)


def _row_env(relation: Relation, row: tuple):
    from repro.relational.expressions import Environment
    return Environment.for_row(relation.schema, row)


def _where_test(relation: Relation, where: Expression):
    """Compiled row predicate for a single-relation WHERE clause."""
    return compiled.compile_predicate(
        where,
        compiled.schema_resolver(relation.schema, [relation.schema.name]),
        fallback=lambda: lambda row: where.evaluate(_row_env(relation, row)))


def _execute_delete(database: Database, statement: ast.DeleteStmt) -> int:
    relation = database.relation(statement.table)
    if statement.where is None:
        count = len(relation)
        relation.clear()
        return count
    return relation.delete_where(_where_test(relation, statement.where))


def _execute_update(database: Database, statement: ast.UpdateStmt) -> int:
    relation = database.relation(statement.table)
    positions = {}
    for name, _expression in statement.assignments:
        positions[name.lower()] = relation.schema.position(name)

    def updated(row: tuple):
        values = list(row)
        env = _row_env(relation, row)
        for name, expression in statement.assignments:
            values[positions[name.lower()]] = expression.evaluate(env)
        return values

    if statement.where is None:
        return relation.replace_where(lambda row: True, updated)
    return relation.replace_where(_where_test(relation, statement.where),
                                  updated)


def execute_select(database: Database, statement: ast.SelectStmt,
                   result_name: str = "result",
                   use_planner: bool | None = None,
                   rules=None) -> Relation:
    """Execute a parsed SELECT statement.

    With ``use_planner`` unset, :data:`USE_PLANNER` decides the path.
    *rules* (a :class:`~repro.rules.ruleset.RuleSet`) enables the
    planner's semantic optimization; the legacy path ignores it.
    """
    if use_planner is None:
        use_planner = USE_PLANNER
    start = time.perf_counter()
    if use_planner:
        # The planner path goes through the version-aware query cache:
        # repeated statements reuse the compiled plan, and expensive
        # results are served straight from the result cache while the
        # relations they touched are unchanged (REPRO_CACHE=off makes
        # this a plain pass-through to plan_select).
        from repro.cache.core import query_cache
        result = query_cache(database).execute_select(
            statement, rules=rules, result_name=result_name)
    else:
        result = execute_select_legacy(database, statement, result_name)
    if obs.enabled():
        duration = time.perf_counter() - start
        obs.counter("select_path_total", "SELECT executions by path",
                    path="planner" if use_planner else "legacy").inc()
        obs.observe_query(statement.render(), duration,
                          rows=len(result))
    return result


def execute_select_legacy(database: Database, statement: ast.SelectStmt,
                          result_name: str = "result") -> Relation:
    """The pre-planner heuristic pipeline (kept for cross-checking)."""
    scope = Scope(database, statement.tables)
    combined = _join(scope, statement.where)
    return project_statement(scope, statement, combined.bindings,
                             combined.rows, result_name)


class Scope:
    """FROM-clause bindings: qualifier -> relation."""

    def __init__(self, database: Database, tables: Sequence[ast.TableRef]):
        if not tables:
            raise SqlError("FROM clause must name at least one relation")
        self.database = database
        self.bindings: list[str] = []
        self.relations: dict[str, Relation] = {}
        for table in tables:
            binding = table.binding.lower()
            if binding in self.relations:
                raise SqlError(f"duplicate FROM binding {table.binding!r}")
            self.bindings.append(binding)
            self.relations[binding] = database.relation(table.name)

    def resolve(self, ref: ColumnRef) -> str:
        """Binding that *ref* refers to."""
        if ref.qualifier is not None:
            binding = ref.qualifier.lower()
            if binding not in self.relations:
                raise SqlError(f"unknown table or alias {ref.qualifier!r}")
            if not self.relations[binding].schema.has_column(ref.column):
                raise SqlError(
                    f"{ref.qualifier} has no column {ref.column!r}")
            return binding
        hits = [binding for binding in self.bindings
                if self.relations[binding].schema.has_column(ref.column)]
        if not hits:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise SqlError(f"ambiguous column {ref.column!r}")
        return hits[0]

    def bindings_of(self, expression: Expression) -> set[str]:
        return {self.resolve(ref) for ref in expression.references()}

    def environment(self, bindings: Sequence[str],
                    rows: Sequence[tuple]) -> Environment:
        env = Environment()
        for binding, row in zip(bindings, rows):
            env.bind(binding, self.relations[binding].schema, row)
        return env


class ConjunctClasses(NamedTuple):
    """WHERE conjuncts classified for planning/execution."""

    filters: dict[str, list[Expression]]  # binding -> pushed-down filters
    edges: list[tuple[str, str, str, str]]  # (bind_a, col_a, bind_b, col_b)
    residual: list[Expression]  # multi-binding, non-equi-join


def classify_conjuncts(scope: Scope,
                       where: Expression | None) -> ConjunctClasses:
    """Classify WHERE conjuncts into per-binding filters, equi-join
    edges, and residual predicates (shared by both executor paths)."""
    filters: dict[str, list[Expression]] = {b: [] for b in scope.bindings}
    edges: list[tuple[str, str, str, str]] = []
    residual: list[Expression] = []

    for conjunct in conjuncts(where):
        used = scope.bindings_of(conjunct)
        if len(used) <= 1:
            target = next(iter(used), scope.bindings[0])
            filters[target].append(conjunct)
            continue
        if (len(used) == 2 and isinstance(conjunct, Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)):
            bind_a = scope.resolve(conjunct.left)
            bind_b = scope.resolve(conjunct.right)
            edges.append((bind_a, conjunct.left.column,
                          bind_b, conjunct.right.column))
            continue
        residual.append(conjunct)
    return ConjunctClasses(filters, edges, residual)


def equality_probe(conjunct: Expression) -> tuple[str, object] | None:
    """``(column, value)`` when *conjunct* is ``column = literal`` (either
    operand order), else ``None``.  NULL literals never match anything
    under comparison semantics, so they are not probes."""
    if not (isinstance(conjunct, Comparison) and conjunct.op == "="):
        return None
    if (isinstance(conjunct.left, Literal)
            and isinstance(conjunct.right, ColumnRef)):
        conjunct = conjunct.flipped()
    if (isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, Literal)
            and conjunct.right.value is not None):
        return conjunct.left.column, conjunct.right.value
    return None


def _filtered_rows(scope: Scope, binding: str,
                   predicates: list[Expression]) -> list[tuple]:
    """Pushed-down filters for one binding, probing a cached
    :class:`HashIndex` for the first ``column = literal`` conjunct
    instead of scanning the whole relation.  Remaining predicates are
    compiled once into positional closures (interpreted per-row
    environments only as a fallback)."""
    relation = scope.relations[binding]
    rows: Sequence[tuple] = relation.rows
    remaining = list(predicates)
    probed = False
    for conjunct in remaining:
        probe = equality_probe(conjunct)
        if probe is not None:
            column, value = probe
            index = scope.database.indexes.hash_index(relation, column)
            rows = index.lookup(value)
            remaining.remove(conjunct)
            probed = True
            break
    if (remaining and not probed and compiled.ENABLED
            and columnar.enabled()):
        # Vectorized fast path: evaluate the conjunction as column
        # kernels over the relation's store and gather survivors.  An
        # index probe already shrank ``rows`` to a subset the store
        # cannot address, so kernels only engage on full scans.
        try:
            store = relation.column_store()
            selection = kernels.to_selection(kernels.predicate_mask(
                store, remaining, [binding]))
        except kernels.UnsupportedKernel:
            pass
        else:
            if selection is None:
                return list(store.rows)
            store_rows = store.rows
            return [store_rows[i] for i in selection]
    resolve = compiled.schema_resolver(relation.schema, [binding])
    for predicate in remaining:
        test = compiled.compile_predicate(
            predicate, resolve,
            fallback=lambda p=predicate: lambda row: p.evaluate(
                _single_env(scope, binding, row)))
        rows = [row for row in rows if test(row)]
    return list(rows)


def _join(scope: Scope, where: Expression | None) -> "_Combined":
    """Join every FROM binding, using classified WHERE conjuncts."""
    filters, edges, residual = classify_conjuncts(scope, where)
    residual = list(residual)

    # Pre-filter each relation.
    filtered: dict[str, list[tuple]] = {}
    for binding in scope.bindings:
        filtered[binding] = _filtered_rows(scope, binding,
                                           filters[binding])

    combined = _Combined(scope, [scope.bindings[0]],
                         [(row,) for row in filtered[scope.bindings[0]]])
    remaining = list(scope.bindings[1:])
    pending_edges = list(edges)
    while remaining:
        progressed = False
        for binding in list(remaining):
            usable = [edge for edge in pending_edges
                      if _edge_connects(edge, combined.bindings, binding)]
            if usable:
                combined = combined.hash_join(binding, filtered[binding],
                                              usable)
                pending_edges = [e for e in pending_edges if e not in usable]
                remaining.remove(binding)
                progressed = True
                break
        if not progressed:
            binding = remaining.pop(0)
            combined = combined.cross(binding, filtered[binding])

    # Any join edges between already-joined tables that were not used as
    # hash keys (e.g. cycles) become residual predicates.
    for bind_a, col_a, bind_b, col_b in pending_edges:
        residual.append(Comparison(
            "=", ColumnRef(col_a, bind_a), ColumnRef(col_b, bind_b)))

    if residual:
        resolve = compiled.slot_resolver(
            [(binding, scope.relations[binding].schema)
             for binding in combined.bindings])
        tests = [compiled.compile_predicate(
                     predicate, resolve,
                     fallback=lambda p=predicate: lambda rows: p.evaluate(
                         scope.environment(combined.bindings, rows)))
                 for predicate in residual]
        combined.rows = [rows for rows in combined.rows
                         if all(test(rows) for test in tests)]
    return combined


def _edge_connects(edge: tuple[str, str, str, str],
                   joined: Sequence[str], candidate: str) -> bool:
    bind_a, _col_a, bind_b, _col_b = edge
    return ((bind_a in joined and bind_b == candidate)
            or (bind_b in joined and bind_a == candidate))


def _single_env(scope: Scope, binding: str, row: tuple) -> Environment:
    env = Environment()
    env.bind(binding, scope.relations[binding].schema, row)
    env.bind("", scope.relations[binding].schema, row)
    return env


class _Combined:
    """Intermediate join state: per-binding row tuples, aligned."""

    def __init__(self, scope: Scope, bindings: list[str],
                 rows: list[tuple]):
        self.scope = scope
        self.bindings = bindings
        self.rows = rows

    def hash_join(self, binding: str, new_rows: list[tuple],
                  edges: list[tuple[str, str, str, str]]) -> "_Combined":
        # Normalize edges so the existing side comes first.
        keys: list[tuple[int, int, int]] = []  # (slot, col_pos_old, col_pos_new)
        new_schema = self.scope.relations[binding].schema
        for bind_a, col_a, bind_b, col_b in edges:
            if bind_b == binding:
                old_bind, old_col, new_col = bind_a, col_a, col_b
            else:
                old_bind, old_col, new_col = bind_b, col_b, col_a
            slot = self.bindings.index(old_bind)
            old_pos = self.scope.relations[old_bind].schema.position(old_col)
            keys.append((slot, old_pos, new_schema.position(new_col)))

        buckets: dict[tuple, list[tuple]] = {}
        for row in new_rows:
            key = tuple(row[new_pos] for _s, _o, new_pos in keys)
            if any(value is None for value in key):
                continue
            buckets.setdefault(key, []).append(row)

        out: list[tuple] = []
        for rows in self.rows:
            key = tuple(rows[slot][old_pos] for slot, old_pos, _n in keys)
            if any(value is None for value in key):
                continue
            for match in buckets.get(key, ()):
                out.append(rows + (match,))
        return _Combined(self.scope, self.bindings + [binding], out)

    def cross(self, binding: str, new_rows: list[tuple]) -> "_Combined":
        out = [rows + (row,)
               for rows in self.rows for row in new_rows]
        return _Combined(self.scope, self.bindings + [binding], out)


def project_statement(scope: Scope, statement: ast.SelectStmt,
                      bindings: Sequence[str], rows: Iterable[tuple],
                      result_name: str) -> Relation:
    """Evaluate the SELECT list (plain or aggregated), ORDER BY and
    DISTINCT over joined *rows* (aligned per-binding row tuples).

    *rows* may be any single-pass iterable -- in particular the lazy
    batch stream of a plan tree -- and is consumed exactly once.

    Shared by the legacy executor and the planner's ProjectPlan so both
    paths produce byte-identical relations.
    """
    if statement.has_aggregates() or statement.group_by:
        return _project_grouped(scope, statement, bindings, rows,
                                result_name)
    return _project(scope, statement, bindings, rows, result_name)


def _slot_resolver(scope: Scope, bindings: Sequence[str]):
    return compiled.slot_resolver(
        [(binding, scope.relations[binding].schema)
         for binding in bindings])


def _projection_items(scope: Scope,
                      statement: ast.SelectStmt) -> list[ast.SelectItem]:
    """The effective SELECT items (star expanded in FROM order), with
    every output and sort reference validated up-front so unknown
    aliases, unknown columns and ambiguities surface as SqlError.

    Shared by the row-path projection and the vectorized fast path
    (:mod:`repro.plan.vectorized`), so both validate identically.
    """
    if statement.star:
        # Expand in FROM order (scope.bindings), not join order: the
        # planner may reorder joins, but * output columns must not move.
        items = []
        for binding in scope.bindings:
            relation = scope.relations[binding]
            for column in relation.schema.columns:
                items.append(ast.SelectItem(
                    ColumnRef(column.name, qualifier=binding)))
    else:
        items = list(statement.items)

    for item in items:
        for ref in item.expression.references():
            scope.resolve(ref)
    for key in statement.order_by:
        for ref in key.references():
            scope.resolve(ref)
    return items


def _plain_result(scope: Scope, statement: ast.SelectStmt,
                  items: Sequence[ast.SelectItem], names: Sequence[str],
                  rows: list[tuple], result_name: str) -> Relation:
    """Column typing + DISTINCT tail of the plain projection (shared
    with the vectorized fast path so output schemas stay identical)."""
    columns = []
    for position, (name, item) in enumerate(zip(names, items)):
        datatype = None
        expression = item.expression
        if isinstance(expression, ColumnRef):
            binding = scope.resolve(expression)
            datatype = scope.relations[binding].schema.column(
                expression.column).datatype
        if datatype is None:
            sample = next((row[position] for row in rows
                           if row[position] is not None), None)
            datatype = infer_type(sample) if sample is not None else REAL
        columns.append(Column(name, datatype))
    result = Relation(RelationSchema(result_name, columns), rows,
                      validated=True)
    if statement.distinct:
        result = result.distinct()
    return result


def _project(scope: Scope, statement: ast.SelectStmt,
             bindings: Sequence[str], input_rows: Iterable[tuple],
             result_name: str) -> Relation:
    items = _projection_items(scope, statement)
    names = _output_names(items)
    rows: list[tuple] = []
    sort_values: list[tuple] = []
    # Compile the SELECT list and sort keys into positional closures;
    # all-or-none, since a single interpreted item needs the per-row
    # environment built anyway.
    resolve = _slot_resolver(scope, bindings)
    item_fns = compiled.compile_expressions(
        [item.expression for item in items], resolve)
    order_fns = compiled.compile_expressions(
        list(statement.order_by), resolve)
    if item_fns is not None and order_fns is not None:
        for row_group in input_rows:
            rows.append(tuple(fn(row_group) for fn in item_fns))
            if order_fns:
                sort_values.append(tuple(
                    fn(row_group) for fn in order_fns))
    else:
        for row_group in input_rows:
            env = scope.environment(bindings, row_group)
            rows.append(tuple(item.expression.evaluate(env)
                              for item in items))
            if statement.order_by:
                sort_values.append(tuple(
                    key.evaluate(env) for key in statement.order_by))

    if statement.order_by:
        order = sorted(range(len(rows)),
                       key=lambda i: tuple(
                           (v is None, v if v is not None else 0)
                           for v in sort_values[i]))
        rows = [rows[i] for i in order]

    return _plain_result(scope, statement, items, names, rows, result_name)


def _validate_grouped(scope: Scope,
                      statement: ast.SelectStmt) -> list[Expression]:
    """Up-front validation shared by the grouped projection and the
    vectorized aggregate fast path: star/aggregate mixing, the
    syntactic GROUP BY membership check, and reference resolution.
    Returns the GROUP BY expressions."""
    if statement.star:
        raise SqlError("SELECT * cannot be combined with aggregates")
    group_exprs = list(statement.group_by)
    group_renders = [e.render().lower() for e in group_exprs]
    for item in statement.items:
        if item.is_aggregate():
            continue
        if item.expression.render().lower() not in group_renders:
            raise SqlError(
                f"{item.expression.render()} must appear in GROUP BY "
                "or inside an aggregate")

    for item in statement.items:
        for ref in item.expression.references():
            scope.resolve(ref)
    for expression in group_exprs:
        for ref in expression.references():
            scope.resolve(ref)
    return group_exprs


def _grouped_result(scope: Scope, statement: ast.SelectStmt,
                    names: Sequence[str], rows: list[tuple],
                    result_name: str) -> Relation:
    """Column typing + DISTINCT tail of the grouped projection (shared
    with the vectorized aggregate fast path)."""
    columns = []
    for position, (name, item) in enumerate(zip(names, statement.items)):
        datatype = None
        if item.is_aggregate():
            call = item.expression
            if call.op == "count":
                datatype = INTEGER
            elif call.op in ("sum", "avg"):
                datatype = REAL
            elif isinstance(call.operand, ColumnRef):
                binding = scope.resolve(call.operand)
                datatype = scope.relations[binding].schema.column(
                    call.operand.column).datatype
        elif isinstance(item.expression, ColumnRef):
            binding = scope.resolve(item.expression)
            datatype = scope.relations[binding].schema.column(
                item.expression.column).datatype
        if datatype is None:
            sample = next((row[position] for row in rows
                           if row[position] is not None), None)
            datatype = infer_type(sample) if sample is not None else REAL
        columns.append(Column(name, datatype))
    result = Relation(RelationSchema(result_name, columns), rows,
                      validated=True)
    if statement.distinct:
        result = result.distinct()
    return result


def _project_grouped(scope: Scope, statement: ast.SelectStmt,
                     bindings: Sequence[str], input_rows: Iterable[tuple],
                     result_name: str) -> Relation:
    """Aggregate projection, with optional GROUP BY.

    Non-aggregate select items must appear in the GROUP BY list
    (matched syntactically).  Without GROUP BY the whole input is one
    group and every item must be an aggregate; an empty input then
    yields the conventional single row (COUNT = 0, others NULL).
    """
    group_exprs = _validate_grouped(scope, statement)

    resolve = _slot_resolver(scope, bindings)
    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    group_fns = compiled.compile_expressions(group_exprs, resolve)
    if group_fns is not None:
        for row_group in input_rows:
            key = tuple(fn(row_group) for fn in group_fns)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row_group)
    else:
        for row_group in input_rows:
            env = scope.environment(bindings, row_group)
            key = tuple(e.evaluate(env) for e in group_exprs)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row_group)
    if not group_exprs and not order:
        groups[()] = []
        order.append(())

    # Compile each aggregate operand once (per item, not per member row);
    # None entries take the interpreted per-member environment path.
    operand_fns: dict[int, object] = {}
    for index, item in enumerate(statement.items):
        if item.is_aggregate() and item.expression.operand is not None:
            fns = compiled.compile_expressions(
                [item.expression.operand], resolve)
            operand_fns[index] = fns[0] if fns else None

    names = _output_names(statement.items)
    rows: list[tuple] = []
    for key in order:
        members = groups[key]
        out: list = []
        representative = members[0] if members else None
        env = (scope.environment(bindings, representative)
               if representative is not None else None)
        for index, item in enumerate(statement.items):
            if not item.is_aggregate():
                out.append(item.expression.evaluate(env))
                continue
            call: ast.AggregateCall = item.expression
            if call.operand is None:
                out.append(len(members))
                continue
            fn = operand_fns.get(index)
            if fn is not None:
                values = [fn(row_group) for row_group in members]
            else:
                values = [call.operand.evaluate(
                              scope.environment(bindings, row_group))
                          for row_group in members]
            out.append(_fold_sql_aggregate(call, values))
        rows.append(tuple(out))

    if statement.order_by:
        def sort_key(pair):
            key, _row = pair
            env = (scope.environment(bindings, groups[key][0])
                   if groups[key] else None)
            values = []
            for expression in statement.order_by:
                value = expression.evaluate(env) if env else None
                values.append((value is None,
                               value if value is not None else 0))
            return tuple(values)

        paired = sorted(zip(order, rows), key=sort_key)
        rows = [row for _key, row in paired]

    return _grouped_result(scope, statement, names, rows, result_name)


def _fold_sql_aggregate(call: ast.AggregateCall, values: list):
    present = [value for value in values if value is not None]
    if call.distinct:
        present = list(dict.fromkeys(present))
    if call.op == "count":
        return len(present)
    if not present:
        return None
    if call.op == "min":
        return min(present)
    if call.op == "max":
        return max(present)
    if call.op == "sum":
        return float(sum(present))
    if call.op == "avg":
        return float(sum(present)) / len(present)
    raise SqlError(f"unknown aggregate {call.op!r}")


def _output_names(items: Sequence[ast.SelectItem]) -> list[str]:
    names: list[str] = []
    used: set[str] = set()
    for index, item in enumerate(items):
        if item.alias:
            name = item.alias
        elif isinstance(item.expression, ColumnRef):
            name = item.expression.column
        elif isinstance(item.expression, ast.AggregateCall):
            name = item.expression.op
        else:
            name = f"col{index + 1}"
        base = name
        suffix = 2
        while name.lower() in used:
            name = f"{base}_{suffix}"
            suffix += 1
        used.add(name.lower())
        names.append(name)
    return names
