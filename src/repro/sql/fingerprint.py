"""Normalized SQL fingerprints for the query cache.

Two spellings of the same statement -- differing in case, whitespace,
or a trailing semicolon -- should hit the same cache entry, so the
cache keys on a *fingerprint* rather than the raw text.  Literals are
deliberately preserved verbatim (case included): plans and results are
literal-specific, so ``WHERE Label = 'G01'`` and ``WHERE Label =
'g01'`` must never collide.

The fingerprint is intentionally cheaper than a parse: one pass over
the characters, no tokenizer.  Parsed statements already have a
canonical spelling (``Statement.render()``), which the cache uses when
it holds an AST; :func:`normalize_sql` covers the raw-text entry points
(``ask()``, ``execute_sql``) where caching wants to happen *before*
paying for the parse.
"""

from __future__ import annotations

__all__ = ["normalize_sql"]


def normalize_sql(text: str) -> str:
    """Case-fold and whitespace-collapse *text* outside string literals.

    - runs of whitespace become one space; leading/trailing whitespace
      and trailing semicolons are dropped;
    - everything outside quotes is lowercased;
    - single- and double-quoted literals are copied verbatim,
      doubled-quote escapes (``'it''s'``) included.
    """
    out: list[str] = []
    pending_space = False
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in "'\"":
            # Copy the whole literal verbatim, honoring '' / "" escapes.
            j = i + 1
            while j < n:
                if text[j] == ch:
                    if j + 1 < n and text[j + 1] == ch:
                        j += 2
                        continue
                    break
                j += 1
            if pending_space and out:
                out.append(" ")
            pending_space = False
            out.append(text[i:min(j, n - 1) + 1])
            i = j + 1
            continue
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.lower())
        i += 1
    normalized = "".join(out)
    while normalized.endswith(";"):
        normalized = normalized[:-1].rstrip()
    return normalized
