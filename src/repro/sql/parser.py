"""Recursive-descent parser for the SQL SELECT subset.

The grammar mirrors the QUEL expression grammar (shared comparison and
arithmetic forms) with SQL statement syntax on top.  One quirk of the
paper is accommodated: Example 1 prints ``CLASS,DISPLACEMENT`` (a comma
where a dot was clearly intended); we do *not* accept that typo -- the
examples in this repository use the corrected ``CLASS.DISPLACEMENT``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.langutil import Scanner, TokenStream, TokenKind
from repro.sql import ast
from repro.relational.expressions import (
    And, Arithmetic, ColumnRef, Comparison, Expression, IsNull, Literal,
    Not, Or,
)

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".",
              "+", "-", "*", "/", ";")
_SCANNER = Scanner(operators=_OPERATORS)

_KEYWORDS = {
    "select", "distinct", "from", "where", "and", "or", "not", "as",
    "order", "by", "asc", "desc", "between", "in", "group",
    "count", "min", "max", "sum", "avg",
    "insert", "into", "values", "delete", "update", "set", "null", "is",
    "explain",
}

_COMPARISON_TOKENS = {"=": "=", "!=": "!=", "<>": "!=", "<": "<",
                      "<=": "<=", ">": ">", ">=": ">="}


def parse_select(text: str) -> ast.SelectStmt:
    """Parse one SELECT statement (trailing ``;`` allowed)."""
    statement = parse_statement(text)
    if not isinstance(statement, ast.SelectStmt):
        stream = TokenStream(_SCANNER.scan(text))
        stream.fail("expected a SELECT statement")
    return statement


def parse_statement(text: str
                    ) -> "ast.SelectStmt | ast.InsertStmt | " \
                         "ast.DeleteStmt | ast.UpdateStmt | ast.ExplainStmt":
    """Parse one SQL statement: SELECT, INSERT, DELETE, UPDATE, or
    EXPLAIN SELECT."""
    stream = TokenStream(_SCANNER.scan(text))
    if stream.at_keyword("select"):
        statement = _select(stream)
    elif stream.accept_keyword("explain"):
        # ANALYZE is contextual (not reserved): it only means something
        # directly after EXPLAIN, so columns named "analyze" stay legal.
        analyze = (stream.current.kind is TokenKind.IDENT
                   and stream.current.text.lower() == "analyze")
        if analyze:
            stream.advance()
        statement = ast.ExplainStmt(_select(stream), analyze=analyze)
    elif stream.at_keyword("insert"):
        statement = _insert(stream)
    elif stream.at_keyword("delete"):
        statement = _delete(stream)
    elif stream.at_keyword("update"):
        statement = _update(stream)
    else:
        stream.fail("expected SELECT, EXPLAIN, INSERT, DELETE or UPDATE")
        raise AssertionError("unreachable")
    stream.accept_op(";")
    if not stream.at_end():
        stream.fail("unexpected trailing input after the statement")
    return statement


def _insert(stream: TokenStream) -> ast.InsertStmt:
    stream.expect_keyword("insert")
    stream.expect_keyword("into")
    table = stream.expect_ident("relation name").text
    columns = None
    if stream.accept_op("("):
        columns = [stream.expect_ident("column name").text]
        while stream.accept_op(","):
            columns.append(stream.expect_ident("column name").text)
        stream.expect_op(")")
    stream.expect_keyword("values")
    rows = [_value_row(stream)]
    while stream.accept_op(","):
        rows.append(_value_row(stream))
    return ast.InsertStmt(table, columns, rows)


def _value_row(stream: TokenStream) -> list[Expression]:
    stream.expect_op("(")
    cells = [_value_expression(stream)]
    while stream.accept_op(","):
        cells.append(_value_expression(stream))
    stream.expect_op(")")
    return cells


def _value_expression(stream: TokenStream) -> Expression:
    if stream.accept_keyword("null"):
        return Literal(None)
    return _expression(stream)


def _delete(stream: TokenStream) -> ast.DeleteStmt:
    stream.expect_keyword("delete")
    stream.expect_keyword("from")
    table = stream.expect_ident("relation name").text
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    return ast.DeleteStmt(table, where)


def _update(stream: TokenStream) -> ast.UpdateStmt:
    stream.expect_keyword("update")
    table = stream.expect_ident("relation name").text
    stream.expect_keyword("set")
    assignments = [_assignment(stream)]
    while stream.accept_op(","):
        assignments.append(_assignment(stream))
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    return ast.UpdateStmt(table, assignments, where)


def _assignment(stream: TokenStream) -> tuple[str, Expression]:
    name = stream.expect_ident("column name").text
    stream.expect_op("=")
    return name, _value_expression(stream)


def _select(stream: TokenStream) -> ast.SelectStmt:
    stream.expect_keyword("select")
    distinct = stream.accept_keyword("distinct")
    star = False
    items: list[ast.SelectItem] = []
    if stream.accept_op("*"):
        star = True
    else:
        items.append(_select_item(stream))
        while stream.accept_op(","):
            items.append(_select_item(stream))
    stream.expect_keyword("from")
    tables = [_table_ref(stream)]
    while stream.accept_op(","):
        tables.append(_table_ref(stream))
    where = None
    if stream.accept_keyword("where"):
        where = _qualification(stream)
    group_by: list[Expression] = []
    if stream.accept_keyword("group"):
        stream.expect_keyword("by")
        group_by.append(_expression(stream))
        while stream.accept_op(","):
            group_by.append(_expression(stream))
    order_by: list[Expression] = []
    if stream.accept_keyword("order"):
        stream.expect_keyword("by")
        order_by.append(_expression(stream))
        stream.accept_keyword("asc")
        while stream.accept_op(","):
            order_by.append(_expression(stream))
            stream.accept_keyword("asc")
    return ast.SelectStmt(items, tables, where=where, distinct=distinct,
                          star=star, order_by=order_by, group_by=group_by)


def _select_item(stream: TokenStream) -> ast.SelectItem:
    if (stream.current.kind is TokenKind.IDENT
            and stream.current.text.lower() in ast.AggregateCall.OPS
            and stream.peek().is_op("(")):
        expression = _aggregate_call(stream)
    else:
        expression = _expression(stream)
    alias = None
    if stream.accept_keyword("as"):
        alias = stream.expect_ident("output column alias").text
    elif (stream.current.kind is TokenKind.IDENT
          and stream.current.text.lower() not in _KEYWORDS):
        alias = stream.advance().text
    return ast.SelectItem(expression, alias)


def _aggregate_call(stream: TokenStream) -> ast.AggregateCall:
    op = stream.advance().text.lower()
    stream.expect_op("(")
    if stream.accept_op("*"):
        if op != "count":
            stream.fail(f"{op.upper()}(*) is not valid; only COUNT(*)")
        stream.expect_op(")")
        return ast.AggregateCall(op, None)
    distinct = stream.accept_keyword("distinct")
    operand = _expression(stream)
    stream.expect_op(")")
    return ast.AggregateCall(op, operand, distinct=distinct)


def _table_ref(stream: TokenStream) -> ast.TableRef:
    name = stream.expect_ident("relation name").text
    alias = None
    if (stream.current.kind is TokenKind.IDENT
            and stream.current.text.lower() not in _KEYWORDS):
        alias = stream.advance().text
    return ast.TableRef(name, alias)


def _qualification(stream: TokenStream) -> Expression:
    parts = [_and_term(stream)]
    while stream.accept_keyword("or"):
        parts.append(_and_term(stream))
    return parts[0] if len(parts) == 1 else Or(parts)


def _and_term(stream: TokenStream) -> Expression:
    parts = [_not_term(stream)]
    while stream.accept_keyword("and"):
        parts.append(_not_term(stream))
    return parts[0] if len(parts) == 1 else And(parts)


def _not_term(stream: TokenStream) -> Expression:
    if stream.accept_keyword("not"):
        return Not(_not_term(stream))
    if stream.at_op("("):
        saved = stream._index
        try:
            stream.expect_op("(")
            inner = _qualification(stream)
            stream.expect_op(")")
        except ParseError:
            stream._index = saved
        else:
            follows_comparison = (
                stream.current.kind is TokenKind.OP
                and stream.current.text in _COMPARISON_TOKENS)
            if follows_comparison:
                stream._index = saved
            else:
                return inner
    return _comparison(stream)


def _comparison(stream: TokenStream) -> Expression:
    left = _expression(stream)
    if stream.accept_keyword("is"):
        negated = stream.accept_keyword("not")
        stream.expect_keyword("null")
        return IsNull(left, negated=negated)
    if stream.accept_keyword("between"):
        low = _expression(stream)
        stream.expect_keyword("and")
        high = _expression(stream)
        return And([Comparison(">=", left, low),
                    Comparison("<=", left, high)])
    if stream.accept_keyword("in"):
        stream.expect_op("(")
        options = [_expression(stream)]
        while stream.accept_op(","):
            options.append(_expression(stream))
        stream.expect_op(")")
        return Or([Comparison("=", left, option) for option in options])
    token = stream.current
    if token.kind is not TokenKind.OP or (
            token.text not in _COMPARISON_TOKENS):
        stream.fail("expected a comparison operator")
    stream.advance()
    return Comparison(_COMPARISON_TOKENS[token.text], left,
                      _expression(stream))


def _expression(stream: TokenStream) -> Expression:
    left = _term(stream)
    while stream.at_op("+", "-"):
        op = stream.advance().text
        left = Arithmetic(op, left, _term(stream))
    return left


def _term(stream: TokenStream) -> Expression:
    left = _factor(stream)
    while stream.at_op("*", "/"):
        op = stream.advance().text
        left = Arithmetic(op, left, _factor(stream))
    return left


def _factor(stream: TokenStream) -> Expression:
    token = stream.current
    if stream.accept_op("-"):
        operand = _factor(stream)
        if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)):
            return Literal(-operand.value)
        return Arithmetic("-", Literal(0), operand)
    if token.kind is TokenKind.NUMBER:
        stream.advance()
        return Literal(token.value)
    if token.kind is TokenKind.STRING:
        stream.advance()
        return Literal(token.value)
    if stream.accept_op("("):
        inner = _expression(stream)
        stream.expect_op(")")
        return inner
    if token.kind is TokenKind.IDENT:
        if token.text.lower() in _KEYWORDS:
            stream.fail(f"unexpected keyword {token.text!r} in expression")
        stream.advance()
        if stream.accept_op("."):
            column = stream.expect_ident("column name").text
            return ColumnRef(column, qualifier=token.text)
        return ColumnRef(token.text)
    stream.fail("expected an expression")
    raise AssertionError("unreachable")
