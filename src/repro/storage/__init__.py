"""Durable storage: WAL, checkpointed snapshots, transactions, recovery.

See :mod:`repro.storage.engine` for the architecture overview and
``docs/DURABILITY.md`` for the on-disk formats and crash guarantees.
"""

from repro.storage.engine import (
    RecoveryReport, StorageEngine, is_rule_relation,
)
from repro.storage.faults import (
    CountingOps, FaultInjector, FileOps, InjectedCrash, REAL_OPS,
)
from repro.storage.snapshot import (
    SNAPSHOT_FILE, load_snapshot, snapshot_exists, write_snapshot,
)
from repro.storage.wal import (
    FSYNC_POLICIES, WriteAheadLog, decode_record, encode_record,
    read_records,
)

__all__ = [
    "CountingOps", "FSYNC_POLICIES", "FaultInjector", "FileOps",
    "InjectedCrash", "REAL_OPS", "RecoveryReport", "SNAPSHOT_FILE",
    "StorageEngine", "WriteAheadLog", "decode_record", "encode_record",
    "is_rule_relation", "load_snapshot", "read_records",
    "snapshot_exists", "write_snapshot",
]
