"""JSON codecs for WAL records: cell values, rows and schemas.

Row cells are the scalar types the relational layer admits (int, float,
str, date, NULL).  JSON covers all but :class:`datetime.date`, which is
tagged as ``{"d": "YYYY-MM-DD"}`` -- a dict can never be a legal cell
value, so the tagging is unambiguous.  Schemas round-trip through the
same rendered type syntax the text serialization uses (``char[7]``,
``integer``, ...), so the WAL and the snapshot format agree on types by
construction.
"""

from __future__ import annotations

import datetime
from typing import Any, Sequence

from repro.errors import CorruptWalRecord
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.relational.textio import _parse_type


def encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"d": value.isoformat()}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        try:
            return datetime.date.fromisoformat(value["d"])
        except (KeyError, TypeError, ValueError) as error:
            raise CorruptWalRecord(
                f"bad tagged value {value!r}") from error
    return value


def encode_row(row: Sequence[Any]) -> list:
    # Dates are the only value needing a tagged encoding; rows without
    # one (the overwhelming majority) skip the per-value dispatch.
    if any(isinstance(value, datetime.date) for value in row):
        return [encode_value(value) for value in row]
    return list(row)


def schema_needs_row_encoding(schema: RelationSchema) -> bool:
    """Whether rows of *schema* can contain values that JSON cannot
    carry verbatim (currently: dates).  Cached on the schema object --
    this sits on the per-insert WAL hot path."""
    cached = getattr(schema, "_wal_needs_row_encoding", None)
    if cached is None:
        from repro.relational.datatypes import DateType
        cached = any(isinstance(column.datatype, DateType)
                     for column in schema.columns)
        try:
            schema._wal_needs_row_encoding = cached
        except AttributeError:
            pass  # slotted schema: recompute next time
    return cached


def decode_row(row: Sequence[Any]) -> tuple:
    return tuple(decode_value(value) for value in row)


def encode_schema(schema: RelationSchema) -> dict:
    return {
        "name": schema.name,
        "columns": [[column.name, column.datatype.render()]
                    for column in schema.columns],
        "key": list(schema.key) if schema.key else None,
    }


def decode_schema(payload: dict) -> RelationSchema:
    try:
        columns = [Column(name, _parse_type(type_text))
                   for name, type_text in payload["columns"]]
        return RelationSchema(payload["name"], columns,
                              key=payload.get("key"))
    except (KeyError, TypeError, ValueError) as error:
        raise CorruptWalRecord(
            f"bad schema payload {payload!r}") from error


def encode_relation(relation: Relation) -> dict:
    return {"schema": encode_schema(relation.schema),
            "rows": [encode_row(row) for row in relation.rows]}


def decode_relation(payload: dict) -> Relation:
    schema = decode_schema(payload["schema"])
    rows = [decode_row(row) for row in payload.get("rows", ())]
    return Relation(schema, rows, validated=True)
